"""Composable mining pipeline: Mine → Reduce → Score → Correct.

The paper's method is a pipeline: enumerate closed frequent patterns,
optionally collapse near-duplicate sub/super-pattern chains (Section
7), score one hypothesis per rule, and control false positives with a
multiple-testing correction. This module makes those stages explicit
objects so they can be inspected, re-ordered, or swapped, while two
registries supply the pluggable ends: the miner registry
(:mod:`repro.mining.registry`) behind the Mine stage (``algorithm=``,
default ``"closed"``) and the correction registry
(:mod:`repro.corrections.registry`) behind the Correct stage.

Example
-------
>>> from repro.core.pipeline import Pipeline
>>> from repro.data import make_german
>>> pipe = Pipeline(min_sup=60, corrections=("bonferroni", "BH"))
>>> result = pipe.run(make_german())            # doctest: +SKIP
>>> result.report("bh").summary()               # doctest: +SKIP

All corrections in one :class:`Pipeline` share a single mined ruleset,
a single permutation pass and a single holdout split per dataset —
the reuse the Section 5 experiment loop depends on. Out-of-tree
corrections registered with
:func:`repro.corrections.register_correction` work like built-ins:

>>> pipe = Pipeline(min_sup=60, corrections=("my-correction",))
... # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..corrections.base import CorrectionResult
from ..corrections.registry import (
    PipelineContext,
    ResolvedCorrection,
    resolve_correction,
)
from ..data.dataset import Dataset
from ..errors import CorrectionError, MiningError
from ..mining.diffsets import DEFAULT_POLICY, POLICY_CHOICES
from ..mining.patterns import PatternSet
from ..mining.registry import resolve_miner
from ..mining.representative import reduce_patterns
from ..mining.rules import RuleSet, generate_rules
from ..parallel import get_executor

__all__ = [
    "CorrectStage",
    "MineStage",
    "Pipeline",
    "PipelineContext",
    "PipelineResult",
    "PipelineState",
    "ReduceStage",
    "ScoreStage",
]


@dataclass
class PipelineState:
    """What flows between stages for one dataset.

    Stages fill the fields they own: ``pattern_set`` and ``patterns``
    (Mine), a possibly reduced ``patterns`` plus ``n_patterns_mined``
    (Reduce), ``ruleset`` (Score), ``results`` keyed by the
    *requested* method name (Correct). ``pattern_set`` keeps the
    miner's provenance-stamped output as mined; ``patterns`` is what
    later stages consume and is the field Reduce rewrites.
    """

    patterns: Optional[list] = None
    pattern_set: Optional[PatternSet] = None
    n_patterns_mined: Optional[int] = None
    ruleset: Optional[RuleSet] = None
    results: Dict[str, CorrectionResult] = field(default_factory=dict)


class MineStage:
    """Pattern enumeration (Section 3) through the miner registry.

    The algorithm is resolved at *run* time — from this stage's
    ``algorithm`` override when given, else the context's — so miners
    registered after the pipeline was built (e.g. by a CLI
    ``--plugin``) still resolve.
    """

    name = "mine"

    def __init__(self, algorithm: Optional[str] = None) -> None:
        self.algorithm = algorithm

    def run(self, ctx: PipelineContext, state: PipelineState,
            ) -> PipelineState:
        if ctx.min_sup < 1:
            raise MiningError(
                f"min_sup must be >= 1, got {ctx.min_sup}")
        if ctx.min_sup > ctx.dataset.n_records:
            raise MiningError(
                f"min_sup={ctx.min_sup} exceeds dataset size "
                f"{ctx.dataset.n_records}")
        miner = resolve_miner(self.algorithm or ctx.algorithm)
        state.pattern_set = miner.mine(
            ctx.dataset, ctx.min_sup, max_length=ctx.max_length,
            **dict(ctx.miner_options))
        state.patterns = state.pattern_set.patterns
        state.n_patterns_mined = len(state.patterns)
        return state


class ReduceStage:
    """Section 7 representative-pattern reduction (no-op unless
    ``ctx.redundancy_delta`` is set)."""

    name = "reduce"

    def run(self, ctx: PipelineContext, state: PipelineState,
            ) -> PipelineState:
        if ctx.redundancy_delta is None or state.patterns is None:
            return state
        state.patterns = reduce_patterns(state.patterns,
                                         delta=ctx.redundancy_delta)
        return state


class ScoreStage:
    """One scored hypothesis per rule (Fisher / mid-p / chi-square)."""

    name = "score"

    def run(self, ctx: PipelineContext, state: PipelineState,
            ) -> PipelineState:
        if state.patterns is None:
            return state
        state.ruleset = generate_rules(
            ctx.dataset, state.patterns, ctx.min_sup,
            min_conf=ctx.min_conf, scorer=ctx.scorer)
        return state


class CorrectStage:
    """Apply every requested correction through the registry.

    With ``ctx.n_jobs > 1`` the *independent* corrections (those that
    never touch the context's shared permutation/holdout caches) fan
    out across the context's intra-run executor; corrections that
    build or reuse shared state run serially first, in requested
    order, so the caches are populated race-free. Results land in
    ``state.results`` in requested order either way.
    """

    name = "correct"

    def __init__(self, corrections: Sequence[ResolvedCorrection]) -> None:
        self.corrections = tuple(corrections)

    def run(self, ctx: PipelineContext, state: PipelineState,
            ) -> PipelineState:
        stateful = [r for r in self.corrections
                    if r.spec.needs_permutations or r.spec.needs_holdout]
        stateless = [r for r in self.corrections
                     if not (r.spec.needs_permutations
                             or r.spec.needs_holdout)]
        executor = ctx.executor(intra_run=True)
        if executor.backend == "serial" or executor.n_jobs == 1 \
                or len(stateless) < 2:
            for resolved in self.corrections:
                state.results[resolved.requested] = resolved.apply(
                    state.ruleset, ctx.alpha, ctx)
            return state
        produced: Dict[str, CorrectionResult] = {}
        for resolved in stateful:
            produced[resolved.requested] = resolved.apply(
                state.ruleset, ctx.alpha, ctx)
        fanned = executor.map_shards(
            lambda resolved: resolved.apply(state.ruleset, ctx.alpha,
                                            ctx),
            stateless)
        for resolved, result in zip(stateless, fanned):
            produced[resolved.requested] = result
        for resolved in self.corrections:
            state.results[resolved.requested] = \
                produced[resolved.requested]
        return state


@dataclass
class PipelineResult:
    """Everything one :meth:`Pipeline.run` produced for one dataset.

    ``results`` is keyed by the method names as requested (``"BH"``
    stays ``"BH"``); :meth:`report` wraps one of them in the classic
    :class:`~repro.core.miner.MiningReport`.
    """

    dataset: Dataset
    context: PipelineContext
    state: PipelineState
    results: Dict[str, CorrectionResult]
    resolved: Dict[str, ResolvedCorrection] = field(default_factory=dict)

    @property
    def ruleset(self) -> Optional[RuleSet]:
        """The shared whole-dataset ruleset (``None`` when only
        holdout corrections ran)."""
        return self.state.ruleset

    def __getitem__(self, method: str) -> CorrectionResult:
        return self.results[method]

    def report(self, method: Optional[str] = None):
        """A :class:`MiningReport` for ``method`` (sole method when
        omitted)."""
        from .miner import MiningReport

        if method is None:
            if len(self.results) != 1:
                raise CorrectionError(
                    "report() needs an explicit method name when the "
                    f"pipeline ran {sorted(self.results)}")
            method = next(iter(self.results))
        if method not in self.results:
            raise CorrectionError(
                f"method {method!r} was not run; available: "
                f"{sorted(self.results)}")
        # The run's own resolution, not the live registry: results for
        # a correction unregistered since the run stay readable.
        resolved = self.resolved.get(method) or resolve_correction(method)
        ruleset = (None if resolved.spec.needs_holdout
                   else self.state.ruleset)
        return MiningReport(dataset=self.dataset,
                            correction=resolved.name,
                            result=self.results[method],
                            ruleset=ruleset)


class Pipeline:
    """The composable public pipeline.

    Parameters mirror :class:`~repro.core.miner.SignificantRuleMiner`
    but accept *several* corrections at once; all of them share one
    mining pass, one permutation pass, and one holdout split per
    dataset.

    Parameters
    ----------
    min_sup:
        Minimum coverage of a rule's left-hand side.
    corrections:
        Method names in any registered spelling (canonical name,
        Table 3 abbreviation, or alias).
    algorithm:
        The registered miner (:mod:`repro.mining.registry`) the Mine
        stage enumerates hypotheses with, in any accepted spelling.
        The default ``"closed"`` is the paper's hypothesis set;
        ``"apriori"``/``"fpgrowth"`` run the same corrections over
        *all* frequent patterns — the Section 7 hypothesis-count
        ablation. Stored as given and resolved at Mine-stage time, so
        miners registered after construction still work.
    miner_options:
        Extra keyword options for that miner (e.g. ``delta`` for
        ``"representative"``).
    alpha:
        Error budget: FWER or FDR level depending on the correction.
    policy:
        Storage/kernel policy of the permutation pass's pattern forest
        (:data:`repro.mining.POLICY_CHOICES`): ``"packed"`` (default —
        the uint64 bitmap kernel, the fastest path), ``"bitset"``,
        ``"diffsets"``, ``"full"``, or ``"auto"`` (pick per dataset
        shape from measured crossover points). Results are
        bit-identical under every policy; see ``docs/performance.md``.
    n_jobs:
        Worker count for the parallel machinery (``-1`` = all cores):
        the permutation pass shards across workers, independent
        corrections fan out within :meth:`run`, and :meth:`run_many`
        fans datasets out. Results are bit-identical for every value.
    backend:
        ``"serial"`` (default), ``"threads"`` or ``"processes"`` —
        see :mod:`repro.parallel` and ``docs/parallel.md``.
    stages:
        Advanced: replace the default
        ``[MineStage, ReduceStage, ScoreStage]`` prefix with custom
        stage objects (each exposing ``run(ctx, state)``). The
        correction stage is always appended last.
    """

    def __init__(self, min_sup: int,
                 corrections: Sequence[str] = ("bh",),
                 algorithm: str = "closed",
                 miner_options: Optional[Dict[str, object]] = None,
                 alpha: float = 0.05,
                 min_conf: float = 0.0,
                 max_length: Optional[int] = None,
                 scorer: str = "fisher",
                 seed: Optional[int] = None,
                 n_permutations: int = 1000,
                 policy: str = DEFAULT_POLICY,
                 holdout_split: str = "random",
                 redundancy_delta: Optional[float] = None,
                 n_jobs: int = 1,
                 backend: str = "serial",
                 stages: Optional[Sequence[object]] = None) -> None:
        if isinstance(corrections, str):
            corrections = (corrections,)
        self.resolved = tuple(resolve_correction(name)
                              for name in corrections)
        if not self.resolved:
            raise CorrectionError("at least one correction is required")
        if redundancy_delta is not None:
            unsupported = [r.requested for r in self.resolved
                           if not r.spec.supports_redundancy]
            if unsupported:
                raise CorrectionError(
                    f"redundancy_delta is not supported with "
                    f"{sorted(unsupported)} (holdout corrections mine "
                    f"their own halves)")
        if policy not in POLICY_CHOICES:
            raise CorrectionError(
                f"unknown forest policy {policy!r}; pick from "
                f"{POLICY_CHOICES}")
        self.min_sup = min_sup
        self.algorithm = algorithm
        self.miner_options = dict(miner_options or {})
        self.alpha = alpha
        self.min_conf = min_conf
        self.max_length = max_length
        self.scorer = scorer
        self.seed = seed
        self.n_permutations = n_permutations
        self.policy = policy
        self.holdout_split = holdout_split
        self.redundancy_delta = redundancy_delta
        executor = get_executor(backend, n_jobs)  # validates both
        self.n_jobs = executor.n_jobs
        self.backend = executor.backend
        self._default_stages = stages is None
        self._stages = (tuple(stages) if stages is not None
                        else (MineStage(), ReduceStage(), ScoreStage()))

    @property
    def methods(self) -> Tuple[str, ...]:
        """The method names as requested at construction."""
        return tuple(r.requested for r in self.resolved)

    def context(self, dataset: Dataset, **overrides: object,
                ) -> PipelineContext:
        """A fresh :class:`PipelineContext` for one dataset."""
        ctx = PipelineContext(
            dataset=dataset, min_sup=self.min_sup, alpha=self.alpha,
            min_conf=self.min_conf, max_length=self.max_length,
            algorithm=self.algorithm,
            miner_options=dict(self.miner_options),
            scorer=self.scorer, seed=self.seed,
            n_permutations=self.n_permutations,
            policy=self.policy,
            holdout_split=self.holdout_split,
            redundancy_delta=self.redundancy_delta,
            n_jobs=self.n_jobs, backend=self.backend)
        if overrides:
            ctx = ctx.override(**overrides)
        return ctx

    def stages(self) -> Tuple[object, ...]:
        """The stage sequence one :meth:`run` executes, in order."""
        return self._stages + (CorrectStage(self.resolved),)

    def run(self, dataset: Dataset,
            ctx: Optional[PipelineContext] = None) -> PipelineResult:
        """Execute every stage on one dataset."""
        if ctx is None:
            ctx = self.context(dataset)
        state = PipelineState()
        # Holdout-only runs mine their own halves, so the default
        # mine/reduce/score prefix is pure waste and is skipped. A
        # caller-supplied stage list is always executed in full — a
        # custom stage may carry side effects the caller asked for.
        skip_prefix = (self._default_stages
                       and all(r.spec.needs_holdout
                               for r in self.resolved))
        for stage in self.stages():
            if skip_prefix and not isinstance(stage, CorrectStage):
                continue
            state = stage.run(ctx, state)
        return PipelineResult(dataset=dataset, context=ctx, state=state,
                              results=state.results,
                              resolved={r.requested: r
                                        for r in self.resolved})

    def config(self, **overrides: object) -> Dict[str, object]:
        """The plain constructor kwargs reproducing this pipeline.

        Public accessor over the configuration the process-backend
        workers rebuild from; the service's job orchestrator uses it
        to derive artifact-cache keys (minus ``n_jobs``/``backend``,
        which never affect results). Custom stage objects are not part
        of the configuration.
        """
        return self._config(**overrides)

    def _config(self, **overrides: object) -> Dict[str, object]:
        """Constructor kwargs reproducing this pipeline (default
        stages only) — what a process worker rebuilds from."""
        config: Dict[str, object] = dict(
            min_sup=self.min_sup, corrections=self.methods,
            algorithm=self.algorithm,
            miner_options=dict(self.miner_options),
            alpha=self.alpha, min_conf=self.min_conf,
            max_length=self.max_length, scorer=self.scorer,
            seed=self.seed, n_permutations=self.n_permutations,
            policy=self.policy,
            holdout_split=self.holdout_split,
            redundancy_delta=self.redundancy_delta,
            n_jobs=self.n_jobs, backend=self.backend)
        config.update(overrides)
        return config

    def run_many(self, datasets: Iterable[Dataset],
                 methods: Optional[Sequence[str]] = None,
                 ) -> List[PipelineResult]:
        """Run on several datasets, optionally overriding the methods.

        Each dataset gets its own context (and thus its own shared
        permutation pass and holdout split); the stage configuration is
        reused across datasets. With ``n_jobs > 1`` the datasets fan
        out across the configured backend; under ``"processes"`` each
        worker rebuilds the pipeline from its plain configuration
        (custom stage objects therefore require ``"threads"`` or
        ``"serial"``) and runs its dataset with intra-run parallelism
        disabled — one pool, never nested pools.
        """
        pipeline = self
        if methods is not None:
            pipeline = Pipeline(
                **self._config(corrections=methods),
                stages=(None if self._default_stages
                        else self._stages))
        dataset_list = list(datasets)
        executor = get_executor(self.backend, self.n_jobs)
        if (executor.backend == "serial" or executor.n_jobs == 1
                or len(dataset_list) < 2):
            return [pipeline.run(dataset) for dataset in dataset_list]
        if executor.backend == "threads":
            # One pool, never nested pools: the dataset fan-out is the
            # pool, so each worker runs its dataset with intra-run
            # parallelism disabled (otherwise every permutation pass
            # and correct stage would open its own n_jobs-wide pool).
            def _run_intra_serial(dataset):
                return pipeline.run(
                    dataset, ctx=pipeline.context(
                        dataset, n_jobs=1, backend="serial"))

            results = executor.map_shards(_run_intra_serial,
                                          dataset_list)
            for result in results:
                # Report the configuration the caller asked for, not
                # the intra-run-serial override the worker ran under.
                result.context = result.context.override(
                    n_jobs=pipeline.n_jobs, backend=pipeline.backend)
            return results
        if not pipeline._default_stages:
            raise CorrectionError(
                "backend='processes' cannot ship custom stage objects "
                "to worker processes; use backend='threads' or "
                "'serial' for pipelines with custom stages")
        config = pipeline._config(n_jobs=1, backend="serial")
        # The configuration is identical for every dataset: hoist it to
        # the executor context (shipped once per worker per wave, and
        # never re-sent on retries) so each unit carries its dataset
        # only — which for arena-backed datasets is just a file path.
        slim = executor.map_shards(_run_one_worker, dataset_list,
                                   context=config)
        resolved = {r.requested: r for r in pipeline.resolved}
        return [PipelineResult(dataset=dataset,
                               # As above: surface the caller's
                               # configuration, not the worker's
                               # intra-run-serial override.
                               context=ctx.override(
                                   n_jobs=pipeline.n_jobs,
                                   backend=pipeline.backend),
                               state=state, results=state.results,
                               resolved=dict(resolved))
                for dataset, (ctx, state) in zip(dataset_list, slim)]


def _run_one_worker(config, dataset):
    """Run one dataset in a worker process.

    ``config`` is the hoisted executor context shared by every unit.
    Rebuilds the pipeline from its plain configuration (the resolved
    correction specs hold lambdas, which do not pickle) and returns
    only the context and state; the parent re-attaches its own
    resolved specs to reassemble the :class:`PipelineResult`.
    """
    result = Pipeline(**config).run(dataset)
    return result.context, result.state
