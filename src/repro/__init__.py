"""repro — reproduction of *Controlling False Positives in Association
Rule Mining* (Liu, Zhang, Wong; PVLDB 5(2), VLDB 2011).

Statistically sound class association rule mining: closed frequent
pattern mining, exact-test scoring, and three families of multiple
testing correction (direct adjustment, permutation-based, holdout).

Quickstart
----------
One correction, one call — any registered spelling works (canonical
name, Table 3 abbreviation, or alias):

>>> from repro import mine_significant_rules
>>> from repro.data import make_german
>>> report = mine_significant_rules(make_german(), min_sup=60,
...                                 correction="BH", alpha=0.05)
>>> len(report.significant) <= report.n_tested
True

Several corrections against one mining pass — the composable
:class:`Pipeline` shares the mined ruleset, the permutation pass and
the holdout split across methods:

>>> from repro import Pipeline
>>> pipe = Pipeline(min_sup=60,
...                 corrections=("bonferroni", "BH", "holdout-fdr"),
...                 seed=0)
>>> result = pipe.run(make_german())
>>> sorted(result.results)
['BH', 'bonferroni', 'holdout-fdr']
>>> result["BH"].n_significant >= result["bonferroni"].n_significant
True

The mining side is pluggable too: the pipeline's Mine stage resolves
``algorithm=`` through the miner registry, so the closed-vs-all
hypothesis-count ablation (Section 7) is one keyword away:

>>> pipe = Pipeline(min_sup=60, corrections=("bonferroni",),
...                 algorithm="fpgrowth")
>>> all_patterns = pipe.run(make_german())
>>> from repro import available_miners
>>> "closed" in {m.name for m in available_miners()}
True

Corrections are pluggable: registering a :class:`Correction` makes it
usable everywhere — the miner, the pipeline, the experiment runner and
the CLI (via ``--plugin`` / ``REPRO_PLUGINS``):

>>> from repro import Correction, register_correction
>>> from repro.corrections import bonferroni
>>> spec = register_correction(Correction(
...     name="half-bonferroni", abbreviation="BC/2", family="fwer",
...     apply_fn=lambda rs, alpha, ctx: bonferroni(rs, alpha / 2)))
>>> mine_significant_rules(make_german(), min_sup=60,
...     correction="half-bonferroni").result.method
'BC'
>>> from repro.corrections import unregister_correction
>>> unregister_correction("half-bonferroni")

Subpackages
-----------
``repro.data``
    Datasets, item encoding, loaders, discretization, synthetic and
    simulated-UCI generators.
``repro.mining``
    Closed frequent pattern mining, diffsets, Apriori baseline, rule
    generation.
``repro.stats``
    Log-factorial buffer, hypergeometric distribution, Fisher exact and
    chi-square tests, p-value buffers and caches.
``repro.corrections``
    Bonferroni, Benjamini–Hochberg, permutation FWER/FDR, holdout,
    layered critical values; stepwise (Holm/Hochberg/Šidák), adaptive
    FDR (Storey, BKY) and Westfall–Young step-down extensions.
``repro.interest``
    Objective interestingness measures (lift, leverage, conviction,
    ...), rule ranking and measure-agreement analysis.
``repro.evaluation``
    Planted-rule ground truth, power/FWER/FDR metrics, replicated
    experiment runner, report formatting.
``repro.classify``
    Associative classification (CBA rule lists, CMAR weighted voting,
    CPAR greedy FOIL induction) with correction-filtered rule bases
    and cross-validation.
``repro.contrast``
    STUCCO contrast-set mining with layered Bonferroni control.
``repro.frequency``
    Frequency-significance of patterns: Megiddo-Srikant resampling
    calibration and Kirsch et al.'s support threshold ``s*``.
``repro.parallel``
    Shared parallel execution: pluggable serial/threads/processes
    backends behind one ``Executor.map_shards`` interface, with
    deterministic shard seeding (bit-identical results at any worker
    count).
"""

from .core import (
    CORRECTIONS,
    MiningReport,
    Pipeline,
    PipelineContext,
    PipelineResult,
    SignificantRuleMiner,
    mine_significant_rules,
)
from .corrections.registry import (
    Correction,
    available_corrections,
    register_correction,
    resolve_correction,
)
from .bitmat import BitMatrix
from .tidvector import TidVector, as_tidvector
from .mining.diffsets import (
    DEFAULT_POLICY,
    POLICIES,
    POLICY_CHOICES,
    PatternForest,
)
from .mining.patterns import Pattern, PatternSet
from .mining.registry import (
    Miner,
    available_miners,
    register_miner,
    resolve_miner,
)
from .errors import (
    CorrectionError,
    DataError,
    EvaluationError,
    LoaderError,
    MiningError,
    ReproError,
    StatsError,
)
from .parallel import Executor, WorkerError, get_executor

__version__ = "1.0.0"

__all__ = [
    "BitMatrix",
    "CORRECTIONS",
    "TidVector",
    "as_tidvector",
    "Correction",
    "DEFAULT_POLICY",
    "Executor",
    "Miner",
    "MiningReport",
    "POLICIES",
    "POLICY_CHOICES",
    "Pattern",
    "PatternForest",
    "PatternSet",
    "WorkerError",
    "get_executor",
    "Pipeline",
    "PipelineContext",
    "PipelineResult",
    "SignificantRuleMiner",
    "available_corrections",
    "available_miners",
    "mine_significant_rules",
    "register_correction",
    "register_miner",
    "resolve_correction",
    "resolve_miner",
    "CorrectionError",
    "DataError",
    "EvaluationError",
    "LoaderError",
    "MiningError",
    "ReproError",
    "StatsError",
    "__version__",
]
