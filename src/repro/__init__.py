"""repro — reproduction of *Controlling False Positives in Association
Rule Mining* (Liu, Zhang, Wong; PVLDB 5(2), VLDB 2011).

Statistically sound class association rule mining: closed frequent
pattern mining, exact-test scoring, and three families of multiple
testing correction (direct adjustment, permutation-based, holdout).

Quickstart
----------
>>> from repro import mine_significant_rules
>>> from repro.data import make_german
>>> report = mine_significant_rules(make_german(), min_sup=60,
...                                 correction="permutation-fdr",
...                                 n_permutations=200, seed=0)
>>> len(report.significant) <= report.n_tested
True

Subpackages
-----------
``repro.data``
    Datasets, item encoding, loaders, discretization, synthetic and
    simulated-UCI generators.
``repro.mining``
    Closed frequent pattern mining, diffsets, Apriori baseline, rule
    generation.
``repro.stats``
    Log-factorial buffer, hypergeometric distribution, Fisher exact and
    chi-square tests, p-value buffers and caches.
``repro.corrections``
    Bonferroni, Benjamini–Hochberg, permutation FWER/FDR, holdout,
    layered critical values; stepwise (Holm/Hochberg/Šidák), adaptive
    FDR (Storey, BKY) and Westfall–Young step-down extensions.
``repro.interest``
    Objective interestingness measures (lift, leverage, conviction,
    ...), rule ranking and measure-agreement analysis.
``repro.evaluation``
    Planted-rule ground truth, power/FWER/FDR metrics, replicated
    experiment runner, report formatting.
``repro.classify``
    Associative classification (CBA rule lists, CMAR weighted voting,
    CPAR greedy FOIL induction) with correction-filtered rule bases
    and cross-validation.
``repro.contrast``
    STUCCO contrast-set mining with layered Bonferroni control.
``repro.frequency``
    Frequency-significance of patterns: Megiddo-Srikant resampling
    calibration and Kirsch et al.'s support threshold ``s*``.
"""

from .core import (
    CORRECTIONS,
    MiningReport,
    SignificantRuleMiner,
    mine_significant_rules,
)
from .errors import (
    CorrectionError,
    DataError,
    EvaluationError,
    LoaderError,
    MiningError,
    ReproError,
    StatsError,
)

__version__ = "1.0.0"

__all__ = [
    "CORRECTIONS",
    "MiningReport",
    "SignificantRuleMiner",
    "mine_significant_rules",
    "CorrectionError",
    "DataError",
    "EvaluationError",
    "LoaderError",
    "MiningError",
    "ReproError",
    "StatsError",
    "__version__",
]
