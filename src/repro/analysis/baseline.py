"""Committed-baseline handling: the zero-new-findings ratchet.

A baseline is a committed JSON snapshot of the findings the codebase
is *allowed* to have — pre-existing debt grandfathered in when a rule
was introduced. The gate compares the current findings against it:

* **new** findings (present now, absent from the baseline) fail the
  run — the ratchet only tightens;
* **stale** entries (baselined, but no longer found) are reported so
  the file can be re-generated (``--update-baseline``) and the debt
  visibly shrinks;
* matched findings pass silently.

Identity is ``(rule, path, message)`` — deliberately *not* the line
number, so unrelated edits that shift a baselined violation down a
file do not break the gate. Duplicate identical findings are matched
by count: a file with two baselined violations of one kind fails the
moment a third appears. The recorded line is refreshed on every
``--update-baseline`` for human readers.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from ..errors import AnalysisError
from .engine import Finding

__all__ = ["Baseline", "BaselineDiff"]

_VERSION = 1


@dataclass
class BaselineDiff:
    """Outcome of matching current findings against a baseline."""

    new: List[Finding]
    matched: List[Finding]
    stale: List[Dict[str, object]]

    @property
    def gate_passes(self) -> bool:
        """The zero-new-findings gate: only *new* findings fail."""
        return not self.new


class Baseline:
    """A set of grandfathered findings, keyed by (rule, path, message)."""

    def __init__(self, entries: Sequence[Dict[str, object]] = ()) -> None:
        self.entries = [dict(entry) for entry in entries]
        for entry in self.entries:
            for field in ("rule", "path", "message"):
                if field not in entry:
                    raise AnalysisError(
                        f"baseline entry missing {field!r}: {entry}")

    # -- persistence --------------------------------------------------

    @classmethod
    def load(cls, path) -> "Baseline":
        """Read a baseline file written by :meth:`save`."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise AnalysisError(f"baseline file not found: {path}")
        except json.JSONDecodeError as exc:
            raise AnalysisError(
                f"baseline file {path} is not valid JSON: {exc}")
        if not isinstance(payload, dict) or "findings" not in payload:
            raise AnalysisError(
                f"baseline file {path} has no 'findings' key")
        version = payload.get("version", _VERSION)
        if version != _VERSION:
            raise AnalysisError(
                f"baseline file {path} has version {version}, "
                f"expected {_VERSION}")
        return cls(payload["findings"])

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """Snapshot the given findings (the ``--update-baseline`` path)."""
        return cls([finding.to_json() for finding in sorted(findings)])

    def save(self, path) -> None:
        """Write the committed JSON format (stable ordering, LF)."""
        entries = sorted(
            self.entries,
            key=lambda e: (e["path"], e.get("line", 0), e["rule"]))
        payload = {"version": _VERSION, "findings": entries}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    # -- matching -----------------------------------------------------

    def diff(self, findings: Sequence[Finding]) -> BaselineDiff:
        """Split current findings into new/matched, and list stale debt."""
        budget: Counter = Counter(
            (e["rule"], e["path"], e["message"]) for e in self.entries)
        new: List[Finding] = []
        matched: List[Finding] = []
        for finding in sorted(findings):
            key = finding.key()
            if budget[key] > 0:
                budget[key] -= 1
                matched.append(finding)
            else:
                new.append(finding)
        stale: List[Dict[str, object]] = []
        remaining = dict(budget)
        for entry in self.entries:
            key: Tuple[str, str, str] = (
                entry["rule"], entry["path"], entry["message"])
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                stale.append(entry)
        return BaselineDiff(new=new, matched=matched, stale=stale)

    def __len__(self) -> int:
        return len(self.entries)
