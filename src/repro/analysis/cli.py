"""Command-line driver: ``python -m repro.analysis`` / ``repro lint``.

Exit codes: 0 = clean (no non-baselined findings), 1 = new findings
(the zero-new-findings gate), 2 = usage/configuration error.

The committed baseline (``lint-baseline.json`` at the repo root) is
picked up automatically when present in the current directory; pass
``--baseline`` for another location or ``--no-baseline`` to see every
finding. ``--update-baseline`` re-snapshots current findings —
graduating fixed debt out and (deliberately, visibly, in the diff)
grandfathering new debt in.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..errors import AnalysisError, ReproError
from .baseline import Baseline
from .engine import analyze_paths, iter_python_files
from .registry import available_rules, resolve_rule
from .report import render_json, render_text

__all__ = ["main", "build_parser", "DEFAULT_BASELINE"]

#: Filename the driver auto-loads from the working directory.
DEFAULT_BASELINE = "lint-baseline.json"


def build_parser(prog: str = "repro.analysis") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="AST invariant checker for the repro codebase: "
                    "determinism, substrate and concurrency "
                    "contracts (see docs/static-analysis.md).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files/directories to analyze "
                             "(default: src)")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule names to run "
                             "(any registered spelling; default: all)")
    parser.add_argument("--format", default="text",
                        choices=("text", "json"),
                        help="report format (default: text)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline JSON to gate against (default: "
                             f"./{DEFAULT_BASELINE} when it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline; report every "
                             "finding as new")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline file from current "
                             "findings (adds new debt, expires stale "
                             "entries) and exit 0")
    parser.add_argument("--show-baselined", action="store_true",
                        help="also list findings matched by the "
                             "baseline")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    return parser


def _print_rules(out) -> None:
    print("registered rules (aliases; guarded invariant):", file=out)
    for spec in sorted(available_rules(), key=lambda s: s.name):
        line = f"  {spec.name}"
        if spec.aliases:
            line += f"  (aliases: {', '.join(spec.aliases)})"
        print(line, file=out)
        if spec.description:
            print(f"      {spec.description}", file=out)
        if spec.invariant:
            print(f"      invariant: {spec.invariant}", file=out)


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Run the analysis; returns a process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return run_lint(args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def run_lint(args: argparse.Namespace, out) -> int:
    """Shared implementation behind ``repro lint`` and ``-m``."""
    if args.list_rules:
        _print_rules(out)
        return 0
    select = None
    if args.select:
        select = [name.strip() for name in args.select.split(",")
                  if name.strip()]
        for name in select:
            resolve_rule(name)  # fail fast with did-you-mean
    rules_run = [spec.name for spec in available_rules()] \
        if select is None else select
    n_files = len(iter_python_files(args.paths))
    findings = analyze_paths(args.paths, select=select)

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        candidate = Path(DEFAULT_BASELINE)
        if candidate.exists():
            baseline_path = str(candidate)
    if args.no_baseline:
        baseline_path = None

    if args.update_baseline:
        target = baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(findings).save(target)
        print(f"wrote {len(findings)} finding(s) to {target}",
              file=out)
        return 0

    diff = None
    if baseline_path is not None:
        diff = Baseline.load(baseline_path).diff(findings)
    render = render_json if args.format == "json" else render_text
    print(render(findings, diff, n_files=n_files,
                 rules_run=rules_run), file=out)
    if args.show_baselined and diff is not None and args.format == "text":
        for finding in diff.matched:
            print(f"baselined: {finding.describe()}", file=out)
    new = findings if diff is None else diff.new
    return 1 if new else 0
