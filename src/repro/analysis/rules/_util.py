"""Shared AST helpers for the built-in rules."""

from __future__ import annotations

import ast
from typing import Optional, Set, Tuple

__all__ = ["dotted_name", "numpy_aliases", "numpy_random_aliases",
           "call_name"]


def dotted_name(node) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's callee, else ``None``."""
    return dotted_name(node.func)


def numpy_aliases(tree) -> Set[str]:
    """Names the module binds to the ``numpy`` package itself."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
                elif alias.name.startswith("numpy.") and alias.asname \
                        is None:
                    # ``import numpy.random`` binds ``numpy``.
                    aliases.add("numpy")
    return aliases


def numpy_random_aliases(tree) -> Set[str]:
    """Names bound to the ``numpy.random`` module."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy.random" and alias.asname:
                    aliases.add(alias.asname)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy" and node.level == 0:
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or "random")
    return aliases


def import_targets(node, module: str) -> Tuple[str, ...]:
    """Absolute dotted targets an Import/ImportFrom statement binds.

    ``module`` is the importing file's dotted module name, used to
    resolve relative imports. For ``from X import a, b`` the targets
    are ``X.a`` and ``X.b`` (submodule-or-attribute either way).
    """
    if isinstance(node, ast.Import):
        return tuple(alias.name for alias in node.names)
    if not isinstance(node, ast.ImportFrom):
        return ()
    if node.level == 0:
        base = node.module or ""
    else:
        parts = module.split(".")
        # Climb: level 1 = current package, each extra level one up.
        parts = parts[:-node.level] if node.level <= len(parts) else []
        if node.module:
            parts = parts + node.module.split(".")
        base = ".".join(parts)
    return tuple(f"{base}.{alias.name}" if base else alias.name
                 for alias in node.names)
