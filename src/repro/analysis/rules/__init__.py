"""Built-in rules: importing this package registers all of them.

Each module guards one layer's contracts (see the module docstrings
and ``docs/static-analysis.md`` for the catalog):

========================  =========================================
module                    rules
========================  =========================================
:mod:`.rng`               no-stdlib-rng, no-global-numpy-rng
:mod:`.substrate`         bitset-quarantine, uint64-dtype-promotion
:mod:`.concurrency`       unlocked-shared-state, pickle-unsafe-worker
:mod:`.determinism`       float-equality-in-stats,
                          unordered-iteration-to-output
:mod:`.robustness`        swallowed-worker-exception
:mod:`.lifetime`          arena-lifetime
========================  =========================================
"""

from __future__ import annotations

from . import concurrency, determinism, lifetime, rng, robustness, \
    substrate  # noqa: F401

__all__ = ["concurrency", "determinism", "lifetime", "rng",
           "robustness", "substrate"]
