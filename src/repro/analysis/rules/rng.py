"""RNG discipline rules: the PR-2 determinism contract.

The parallel subsystem guarantees bit-identical results at any worker
count by seeding every work unit from a ``numpy.random.SeedSequence``
spawn tree. Two constructs break that contract at the source level:

* **no-stdlib-rng** — drawing from :mod:`random`. The stdlib
  Fisher–Yates stream cannot be spawned per work unit, so any
  ``random.Random`` in a fan-out path couples results to the schedule.
  ``import random`` alone stays legal: the deprecation shims
  (``Dataset.permuted``, ``sequence_from_legacy_rng``) need the name
  for ``isinstance`` checks — only *draws* are flagged.
* **no-global-numpy-rng** — calling ``np.random.seed`` / module-level
  draw functions. Process-wide RNG state is invisible shared state;
  pass a ``Generator`` (``np.random.default_rng(seed)``) instead.
"""

from __future__ import annotations

import ast

from ..registry import Rule, register_rule
from ._util import call_name, numpy_aliases, numpy_random_aliases

__all__ = ["NO_STDLIB_RNG", "NO_GLOBAL_NUMPY_RNG"]

#: Entry points of the stdlib RNG: constructors and module-level draws.
_STDLIB_DRAWS = frozenset({
    "Random", "SystemRandom", "seed", "random", "uniform", "randint",
    "randrange", "getrandbits", "randbytes", "shuffle", "sample",
    "choice", "choices", "betavariate", "binomialvariate",
    "expovariate", "gammavariate", "gauss", "lognormvariate",
    "normalvariate", "paretovariate", "triangular", "vonmisesvariate",
    "weibullvariate",
})

#: ``numpy.random`` attributes that are Generator-era and process-safe
#: to construct anywhere (they hold no hidden global state).
_NUMPY_SAFE = frozenset({
    "default_rng", "Generator", "BitGenerator", "SeedSequence",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


def _check_stdlib_rng(tree, ctx):
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    aliases.add(alias.asname or "random")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                names = ", ".join(a.name for a in node.names)
                yield ctx.finding(
                    "no-stdlib-rng", node,
                    f"'from random import {names}' — the stdlib RNG "
                    "cannot be seeded per work unit; thread a "
                    "numpy.random.Generator from the caller")
    if not aliases:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name is None or "." not in name:
            continue
        head, _, fn = name.rpartition(".")
        if head in aliases and fn in _STDLIB_DRAWS:
            yield ctx.finding(
                "no-stdlib-rng", node,
                f"call to {name}() — determinism contract (PR 2) "
                "requires numpy.random.Generator "
                "(numpy.random.default_rng(seed)) threaded from the "
                "caller; random.Random survives only in whitelisted "
                "deprecation shims")


def _check_global_numpy_rng(tree, ctx):
    modules = numpy_aliases(tree)
    random_mods = numpy_random_aliases(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "numpy.random" and node.level == 0:
                bad = [a.name for a in node.names
                       if a.name not in _NUMPY_SAFE]
                if bad:
                    yield ctx.finding(
                        "no-global-numpy-rng", node,
                        "'from numpy.random import "
                        f"{', '.join(bad)}' draws from the process-"
                        "wide legacy RNG; use default_rng and pass "
                        "the Generator")
            continue
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name is None or "." not in name:
            continue
        head, _, fn = name.rpartition(".")
        if fn in _NUMPY_SAFE:
            continue
        is_np_random = (head in random_mods
                        or ("." in head
                            and head.rpartition(".")[0] in modules
                            and head.rpartition(".")[2] == "random"))
        if is_np_random:
            yield ctx.finding(
                "no-global-numpy-rng", node,
                f"call to {name}() mutates/draws the process-wide "
                "numpy RNG — worker results would depend on schedule; "
                "use a passed numpy.random.Generator")


NO_STDLIB_RNG = register_rule(Rule(
    name="no-stdlib-rng",
    check_fn=_check_stdlib_rng,
    aliases=("stdlib-rng", "no-random-random"),
    description="ban stdlib random draws (random.Random, "
                "random.shuffle, ...) outside deprecation shims",
    invariant="bit-identical output at any worker count (PR 2): every "
              "stochastic step draws from a numpy Generator seeded "
              "per work unit via SeedSequence.spawn",
    exclude=(
        # The PR-5/PR-2 deprecation shims keep random.Random interop
        # alive for one release; tests/benchmarks use it as an oracle.
        "repro/data/dataset.py",
        "repro/parallel/seeding.py",
        "tests/*", "benchmarks/*", "examples/*",
    ),
))

NO_GLOBAL_NUMPY_RNG = register_rule(Rule(
    name="no-global-numpy-rng",
    check_fn=_check_global_numpy_rng,
    aliases=("global-numpy-rng", "no-np-random-seed"),
    description="ban the legacy process-wide numpy RNG "
                "(np.random.seed/shuffle/...); pass a Generator",
    invariant="bit-identical output at any worker count (PR 2): "
              "process-wide RNG state is schedule-dependent in any "
              "thread fan-out",
    exclude=("tests/*", "benchmarks/*", "examples/*"),
))
