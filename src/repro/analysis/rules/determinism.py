"""Output-determinism rules: the PR-2 byte-identity contract.

CSV and report output is locked byte-identical across worker counts,
backends, policies and kernels. Two source-level hazards repeatedly
threatened that lock:

* **float-equality-in-stats** — ``==``/``!=`` between float
  expressions under ``repro/stats/``. PR 2 fixed two property-test
  oracles that broke exactly at ulp boundaries; exact comparison of
  computed floats encodes the same trap in library code. Compare with
  tolerances, or compare the *integer* inputs instead.
* **unordered-iteration-to-output** — iterating a bare ``set`` /
  ``frozenset`` in the modules that render CSVs and reports. Set
  order depends on ``PYTHONHASHSEED`` for strings, so unsorted
  iteration leaks hash randomisation straight into committed output;
  wrap in ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import List, Set

from ..registry import Rule, register_rule
from ._util import call_name

__all__ = ["FLOAT_EQUALITY_IN_STATS", "UNORDERED_ITERATION_TO_OUTPUT"]


def _floatish(node) -> bool:
    """Syntactically float-valued: literal, division, float()/math.*."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _floatish(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _floatish(node.left) or _floatish(node.right)
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name is None:
            return False
        return name == "float" or name.startswith("math.")
    return False


def _check_float_equality(tree, ctx):
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _floatish(left) or _floatish(right):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield ctx.finding(
                    "float-equality-in-stats", node,
                    f"exact float {symbol} in stats code — the PR-2 "
                    "ulp-boundary bug class; use math.isclose/"
                    "tolerances or compare the integer inputs")
                break


_SET_FACTORIES = frozenset({"set", "frozenset"})
#: Order-insensitive consumers a bare set may legally flow into.
_ORDER_FREE = frozenset({
    "sorted", "len", "sum", "min", "max", "any", "all", "set",
    "frozenset", "bool",
})


def _is_set_expr(node, tracked: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return call_name(node) in _SET_FACTORIES
    if isinstance(node, ast.Name):
        return node.id in tracked
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)):
        # Set algebra keeps set-ness on either side.
        return (_is_set_expr(node.left, tracked)
                or _is_set_expr(node.right, tracked))
    return False


class _SetFlow:
    """Per-scope scan: sets consumed by order-sensitive iteration."""

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self.findings: List = []

    def scan_scope(self, body) -> None:
        tracked: Set[str] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    continue
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            if _is_set_expr(node.value, tracked):
                                tracked.add(target.id)
                            else:
                                tracked.discard(target.id)
        for stmt in body:
            for node in ast.walk(stmt):
                self._check_consumption(node, tracked)

    def _flag(self, node, how: str) -> None:
        self.findings.append(self.ctx.finding(
            "unordered-iteration-to-output", node,
            f"{how} over a bare set in an output-rendering module — "
            "set order leaks PYTHONHASHSEED into CSVs/reports; wrap "
            "in sorted(...)"))

    def _check_consumption(self, node, tracked: Set[str]) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter, tracked):
                self._flag(node, "for-loop")
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter, tracked):
                    self._flag(node, "comprehension")
        elif isinstance(node, ast.Call):
            name = call_name(node)
            consumer = None
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "join":
                consumer = "str.join"
            elif name in ("list", "tuple", "enumerate", "iter",
                          "reversed"):
                consumer = f"{name}()"
            if consumer and node.args and _is_set_expr(node.args[0],
                                                       tracked):
                self._flag(node, consumer)


def _check_unordered_iteration(tree, ctx):
    flow = _SetFlow(ctx)
    flow.scan_scope(tree.body)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            flow.scan_scope(node.body)
    return flow.findings


FLOAT_EQUALITY_IN_STATS = register_rule(Rule(
    name="float-equality-in-stats",
    check_fn=_check_float_equality,
    aliases=("float-eq", "no-float-equality"),
    description="ban exact ==/!= between float expressions in the "
                "statistics layer",
    invariant="byte-identical CSVs at any worker count (PR 2): two "
              "ulp-boundary oracle bugs came from exact float "
              "comparison",
    paths=("repro/stats/*",),
))

UNORDERED_ITERATION_TO_OUTPUT = register_rule(Rule(
    name="unordered-iteration-to-output",
    check_fn=_check_unordered_iteration,
    aliases=("unordered-output", "no-set-iteration"),
    description="iteration over bare sets in output-rendering modules "
                "must be sorted()",
    invariant="byte-identical CSVs/reports (PR 2): set order depends "
              "on PYTHONHASHSEED for strings",
    paths=(
        "repro/evaluation/reporting.py", "repro/evaluation/export.py",
        "repro/data/summary.py", "repro/cli.py",
        # The service renders API payloads and cache keys; unordered
        # iteration there would break cached-vs-fresh byte identity.
        "repro/service/*",
    ),
))
