"""Lifetime rules: memmap-backed views must not outlive their arena.

The out-of-core arena (:mod:`repro.data.arena`) hands out numpy views
that alias pages of an open file mapping — ``ArenaFile.whole_words``,
``ArenaFile.segment_words`` and everything sliced from them. Once the
arena is closed (explicit ``close()`` or ``with`` exit) those views
point at unmapped or about-to-be-unmapped pages; touching one is at
best a stale read and at worst a segfault, and numpy cannot detect it.

The **arena-lifetime** rule flags, inside :mod:`repro.data` and
:mod:`repro.mining`, any view derived from an arena word-block method
that can be observed after its arena's lifetime ends:

* a use of the view after the ``with`` block that opened the arena, or
  after an explicit ``arena.close()`` call;
* ``return`` / ``yield`` of the view from inside the ``with`` body;
* storing the view on ``self`` while the function also closes the
  arena (object lifetime exceeds the mapping's).

Materialize with ``np.array(view)`` (a copy) before the close, or keep
the arena open for as long as the view lives (what
``Dataset.open_arena`` does by holding the mapping itself).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..registry import Rule, register_rule
from ._util import call_name

__all__ = ["ARENA_LIFETIME"]

#: ArenaFile methods whose return value aliases the file mapping.
_VIEW_METHODS = frozenset({"whole_words", "segment_words"})

#: Numpy wrappers that may return the same buffer rather than a copy.
_ALIASING_WRAPPERS = frozenset({
    "ascontiguousarray", "asarray", "asanyarray", "ravel", "reshape",
    "view", "transpose", "squeeze",
})


def _view_source(node, views: Dict[str, str]) -> Optional[str]:
    """Arena name a value expression aliases, or ``None`` if it copies.

    Tracks the method calls that mint views, plain name/subscript
    propagation, and the numpy wrappers that are allowed to return the
    original buffer. Anything else (``np.array``, arithmetic, popcount
    reductions) materializes and breaks the chain.
    """
    if isinstance(node, ast.Name):
        return views.get(node.id)
    if isinstance(node, ast.Subscript):
        return _view_source(node.value, views)
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name is None:
            return None
        head, _, method = name.rpartition(".")
        if method in _VIEW_METHODS and head:
            # af.whole_words() / af.segment_words(i): a view of `af`.
            root = head.split(".", 1)[0]
            return root
        if method in _ALIASING_WRAPPERS:
            if head and head.split(".", 1)[0] in views:
                return views[head.split(".", 1)[0]]
            if node.args:
                return _view_source(node.args[0], views)
    return None


def _assignments(func) -> Iterator[Tuple[List[object], object]]:
    for stmt in ast.walk(func):
        if isinstance(stmt, ast.Assign):
            yield stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            yield [stmt.target], stmt.value


def _collect_views(func) -> Dict[str, str]:
    """Map of local name -> arena name it aliases (fixpoint pass)."""
    views: Dict[str, str] = {}
    for _ in range(4):  # chains are short; bound the fixpoint
        changed = False
        for targets, value in _assignments(func):
            arena = _view_source(value, views)
            if arena is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name) \
                        and views.get(target.id) != arena:
                    views[target.id] = arena
                    changed = True
        if not changed:
            break
    return views


def _minted_arenas(func, views: Dict[str, str]) -> set:
    """Every arena name that has a view minted from it anywhere."""
    arenas = set(views.values())
    for _, value in _assignments(func):
        arena = _view_source(value, views)
        if arena is not None:
            arenas.add(arena)
    return arenas


def _close_events(func, arenas: set) -> Dict[str, int]:
    """Arena name -> line after which its mapping is gone.

    A ``with ArenaFile(...) as af`` (any ``with ... as name`` whose
    body mints views of ``name``) closes at the block's last line; an
    explicit ``name.close()`` closes at the call line. The earliest
    close wins.
    """
    closed: Dict[str, int] = {}

    def note(name: str, line: int) -> None:
        if name not in closed or line < closed[name]:
            closed[name] = line

    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                var = item.optional_vars
                if isinstance(var, ast.Name) and var.id in arenas:
                    note(var.id, node.body[-1].end_lineno or node.lineno)
        elif isinstance(node, ast.Call):
            name = call_name(node)
            if name is None:
                continue
            head, _, method = name.rpartition(".")
            if method == "close" and head.split(".", 1)[0] in arenas:
                note(head.split(".", 1)[0], node.lineno)
    return closed


def _with_bounds(func, arenas) -> Dict[str, Tuple[int, int]]:
    """Arena name -> (first, last) line of the with body that owns it."""
    bounds: Dict[str, Tuple[int, int]] = {}
    for node in ast.walk(func):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            var = item.optional_vars
            if isinstance(var, ast.Name) and var.id in arenas:
                bounds[var.id] = (node.body[0].lineno,
                                  node.body[-1].end_lineno or node.lineno)
    return bounds


def _check_arena_lifetime(tree, ctx):
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        views = _collect_views(func)
        arenas = _minted_arenas(func, views)
        if not arenas:
            continue
        closed = _close_events(func, arenas)
        if not closed:
            continue
        bounds = _with_bounds(func, set(closed))
        # 1. Any load of a view after its arena's close line.
        for node in ast.walk(func):
            if not (isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)):
                continue
            arena = views.get(node.id)
            if arena is None or arena not in closed:
                continue
            if node.lineno > closed[arena]:
                yield ctx.finding(
                    "arena-lifetime", node,
                    f"view {node.id!r} of memmap arena {arena!r} used "
                    f"after the arena is closed (line {closed[arena]}); "
                    f"copy with np.array(...) before close/context "
                    f"exit")
        # 2. return/yield of a view from inside the owning with body,
        #    and 3. storing a view on self while the arena closes here.
        for node in ast.walk(func):
            if isinstance(node, (ast.Return, ast.Yield)) \
                    and node.value is not None:
                for leaf in ast.walk(node.value):
                    if not isinstance(leaf, ast.Name):
                        continue
                    arena = views.get(leaf.id)
                    span = bounds.get(arena or "")
                    if span and span[0] <= node.lineno <= span[1]:
                        yield ctx.finding(
                            "arena-lifetime", node,
                            f"view {leaf.id!r} of memmap arena "
                            f"{arena!r} escapes the with block that "
                            f"owns the mapping; copy with "
                            f"np.array(...) or keep the arena open")
                        break
            elif isinstance(node, ast.Assign):
                arena = _view_source(node.value, views)
                if arena is None or arena not in closed:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        yield ctx.finding(
                            "arena-lifetime", node,
                            f"view of memmap arena {arena!r} stored on "
                            f"self outlives the arena closed in this "
                            f"function; copy with np.array(...) first")


ARENA_LIFETIME = register_rule(Rule(
    name="arena-lifetime",
    check_fn=_check_arena_lifetime,
    aliases=("memmap-lifetime", "dangling-arena-view"),
    description="flag numpy views of a memmap arena that outlive "
                "close()/with exit (use-after-unmap)",
    invariant="out-of-core safety (PR 10): word-block views alias the "
              "arena's file mapping and die with it; consumers copy "
              "or keep the arena open",
    paths=("repro/data/*", "repro/mining/*"),
))
