"""Concurrency rules: the PR-3 lock-discipline contract.

The ``LogFactorialBuffer`` race (PR 3) was exactly this shape: a
process-wide mutable table grown from concurrent thread fan-outs
without a lock, silently corrupting Fisher p-values. Two rules guard
the class:

* **unlocked-shared-state** — a module-level or class-level mutable
  container mutated inside a function/method without an enclosing
  ``with <lock>:`` block. Instance attributes (assigned via
  ``self.x = ...``) are per-object state and stay out of scope;
  import-time mutation of module globals is single-threaded and legal.
* **pickle-unsafe-worker** — a class carrying a ``threading.Lock`` (or
  sibling primitive) or a ``numpy`` ``Generator`` attribute without
  ``__getstate__``/``__reduce__``. Locks do not pickle at all, and a
  Generator shipped to a process worker forks its stream — both break
  the processes backend; ``LogFactorialBuffer.__getstate__`` is the
  model fix.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from ..registry import Rule, register_rule
from ._util import call_name, dotted_name

__all__ = ["UNLOCKED_SHARED_STATE", "PICKLE_UNSAFE_WORKER"]

#: Container methods that mutate in place.
_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
    "appendleft", "extendleft",
})

#: Callables whose result is a mutable container.
_MUTABLE_FACTORIES = frozenset({
    "dict", "list", "set", "bytearray", "defaultdict", "OrderedDict",
    "Counter", "deque", "collections.defaultdict",
    "collections.OrderedDict", "collections.Counter",
    "collections.deque",
})

#: Thread-synchronisation constructors.
_LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "threading.Event", "multiprocessing.Lock", "multiprocessing.RLock",
    "Lock", "RLock", "Condition",
})


def _is_mutable_literal(node) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name in _MUTABLE_FACTORIES
    return False


def _is_lock_value(node) -> bool:
    if not isinstance(node, ast.Call):
        return False
    return call_name(node) in _LOCK_FACTORIES


def _assigned_names(stmt) -> Iterator[str]:
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                yield target.id
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        if isinstance(stmt.target, ast.Name):
            yield stmt.target.id


def _stmt_value(stmt):
    if isinstance(stmt, ast.Assign):
        return stmt.value
    if isinstance(stmt, ast.AnnAssign):
        return stmt.value
    return None


def _expr_is_lockish(node) -> bool:
    """A with-context expression that looks like lock acquisition."""
    if isinstance(node, ast.Call):
        # ``with lock.acquire_timeout(...)`` / ``with Lock():``
        return _expr_is_lockish(node.func) or _is_lock_value(node)
    name = dotted_name(node)
    if name is None:
        return False
    return "lock" in name.rsplit(".", 1)[-1].lower()


class _SharedStateChecker:
    """One-module scan for unlocked mutation of shared containers."""

    def __init__(self, tree, ctx) -> None:
        self.ctx = ctx
        self.findings: List = []
        self.module_shared: Set[str] = set()
        self.module_locks: Set[str] = set()
        for stmt in tree.body:
            value = _stmt_value(stmt)
            if value is None:
                continue
            for name in _assigned_names(stmt):
                if _is_mutable_literal(value):
                    self.module_shared.add(name)
                elif _is_lock_value(value):
                    self.module_locks.add(name)
        self.tree = tree

    def run(self) -> List:
        for stmt in self.tree.body:
            self._visit_toplevel(stmt)
        return self.findings

    def _visit_toplevel(self, stmt) -> None:
        if isinstance(stmt, ast.ClassDef):
            self._check_class(stmt)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._check_function(stmt, class_shared=frozenset())
        # Module-level statements mutate at import time: legal.

    # -- class handling -----------------------------------------------

    def _check_class(self, cls: ast.ClassDef) -> None:
        class_mutable: Set[str] = set()
        instance_assigned: Set[str] = set()
        for stmt in cls.body:
            value = _stmt_value(stmt)
            if value is not None:
                for name in _assigned_names(stmt):
                    if _is_mutable_literal(value):
                        class_mutable.add(name)
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        instance_assigned.add(target.attr)
        shared = frozenset(class_mutable - instance_assigned)
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                self._check_function(stmt, class_shared=shared,
                                     class_name=cls.name)
            elif isinstance(stmt, ast.ClassDef):
                self._check_class(stmt)

    # -- function body walk -------------------------------------------

    def _check_function(self, func, class_shared: frozenset,
                        class_name: Optional[str] = None) -> None:
        for stmt in func.body:
            self._scan(stmt, False, class_shared, class_name)

    def _scan(self, node, locked: bool, class_shared: frozenset,
              class_name: Optional[str]) -> None:
        """Recursive walk carrying the lexical lock state."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def starts unlocked: holding a lock around the
            # ``def`` statement does not guard its later calls.
            self._check_function(node, class_shared, class_name)
            return
        if isinstance(node, ast.ClassDef):
            self._check_class(node)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = locked or any(_expr_is_lockish(item.context_expr)
                                  for item in node.items)
            for item in node.items:
                self._scan(item.context_expr, locked, class_shared,
                           class_name)
            for stmt in node.body:
                self._scan(stmt, inner, class_shared, class_name)
            return
        if not locked:
            self._check_node(node, class_shared, class_name)
        for child in ast.iter_child_nodes(node):
            self._scan(child, locked, class_shared, class_name)

    def _shared_target(self, node, class_shared: frozenset,
                       class_name: Optional[str]) -> Optional[str]:
        """Shared-container description if ``node`` refers to one."""
        if isinstance(node, ast.Name) and node.id in self.module_shared:
            return f"module-level {node.id!r}"
        if isinstance(node, ast.Attribute):
            owner = node.value
            if (isinstance(owner, ast.Name)
                    and node.attr in class_shared
                    and owner.id in ("self", "cls", class_name)):
                return f"class-level {node.attr!r}"
        return None

    def _check_node(self, node, class_shared: frozenset,
                    class_name: Optional[str]) -> None:
        """Flag ``node`` itself (children are scanned separately)."""
        target = None
        verb = ""
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS):
                target = self._shared_target(func.value, class_shared,
                                             class_name)
                verb = f".{func.attr}()"
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for tgt in targets:
                if isinstance(tgt, ast.Subscript):
                    target = self._shared_target(tgt.value,
                                                 class_shared,
                                                 class_name)
                    verb = "[...] assignment"
                    if target:
                        break
        elif isinstance(node, ast.Delete):
            for tgt in node.targets:
                if isinstance(tgt, ast.Subscript):
                    target = self._shared_target(tgt.value,
                                                 class_shared,
                                                 class_name)
                    verb = "del [...]"
                    if target:
                        break
        if target:
            self.findings.append(self.ctx.finding(
                "unlocked-shared-state", node,
                f"{verb} mutates {target} shared mutable state "
                "outside a 'with <lock>:' block — the "
                "LogFactorialBuffer race class (PR 3); serialize "
                "writers or make the state per-instance"))


def _check_unlocked_shared_state(tree, ctx):
    return _SharedStateChecker(tree, ctx).run()


_GENERATOR_FACTORIES = frozenset({
    "default_rng", "numpy.random.default_rng", "np.random.default_rng",
    "numpy.random.Generator", "np.random.Generator",
})

_PICKLE_HOOKS = frozenset({
    "__getstate__", "__reduce__", "__reduce_ex__",
})


def _check_pickle_unsafe(tree, ctx):
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        hooks = {stmt.name for stmt in cls.body
                 if isinstance(stmt, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))}
        if hooks & _PICKLE_HOOKS:
            continue
        risky: Dict[str, str] = {}
        for stmt in cls.body:
            value = _stmt_value(stmt)
            if value is None:
                continue
            for name in _assigned_names(stmt):
                if _is_lock_value(value):
                    risky[name] = "lock"
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                if _is_lock_value(node.value):
                    risky[target.attr] = "lock"
                elif (isinstance(node.value, ast.Call)
                      and call_name(node.value)
                      in _GENERATOR_FACTORIES):
                    risky[target.attr] = "generator"
        if not risky:
            continue
        attrs = ", ".join(sorted(risky))
        kinds = set(risky.values())
        detail = []
        if "lock" in kinds:
            detail.append("locks do not pickle")
        if "generator" in kinds:
            detail.append("a shipped Generator forks its stream")
        yield ctx.finding(
            "pickle-unsafe-worker", cls,
            f"class {cls.name} carries {attrs} but defines no "
            f"__getstate__/__reduce__ — {'; '.join(detail)}; the "
            "processes backend cannot ship it "
            "(LogFactorialBuffer.__getstate__ is the model fix)")


UNLOCKED_SHARED_STATE = register_rule(Rule(
    name="unlocked-shared-state",
    check_fn=_check_unlocked_shared_state,
    aliases=("shared-state", "no-unlocked-globals"),
    description="module/class-level mutable containers must be "
                "mutated under a lock (or made per-instance)",
    invariant="lock discipline for process-wide state (PR 3): the "
              "LogFactorialBuffer race corrupted Fisher p-values "
              "silently",
    exclude=("tests/*", "benchmarks/*", "examples/*"),
))

PICKLE_UNSAFE_WORKER = register_rule(Rule(
    name="pickle-unsafe-worker",
    check_fn=_check_pickle_unsafe,
    aliases=("pickle-unsafe", "worker-unsafe"),
    description="classes holding Lock/Generator attributes need "
                "__getstate__/__reduce__ for the processes backend",
    invariant="process-backend portability (PR 2/3): worker payloads "
              "must pickle, and RNG streams must not be forked by "
              "shipping Generators",
    exclude=("tests/*", "benchmarks/*", "examples/*"),
))
