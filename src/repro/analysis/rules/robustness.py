"""Robustness rule: worker loops must not swallow exceptions.

The fault-tolerance PR's contract (``docs/resilience.md``): every
failure inside :mod:`repro.parallel` and :mod:`repro.service` is
**classified and recorded** — retried when transient, surfaced with
its traceback when fatal. A handler that silently discards an
exception breaks the whole chain: the job record shows nothing, the
journal shows nothing, the retry/breaker machinery never hears about
it, and a worker thread can die (or a fault be eaten) without a
trace.

``swallowed-worker-exception`` flags the two shapes that do this:

* a **bare** ``except:`` that never re-raises — it eats
  ``KeyboardInterrupt``/``SystemExit`` along with everything else;
* a broad ``except Exception:`` / ``except BaseException:`` whose
  body is *only* ``pass``/``...``/``continue`` — a pure swallow.

Broad handlers that record what they caught (the worker-loop
catch-all stores the traceback on the job record; the reaper counts
its errors) are exactly the sanctioned pattern and do not match.
The rule is scoped to the resilience-bearing packages; narrowing the
caught type (``except (OSError, ValueError):``) is the usual fix when
a swallow is genuinely intended.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..registry import Rule, register_rule
from ._util import dotted_name

__all__ = ["SWALLOWED_WORKER_EXCEPTION"]

#: Exception names broad enough that silently dropping them hides
#: arbitrary failures.
_BROAD_TYPES = frozenset({"Exception", "BaseException"})


def _handler_type_names(handler: ast.ExceptHandler) -> Iterator[str]:
    node = handler.type
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    for entry in nodes:
        name = dotted_name(entry)
        if name is not None:
            yield name.rsplit(".", 1)[-1]


def _only_swallows(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body does nothing but discard control."""
    for stmt in handler.body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis):
            continue
        return False
    return True


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise)
               for node in ast.walk(handler))


def _check_swallowed(tree, ctx) -> Iterator[object]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            if _reraises(node):
                continue
            yield ctx.finding(
                "swallowed-worker-exception", node,
                "bare 'except:' without a re-raise swallows every "
                "failure (KeyboardInterrupt and SystemExit included) "
                "— catch a named type, or record and re-raise")
            continue
        broad = any(name in _BROAD_TYPES
                    for name in _handler_type_names(node))
        if broad and _only_swallows(node):
            caught = ", ".join(_handler_type_names(node))
            yield ctx.finding(
                "swallowed-worker-exception", node,
                f"'except {caught}:' silently discards the failure — "
                "the resilience contract requires it recorded on the "
                "job/executor record (or the caught type narrowed)")


SWALLOWED_WORKER_EXCEPTION = register_rule(Rule(
    name="swallowed-worker-exception",
    check_fn=_check_swallowed,
    aliases=("no-swallowed-exceptions", "swallowed-exception"),
    description="worker/service code must not silently swallow "
                "broad exceptions",
    invariant="failure classification (resilience PR): every error "
              "in repro/parallel and repro/service is retried, "
              "recorded or re-raised — never silently dropped",
    paths=("repro/parallel/*", "repro/service/*"),
    exclude=("tests/*", "benchmarks/*", "examples/*"),
))
