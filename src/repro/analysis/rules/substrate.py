"""Packed-substrate rules: the PR-4/PR-5 representation contract.

PR 5 made the packed uint64 :class:`~repro.tidvector.TidVector` arena
the one and only record-set representation; the bigint
:mod:`repro.bitset` survives purely as an interop/oracle shim. Two
rules keep it that way:

* **bitset-quarantine** — ``repro.bitset`` may be imported only by the
  converters that bridge representations (``bitmat.py``), the Fig 4
  bigint ablation arm (``mining/diffsets.py``), and test/benchmark
  oracles. Any other import re-opens the second representation the
  refactor closed.
* **uint64-dtype-promotion** — arithmetic between packed uint64 words
  and non-uint64 numpy operands silently promotes dtype (true division
  always lands in float64; mixing with signed arrays promotes or
  errors depending on the numpy version), corrupting word-level
  kernels that assume exact 64-bit popcount semantics. Bitwise ops
  and Python-int scalars (weak promotion) stay legal.
"""

from __future__ import annotations

import ast
from typing import Set

from ..registry import Rule, register_rule
from ._util import call_name, dotted_name, import_targets, numpy_aliases

__all__ = ["BITSET_QUARANTINE", "UINT64_DTYPE_PROMOTION"]


def _check_bitset_quarantine(tree, ctx):
    module = ctx.module
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        for target in import_targets(node, module):
            if target == "repro.bitset" or target.startswith(
                    "repro.bitset."):
                yield ctx.finding(
                    "bitset-quarantine", node,
                    "import of repro.bitset — the bigint bitset is an "
                    "interop shim (PR 5); use repro.tidvector "
                    "(TidVector / pack_* arena builders) instead")
                break


_UINT64_SPELLINGS = frozenset({"uint64", "u8"})
_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv,
              ast.Mod, ast.Pow)
_BITWISE_OPS = (ast.BitAnd, ast.BitOr, ast.BitXor, ast.LShift,
                ast.RShift)


def _is_uint64_dtype(node, np_mods: Set[str]) -> bool:
    """``np.uint64`` / ``"uint64"`` as a dtype expression."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in _UINT64_SPELLINGS
    name = dotted_name(node)
    if name is None:
        return False
    head, _, attr = name.rpartition(".")
    return attr == "uint64" and (head in np_mods or head == "")


class _Uint64Scope:
    """Per-function tracking of names known to hold uint64 arrays."""

    def __init__(self, np_mods: Set[str]) -> None:
        self.np_mods = np_mods
        self.names: Set[str] = set()

    def is_uint64(self, node) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Subscript):
            return self.is_uint64(node.value)
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, _BITWISE_OPS):
            return (self.is_uint64(node.left)
                    or self.is_uint64(node.right))
        if isinstance(node, ast.UnaryOp) and isinstance(
                node.op, ast.Invert):
            return self.is_uint64(node.operand)
        if isinstance(node, ast.Call):
            return self._uint64_call(node)
        return False

    def _uint64_call(self, node: ast.Call) -> bool:
        for kw in node.keywords:
            if kw.arg == "dtype" and _is_uint64_dtype(kw.value,
                                                      self.np_mods):
                return True
        name = call_name(node)
        if name is None:
            return False
        head, _, fn = name.rpartition(".")
        if fn in ("astype", "view") and node.args:
            return _is_uint64_dtype(node.args[0], self.np_mods)
        if fn == "uint64" and (head in self.np_mods or head == ""):
            return True
        return False

    def observe(self, stmt) -> None:
        """Record ``name = <uint64-typed expr>`` assignments."""
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            return
        if not self.is_uint64(value):
            return
        for target in targets:
            if isinstance(target, ast.Name):
                self.names.add(target.id)


def _is_numpy_operand(node, np_mods: Set[str]) -> bool:
    """An expression that clearly carries a non-weak numpy dtype."""
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name is None:
            return False
        head = name.split(".", 1)[0]
        return head in np_mods
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        # Negative operands cannot live in uint64; the result wraps or
        # promotes depending on numpy version.
        return True
    return False


def _check_uint64_promotion(tree, ctx):
    np_mods = numpy_aliases(tree)
    if not np_mods:
        return
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        scope = _Uint64Scope(np_mods)
        for stmt in ast.walk(func):
            scope.observe(stmt)
        if not scope.names:
            continue
        for node in ast.walk(func):
            if not (isinstance(node, ast.BinOp)
                    and isinstance(node.op, _ARITH_OPS)):
                continue
            left_u = scope.is_uint64(node.left)
            right_u = scope.is_uint64(node.right)
            if not (left_u or right_u):
                continue
            if isinstance(node.op, ast.Div):
                yield ctx.finding(
                    "uint64-dtype-promotion", node,
                    "true division on uint64 packed words promotes to "
                    "float64; use // or cast explicitly before "
                    "dividing")
                continue
            other = node.right if left_u else node.left
            if (not (left_u and right_u)
                    and _is_numpy_operand(other, np_mods)
                    and not scope.is_uint64(other)):
                yield ctx.finding(
                    "uint64-dtype-promotion", node,
                    "arithmetic between uint64 packed words and a "
                    "non-uint64 numpy operand silently promotes "
                    "dtype; cast with np.uint64(...)/astype or keep "
                    "to bitwise ops")


BITSET_QUARANTINE = register_rule(Rule(
    name="bitset-quarantine",
    check_fn=_check_bitset_quarantine,
    aliases=("no-bitset-import",),
    description="repro.bitset importable only from the interop "
                "converters, the bigint ablation arm, and test "
                "oracles",
    invariant="one record-set representation (PR 5): TidVector arenas "
              "end-to-end; repro.bitset is a deprecated interop shim",
    exclude=(
        "repro/bitmat.py",        # byte-exact bigint<->packed bridge
        "repro/mining/diffsets.py",  # Fig 4 bigint ablation arm
        "repro/bitset.py",
        "tests/*", "benchmarks/*",
    ),
))

UINT64_DTYPE_PROMOTION = register_rule(Rule(
    name="uint64-dtype-promotion",
    check_fn=_check_uint64_promotion,
    aliases=("uint64-promotion", "packed-dtype"),
    description="flag arithmetic on packed uint64 words that silently "
                "promotes dtype (float64 division, signed mixing)",
    invariant="packed-kernel exactness (PR 4): word buffers stay "
              "uint64 through every kernel; promotion corrupts "
              "popcount semantics",
    paths=(
        "repro/tidvector.py", "repro/bitmat.py", "repro/_native.py",
        "repro/mining/diffsets.py", "repro/mining/tidsets.py",
        "repro/data/dataset.py",
    ),
))
