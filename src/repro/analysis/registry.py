"""The pluggable lint-rule registry.

Every invariant checker the analysis pass ships is described by one
:class:`Rule` spec — canonical name, aliases, the contract it guards,
the PR that established that contract, an optional path scope, and a
``check`` callable — and registered here at import time by its home
module under :mod:`repro.analysis.rules`. The engine, the reporters
and the CLI enumerate and resolve rules exclusively through this
registry, mirroring the corrections/miners registries: adding a rule
is one :func:`register_rule` call, not an engine patch:

>>> from repro.analysis import Finding, Rule, register_rule
>>> def no_print(tree, ctx):                     # doctest: +SKIP
...     import ast
...     for node in ast.walk(tree):
...         if (isinstance(node, ast.Call)
...                 and isinstance(node.func, ast.Name)
...                 and node.func.id == "print"):
...             yield ctx.finding("no-print", node, "print() call")
>>> register_rule(Rule(                          # doctest: +SKIP
...     name="no-print", check_fn=no_print,
...     description="library code must not print"))

Name resolution accepts the canonical name, any registered alias, and
case-insensitive variants of both, with a did-you-mean suggestion on
near misses — the exact semantics of
:func:`repro.corrections.resolve_correction`. Out-of-tree rules load
through the same ``--plugin`` / ``REPRO_PLUGINS`` hooks as out-of-tree
corrections and miners.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Tuple

from ..errors import AnalysisError

__all__ = [
    "Rule",
    "available_rules",
    "get_rule",
    "register_rule",
    "resolve_rule",
    "rule_names",
    "unregister_rule",
]

#: Signature of a rule's check callable: ``check_fn(tree, ctx)`` yields
#: :class:`~repro.analysis.engine.Finding` objects for one parsed file.
CheckFn = Callable[[object, object], Iterable[object]]


@dataclass(frozen=True)
class Rule:
    """One registered static-analysis rule.

    Attributes
    ----------
    name:
        Canonical kebab-case identifier (``"no-stdlib-rng"``), the key
        findings, suppressions and baselines use.
    check_fn:
        ``check_fn(tree, ctx) -> Iterable[Finding]`` where ``tree`` is
        the parsed :mod:`ast` module and ``ctx`` the
        :class:`~repro.analysis.engine.FileContext`. Use
        ``ctx.finding(...)`` to build findings so paths stay canonical.
    description:
        One-line summary for listings.
    invariant:
        The codebase contract the rule guards, and which PR
        established it (shown in ``--list-rules`` and the docs).
    aliases:
        Additional resolvable spellings (resolution is
        case-insensitive on top of these).
    paths:
        fnmatch patterns; when non-empty the rule only runs on files
        whose canonical path matches one of them (e.g. the
        float-equality rule is scoped to ``repro/stats/*``).
    exclude:
        fnmatch patterns naming the rule's whitelist — files where the
        guarded construct is legitimate (deprecation shims, interop
        modules, test oracles).
    """

    name: str
    check_fn: CheckFn
    description: str = ""
    invariant: str = ""
    aliases: Tuple[str, ...] = ()
    paths: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def all_names(self) -> Tuple[str, ...]:
        """Every spelling this rule answers to."""
        return (self.name,) + tuple(self.aliases)

    def applies_to(self, ctx) -> bool:
        """Whether this rule's path scope covers ``ctx``'s file."""
        if self.paths and not ctx.matches(self.paths):
            return False
        if self.exclude and ctx.matches(self.exclude):
            return False
        return True

    def check(self, tree, ctx) -> List[object]:
        """Run the rule over one parsed file (scope already decided)."""
        return list(self.check_fn(tree, ctx))


_REGISTRY: Dict[str, Rule] = {}
# Lookup table: lower-cased spelling -> canonical name.
_INDEX: Dict[str, str] = {}


def register_rule(spec: Rule, overwrite: bool = False) -> Rule:
    """Add a rule to the registry and return it.

    Every spelling in ``spec.all_names()`` becomes resolvable
    case-insensitively. Colliding names raise :class:`AnalysisError`
    unless ``overwrite=True``, in which case the previous owner of the
    canonical name is replaced wholesale.
    """
    if not spec.name:
        raise AnalysisError("rule name must be non-empty")
    replaced = None
    if overwrite:
        canonical = _INDEX.get(spec.name.lower())
        if canonical is not None and canonical.lower() == spec.name.lower():
            replaced = _REGISTRY[canonical]
    taken = [spelling for spelling in spec.all_names()
             if spelling.lower() in _INDEX
             and _INDEX[spelling.lower()] != getattr(replaced, "name",
                                                     None)]
    if taken:
        raise AnalysisError(
            f"cannot register rule {spec.name!r}: "
            f"name(s) {sorted(set(taken))} already registered")
    if replaced is not None:
        unregister_rule(replaced.name)
    # Registration happens at import time, which Python serializes;
    # same convention as the corrections/miners registries.
    _REGISTRY[spec.name] = spec  # repro-lint: disable=unlocked-shared-state
    for spelling in spec.all_names():
        _INDEX[spelling.lower()] = spec.name  # repro-lint: disable=unlocked-shared-state
    return spec


def unregister_rule(name: str) -> None:
    """Remove a rule (by any of its spellings) from the registry."""
    canonical = _INDEX.get(name.lower())
    if canonical is None:
        raise AnalysisError(f"unknown rule {name!r}")
    spec = _REGISTRY.pop(canonical)  # repro-lint: disable=unlocked-shared-state
    for spelling in spec.all_names():
        _INDEX.pop(spelling.lower(), None)  # repro-lint: disable=unlocked-shared-state


def resolve_rule(name: str) -> Rule:
    """Resolve any accepted spelling to its registered rule.

    Raises :class:`AnalysisError` listing the valid names and a
    did-you-mean suggestion for near-miss spellings.
    """
    if not isinstance(name, str):
        raise AnalysisError(
            f"rule name must be a string, got {type(name).__name__}")
    canonical = _INDEX.get(name.lower())
    if canonical is None:
        raise AnalysisError(_unknown_message(name))
    return _REGISTRY[canonical]


def get_rule(name: str) -> Rule:
    """Alias of :func:`resolve_rule` (corrections-registry parity)."""
    return resolve_rule(name)


def available_rules() -> List[Rule]:
    """All registered rules, in registration order."""
    return list(_REGISTRY.values())


def rule_names() -> List[str]:
    """Canonical names of all registered rules, sorted."""
    return sorted(_REGISTRY)


def _accepted_spellings() -> List[str]:
    seen: List[str] = []
    for spec in _REGISTRY.values():
        for spelling in spec.all_names():
            if spelling not in seen:
                seen.append(spelling)
    return seen


def _unknown_message(name: str) -> str:
    spellings = _accepted_spellings()
    message = (f"unknown rule {name!r}; valid names: "
               f"{sorted(spellings, key=str.lower)}")
    close = difflib.get_close_matches(
        name.lower(), [s.lower() for s in spellings], n=1, cutoff=0.6)
    if close:
        original = next(s for s in spellings if s.lower() == close[0])
        message += f" — did you mean {original!r}?"
    return message
