"""The analysis engine: file contexts, suppressions, and the driver.

One :class:`FileContext` is built per analyzed file; it parses the
source once, extracts suppression pragmas from the comment stream, and
canonicalises the path so rule scopes and baselines are stable no
matter which directory the analysis is launched from. Rules receive
the shared parse tree and yield :class:`Finding` objects; the driver
filters suppressed findings and returns the rest sorted by location.

Suppression syntax (checked against the comment tokens, so string
literals cannot trigger it)::

    value = risky()  # repro-lint: disable=no-stdlib-rng
    # repro-lint: disable-file=float-equality-in-stats,no-stdlib-rng

A line pragma silences the named rules (or ``all``) on its own line; a
``disable-file`` pragma, anywhere in the file, silences them for the
whole file. Suppressions are deliberate, visible-in-diff escapes; the
committed baseline (:mod:`repro.analysis.baseline`) is for the
pre-existing debt the gate must not let grow.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import AnalysisError
from .registry import Rule, available_rules, resolve_rule

__all__ = [
    "Finding",
    "FileContext",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
]

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*"
    r"([A-Za-z0-9_,\-\s]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the canonical (package-rooted) posix path, so the same
    violation fingerprints identically from any launch directory.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across unrelated line drift."""
        return (self.rule, self.path, self.message)

    def describe(self) -> str:
        """One text-report line."""
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule}: {self.message}")

    def to_json(self) -> Dict[str, object]:
        """Plain dict for the JSON reporter and the baseline file."""
        return {"rule": self.rule, "path": self.path,
                "line": self.line, "col": self.col,
                "message": self.message}


class FileContext:
    """Everything a rule may want to know about one file.

    Parameters
    ----------
    path:
        Path the file was reached under (display / canonicalisation
        input). For in-memory fixtures any virtual path works.
    source:
        File contents; read from ``path`` when omitted.
    """

    def __init__(self, path, source: Optional[str] = None) -> None:
        self.path = Path(path)
        if source is None:
            source = self.path.read_text(encoding="utf-8")
        self.source = source
        self.canonical = _canonical_path(self.path)
        try:
            self.tree = ast.parse(source)
        except SyntaxError as exc:
            raise AnalysisError(
                f"cannot parse {self.canonical}: {exc}") from exc
        self._line_disables: Dict[int, Set[str]] = {}
        self._file_disables: Set[str] = set()
        self._parse_pragmas()

    # -- path scope ---------------------------------------------------

    def matches(self, patterns: Sequence[str]) -> bool:
        """fnmatch of the canonical path / basename against patterns."""
        name = self.path.name
        for pattern in patterns:
            if (fnmatch(self.canonical, pattern)
                    or fnmatch(name, pattern)):
                return True
        return False

    @property
    def is_test(self) -> bool:
        """Under a ``tests``/``benchmarks`` tree, or a test module."""
        parts = set(self.canonical.split("/"))
        if parts & {"tests", "benchmarks"}:
            return True
        return (self.path.name.startswith("test_")
                or self.path.name == "conftest.py")

    @property
    def module(self) -> str:
        """Dotted module name guess (``repro.stats.fisher``)."""
        dotted = self.canonical[:-3] if self.canonical.endswith(".py") \
            else self.canonical
        dotted = dotted.replace("/", ".")
        if dotted.endswith(".__init__"):
            dotted = dotted[:-len(".__init__")]
        return dotted

    # -- findings and suppression -------------------------------------

    def finding(self, rule: str, node, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(path=self.canonical,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       rule=rule, message=message)

    def suppressed(self, finding: Finding) -> bool:
        """Whether a pragma silences this finding."""
        for disabled in (self._file_disables,
                         self._line_disables.get(finding.line, ())):
            if "all" in disabled or finding.rule in disabled:
                return True
        return False

    def _parse_pragmas(self) -> None:
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(self.source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                match = _PRAGMA.search(tok.string)
                if not match:
                    continue
                kind, names = match.groups()
                rules = {name.strip() for name in names.split(",")
                         if name.strip()}
                if kind == "disable-file":
                    self._file_disables |= rules
                else:
                    self._line_disables.setdefault(
                        tok.start[0], set()).update(rules)
        except tokenize.TokenError:
            # ast.parse succeeded, so this is a tokenizer-only corner
            # (e.g. trailing backslash); run without pragmas.
            pass


def _canonical_path(path: Path) -> str:
    """Package-rooted posix path: stable across launch directories.

    ``/any/prefix/src/repro/stats/fisher.py`` -> ``repro/stats/
    fisher.py``; ``/any/prefix/tests/stats/test_fisher.py`` ->
    ``tests/stats/test_fisher.py``. Files outside a recognised root
    keep their path relative to the current directory when possible.
    """
    posix = path.as_posix()
    parts = posix.split("/")
    for root in ("repro", "tests", "benchmarks", "examples"):
        if root in parts:
            index = parts.index(root)
            # `src/repro/...` and `repro/...` both root at `repro`;
            # ignore a bare trailing component (a file named repro).
            if index < len(parts) - 1 or parts[index].endswith(".py"):
                return "/".join(parts[index:])
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return posix


def iter_python_files(paths: Sequence) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            out.append(p)
        elif not p.exists():
            raise AnalysisError(f"no such file or directory: {entry}")
    unique: List[Path] = []
    seen: Set[str] = set()
    for p in out:
        key = p.resolve().as_posix()
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique


def _selected_rules(select: Optional[Sequence[str]]) -> List[Rule]:
    if select is None:
        rules = available_rules()
        if not rules:
            raise AnalysisError(
                "no rules registered; import repro.analysis.rules or "
                "register custom rules first")
        return rules
    return [resolve_rule(name) for name in select]


def analyze_source(path, source: str,
                   select: Optional[Sequence[str]] = None,
                   ) -> List[Finding]:
    """Analyze one in-memory source blob (fixture entry point)."""
    ctx = FileContext(path, source=source)
    return _run_rules(ctx, _selected_rules(select))


def analyze_file(path, select: Optional[Sequence[str]] = None,
                 ) -> List[Finding]:
    """Analyze one file on disk."""
    ctx = FileContext(path)
    return _run_rules(ctx, _selected_rules(select))


def analyze_paths(paths: Sequence,
                  select: Optional[Sequence[str]] = None,
                  ) -> List[Finding]:
    """Analyze files/directories; findings sorted by location."""
    rules = _selected_rules(select)
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(_run_rules(FileContext(path), rules))
    return sorted(findings)


def _run_rules(ctx: FileContext, rules: Iterable[Rule]) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx.tree, ctx):
            if not ctx.suppressed(finding):
                findings.append(finding)
    # Overlapping scope walks may surface one violation twice; the
    # Finding tuple identity makes dedup exact.
    return sorted(set(findings))
