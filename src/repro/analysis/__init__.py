"""AST-based invariant checking: ``repro lint``.

Five PRs of refactoring established contracts that nothing enforced
mechanically — bit-identical CSV output at any worker count (PR 2),
the packed :class:`~repro.tidvector.TidVector` substrate as the only
record-set representation (PR 5), lock discipline for process-wide
mutable state (PR 3). This package enforces them at the AST level,
before a test ever runs:

* a visitor **engine** that parses each file once and runs every
  registered rule over the shared tree
  (:mod:`repro.analysis.engine`);
* a rule **registry** with the corrections/miners registry semantics —
  aliases, case-insensitive resolution, did-you-mean,
  :func:`register_rule` for out-of-tree rules
  (:mod:`repro.analysis.registry`);
* per-line / per-file **suppression** pragmas
  (``# repro-lint: disable=rule``);
* a committed JSON **baseline** with a zero-new-findings gate
  (:mod:`repro.analysis.baseline`);
* **text/JSON reporters** and two command-line entry points:
  ``python -m repro.analysis`` and the ``repro lint`` subcommand.

>>> from repro.analysis import analyze_paths          # doctest: +SKIP
>>> findings = analyze_paths(["src/repro"])           # doctest: +SKIP
"""

from __future__ import annotations

from .baseline import Baseline, BaselineDiff
from .engine import (
    FileContext,
    Finding,
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from .registry import (
    Rule,
    available_rules,
    get_rule,
    register_rule,
    resolve_rule,
    rule_names,
    unregister_rule,
)
from . import rules  # noqa: F401  (registers the built-in rules)
from .report import render_json, render_text

__all__ = [
    "Baseline",
    "BaselineDiff",
    "FileContext",
    "Finding",
    "Rule",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "available_rules",
    "get_rule",
    "iter_python_files",
    "main",
    "register_rule",
    "render_json",
    "render_text",
    "resolve_rule",
    "rule_names",
    "unregister_rule",
]


def main(argv=None, out=None):
    """CLI entry point (delegates to :mod:`repro.analysis.cli`)."""
    from .cli import main as _main

    return _main(argv, out=out)
