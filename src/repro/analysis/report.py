"""Text and JSON reporters for analysis runs."""

from __future__ import annotations

import json
from typing import List, Optional, Sequence

from .baseline import BaselineDiff
from .engine import Finding

__all__ = ["render_text", "render_json"]


def render_text(findings: Sequence[Finding],
                diff: Optional[BaselineDiff] = None,
                n_files: Optional[int] = None,
                rules_run: Optional[Sequence[str]] = None) -> str:
    """Human-readable report; new findings lead, baselined debt follows.

    Without a baseline every finding is reported as actionable.
    """
    lines: List[str] = []
    new = list(findings) if diff is None else diff.new
    for finding in new:
        lines.append(finding.describe())
    if diff is not None and diff.matched:
        lines.append(f"({len(diff.matched)} baselined finding(s) "
                     "suppressed; run with --show-baselined to list)")
    if diff is not None and diff.stale:
        lines.append(f"{len(diff.stale)} stale baseline entr"
                     f"{'y' if len(diff.stale) == 1 else 'ies'} — "
                     "fixed debt; refresh with --update-baseline:")
        for entry in diff.stale:
            lines.append(f"  {entry['path']}: {entry['rule']}: "
                         f"{entry['message']}")
    scanned = "" if n_files is None else f" across {n_files} file(s)"
    ran = "" if rules_run is None else f", {len(rules_run)} rule(s)"
    if new:
        lines.append(f"{len(new)} new finding(s){scanned}{ran}")
    else:
        lines.append(f"clean: 0 new findings{scanned}{ran}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding],
                diff: Optional[BaselineDiff] = None,
                n_files: Optional[int] = None,
                rules_run: Optional[Sequence[str]] = None) -> str:
    """Machine-readable report mirroring :func:`render_text`."""
    new = list(findings) if diff is None else diff.new
    payload = {
        "new": [finding.to_json() for finding in new],
        "baselined": ([] if diff is None
                      else [f.to_json() for f in diff.matched]),
        "stale_baseline": [] if diff is None else list(diff.stale),
        "summary": {
            "new": len(new),
            "baselined": 0 if diff is None else len(diff.matched),
            "stale": 0 if diff is None else len(diff.stale),
            "files": n_files,
            "rules": list(rules_run) if rules_run is not None else None,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
