"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DataError(ReproError):
    """A dataset is malformed or inconsistent with what an API expects."""


class LoaderError(DataError):
    """A file could not be parsed into a dataset."""


class MiningError(ReproError):
    """Frequent pattern mining was invoked with invalid parameters."""


class StatsError(ReproError):
    """A statistical routine received out-of-domain arguments."""


class CorrectionError(ReproError):
    """A multiple-testing-correction procedure was misconfigured."""


class EvaluationError(ReproError):
    """The evaluation harness was driven with inconsistent inputs."""


class AnalysisError(ReproError):
    """The static-analysis pass (``repro lint``) was misconfigured."""


class TransientError(ReproError):
    """A failure expected to succeed on retry (worker killed, pool
    broken, lock contention, injected fault).

    The marker class :func:`repro.parallel.resilience.is_transient`
    recognises explicitly; raise it (or a subclass) from code that
    knows its failure is retry-worthy.
    """


class DeadlineExceeded(TransientError):
    """A work unit overran its per-unit deadline.

    Raised by the process backend of
    :class:`repro.parallel.Executor` when ``deadline`` is set; the
    hung worker is terminated and the unit is eligible for retry
    (possibly on a degraded backend).
    """


class ServiceError(ReproError):
    """The mining service (:mod:`repro.service`) was driven with an
    invalid request: bad job parameters, a malformed payload, or a
    conflicting dataset registration."""


class JobNotFound(ServiceError):
    """A job id names no job the orchestrator knows about.

    Raised by :meth:`repro.service.jobs.JobManager.get` with the
    registries' did-you-mean convention: the message lists known job
    ids and suggests the closest spelling.
    """


class DatasetNotRegistered(ServiceError):
    """A dataset name or fingerprint is not in the dataset registry.

    Raised by :meth:`repro.service.registry.DatasetRegistry.get` with
    the registries' did-you-mean convention.
    """
