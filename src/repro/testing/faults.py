"""Deterministic fault injection behind named production call sites.

The resilience layer (:mod:`repro.parallel.resilience`, the job
journal, the artifact store's busy retry) exists to survive failures
that ordinary tests cannot produce: a SIGKILLed process worker, a
``SQLITE_BUSY`` under concurrent puts, a hung executor, a broken C
compiler. This module makes those failures *injectable* so the
``tests/chaos`` suite can assert the recovery contract — every
injected fault either recovers to byte-identical output or fails
loudly with a classified error.

Injection points are compiled into the production call sites by name:

==========================  ==========================================
point                       effect at the call site
==========================  ==========================================
``worker-kill``             a process-backend worker SIGKILLs itself
                            before running its shard (the parent sees
                            a broken pool)
``sqlite-busy``             an artifact-store/journal write raises
                            ``sqlite3.OperationalError: database is
                            locked`` before touching the database
``sqlite-slow-write``       an artifact-store/journal write sleeps
                            briefly before executing (induces real
                            cross-process lock contention)
``native-compile-failure``  :func:`repro._native.load_suite` behaves
                            as if the C compiler failed (numpy
                            fallback engages)
``executor-hang``           a process-backend worker sleeps past any
                            reasonable deadline before running its
                            shard
==========================  ==========================================

Arming uses the ``REPRO_FAULTS`` environment variable — parsed once
at import, so forked worker processes inherit the plan — or
:func:`arm` at runtime (tests)::

    REPRO_FAULTS=worker-kill:0.2                # p=0.2, unlimited
    REPRO_FAULTS=sqlite-busy:1.0:3              # at most 3 fires
    REPRO_FAULTS=worker-kill:0.2,sqlite-busy:0.5:2

When nothing is armed, :func:`should_fire` is one dict lookup against
an empty mapping — no RNG, no syscalls, no locks — so shipping the
injection points in production code is free.

Firing is **deterministic**: the *k*-th check of point *p* fires iff
``sha256(seed:p:k)``'s leading 64 bits, read as a fraction, fall
below the armed probability. The check counter lives in a
``multiprocessing.Value`` created at arm time, so forked process
workers share one counter sequence instead of each replaying the
parent's — a retried work unit draws a fresh index and the draw
sequence cannot livelock a retry loop. The seed comes from
``REPRO_FAULTS_SEED`` (default 0).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from ..errors import ReproError

__all__ = [
    "FAULT_POINTS",
    "FaultSpec",
    "arm",
    "disarm",
    "fault_stats",
    "hang_seconds",
    "parse_plan",
    "plan_description",
    "should_fire",
    "sleep_if",
    "suspended",
]

FAULT_POINTS = ("worker-kill", "sqlite-busy", "sqlite-slow-write",
                "native-compile-failure", "executor-hang")

_ENV = "REPRO_FAULTS"
_SEED_ENV = "REPRO_FAULTS_SEED"
_HANG_ENV = "REPRO_FAULTS_HANG"

#: Default sleep of the ``executor-hang`` fault; long enough that any
#: sane per-unit deadline expires first, short enough that a leaked
#: worker drains in bounded time if nothing kills it.
_DEFAULT_HANG_SECONDS = 30.0

#: Default sleep of ``sqlite-slow-write``.
_SLOW_WRITE_SECONDS = 0.05


class FaultSpec:
    """One armed injection point and its shared firing state.

    ``checks``/``fires`` are process-shared counters (``fork`` start
    method), so a parent test observes faults fired inside its pool
    workers, and worker processes draw disjoint check indices.
    """

    def __init__(self, point: str, probability: float,
                 max_fires: Optional[int], seed: int) -> None:
        if point not in FAULT_POINTS:
            raise ReproError(
                f"unknown fault point {point!r}; valid points: "
                f"{', '.join(FAULT_POINTS)}")
        if not 0.0 <= probability <= 1.0:
            raise ReproError(
                f"fault probability must be in [0, 1], got "
                f"{probability!r} for {point!r}")
        if max_fires is not None and max_fires < 0:
            raise ReproError(
                f"fault count must be >= 0, got {max_fires!r} "
                f"for {point!r}")
        self.point = point
        self.probability = probability
        self.max_fires = max_fires
        self.seed = seed
        self._checks = multiprocessing.Value("q", 0)
        self._fires = multiprocessing.Value("q", 0)

    def describe(self) -> str:
        tail = "" if self.max_fires is None else f":{self.max_fires}"
        return f"{self.point}:{self.probability:g}{tail}"

    # -- firing --------------------------------------------------------

    def should_fire(self) -> bool:
        """Deterministically decide (and record) one check."""
        with self._checks.get_lock():
            index = self._checks.value
            self._checks.value = index + 1
        if not self.probability:
            return False
        if _fraction(self.seed, self.point, index) >= self.probability:
            return False
        with self._fires.get_lock():
            if (self.max_fires is not None
                    and self._fires.value >= self.max_fires):
                return False
            self._fires.value += 1
        return True

    def stats(self) -> Dict[str, int]:
        return {"checks": int(self._checks.value),
                "fires": int(self._fires.value)}


def _fraction(seed: int, point: str, index: int) -> float:
    digest = hashlib.sha256(
        f"{seed}:{point}:{index}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def parse_plan(text: str,
               seed: Optional[int] = None) -> Dict[str, FaultSpec]:
    """Parse a ``point:prob[:count][,point:prob[:count]...]`` plan."""
    if seed is None:
        seed = int(os.environ.get(_SEED_ENV, "0") or "0")
    plan: Dict[str, FaultSpec] = {}
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        fields = chunk.split(":")
        if len(fields) not in (2, 3):
            raise ReproError(
                f"bad {_ENV} entry {chunk!r}; expected "
                f"point:probability[:count]")
        point = fields[0].strip()
        try:
            probability = float(fields[1])
            max_fires = int(fields[2]) if len(fields) == 3 else None
        except ValueError as exc:
            raise ReproError(
                f"bad {_ENV} entry {chunk!r}: {exc}") from exc
        if point in plan:
            raise ReproError(
                f"fault point {point!r} armed twice in {text!r}")
        plan[point] = FaultSpec(point, probability, max_fires, seed)
    return plan


# The armed plan. Empty dict == disarmed; the hot path is one
# truthiness check + dict lookup. Mutated only under _LOCK (arm /
# disarm / suspended); forked workers inherit the parent's plan and
# share its counters.
_LOCK = threading.Lock()
_PLAN: Dict[str, FaultSpec] = {}


def arm(text: str, seed: Optional[int] = None) -> Dict[str, FaultSpec]:
    """Install a fault plan (replacing any active one); returns it."""
    plan = parse_plan(text, seed=seed)
    with _LOCK:
        _PLAN.clear()
        _PLAN.update(plan)
    return dict(plan)


def disarm() -> None:
    """Remove every armed fault."""
    with _LOCK:
        _PLAN.clear()


@contextmanager
def suspended() -> Iterator[None]:
    """Temporarily disarm all faults (chaos tests compute their
    fault-free baselines under this)."""
    with _LOCK:
        saved = dict(_PLAN)
        _PLAN.clear()
    try:
        yield
    finally:
        with _LOCK:
            _PLAN.clear()
            _PLAN.update(saved)


def should_fire(point: str) -> bool:
    """Whether the armed plan fires ``point`` at this check.

    The production-facing hot path: when nothing is armed this is one
    dict lookup returning ``False``.
    """
    if not _PLAN:
        return False
    spec = _PLAN.get(point)
    if spec is None:
        return False
    return spec.should_fire()


def sleep_if(point: str, duration: float = _SLOW_WRITE_SECONDS) -> bool:
    """Sleep ``duration`` seconds when ``point`` fires."""
    if should_fire(point):
        time.sleep(duration)
        return True
    return False


def hang_seconds() -> float:
    """How long the ``executor-hang`` fault sleeps
    (``REPRO_FAULTS_HANG``, default 30s)."""
    raw = os.environ.get(_HANG_ENV, "").strip()
    try:
        return float(raw) if raw else _DEFAULT_HANG_SECONDS
    except ValueError:
        return _DEFAULT_HANG_SECONDS


def plan_description() -> str:
    """The armed plan as a ``REPRO_FAULTS`` string ('' if disarmed)."""
    with _LOCK:
        return ",".join(spec.describe()
                        for _, spec in sorted(_PLAN.items()))


def fault_stats() -> Dict[str, Dict[str, int]]:
    """Check/fire counters per armed point (shared across workers)."""
    with _LOCK:
        return {point: spec.stats()
                for point, spec in sorted(_PLAN.items())}


# Arm from the environment at import time: forked process workers and
# `repro serve` subprocesses inherit the plan without any plumbing.
_env_plan = os.environ.get(_ENV, "").strip()
if _env_plan:
    arm(_env_plan)
del _env_plan
