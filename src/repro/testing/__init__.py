"""Test-support machinery shipped with the library.

:mod:`repro.testing.faults` is the fault-injection harness behind the
``tests/chaos`` suite and the CI chaos job: production modules embed
named injection points (``worker-kill``, ``sqlite-busy``, …) that are
inert until armed via the ``REPRO_FAULTS`` environment variable or
:func:`~repro.testing.faults.arm`. It lives inside the package —
not under ``tests/`` — because the injection points are compiled into
the production call sites and forked worker processes must inherit
the armed state.
"""

from .faults import (
    FAULT_POINTS,
    FaultSpec,
    arm,
    disarm,
    fault_stats,
    plan_description,
    should_fire,
    suspended,
)

__all__ = [
    "FAULT_POINTS",
    "FaultSpec",
    "arm",
    "disarm",
    "fault_stats",
    "plan_description",
    "should_fire",
    "suspended",
]
