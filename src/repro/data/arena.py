"""Out-of-core arena files and record-sharded dataset views.

The packed ``(n_items, ceil(n/64))`` uint64 arena (see
:mod:`repro.tidvector`) is the one representation every mining and
scoring path consumes. This module puts that arena on disk in a shape
that every access pattern can reach **without materializing the whole
thing in RAM**:

* :class:`ArenaFile` — the on-disk format: a magic + JSON header (item
  catalog, class names, labels offset, per-segment metadata and the
  dataset content fingerprint, so ``Dataset.fingerprint()`` is readable
  without a full scan), an ``int64`` class-label block, an ``int64``
  per-segment item-support block, and K *record-range segments*, each a
  C-order ``(n_items, seg_words)`` uint64 block. Segment boundaries sit
  at multiples of 64 records, so a segment's words are exactly a word
  range of the logical whole arena and a single-segment file maps
  zero-copy as the dataset's item arena (``np.memmap``). Files are
  written to a temp sibling and atomically renamed into place, so a
  crashed writer never leaves a half-written arena under the real name.
* :class:`ShardedDataset` — a :class:`~repro.data.dataset.Dataset`-
  shaped read view over K record-range shards. Per-shard class counts
  and item supports are merged at the shard boundary (disjoint record
  ranges → exact integer sums, proven equal to whole-dataset counts by
  the property suite), and item tidsets are assembled lazily one item
  at a time from per-segment row reads — so mining touches only the
  rows it asks for and memory stays bounded by the frequent-item set,
  not the dataset.

Memory model: opening an arena reads the header, labels and support
blocks (O(n + K·n_items) small integers) and maps *nothing*. The
whole-file map is taken only by ``Dataset.open_arena`` on single-
segment files (zero-copy workers); sharded access uses per-segment
windows and pread-style row reads, so a process under a hard address-
space cap (``ulimit -v``) smaller than the file can still mine it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import DataError
from ..tidvector import TidVector, words_for
from .dataset import Dataset
from .items import ItemCatalog

__all__ = [
    "ARENA_MAGIC",
    "ARENA_SUFFIX",
    "ArenaFile",
    "ArenaSegment",
    "ShardedDataset",
    "write_arena",
]

PathLike = Union[str, Path]

ARENA_MAGIC = b"REPROARN"
ARENA_VERSION = 1
#: Conventional file suffix recognized by the CLI/service loaders.
ARENA_SUFFIX = ".arena"

_HEADER_FIXED = 16  # magic (8 bytes) + uint64 header length


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


class ArenaSegment:
    """Metadata of one record-range segment of an :class:`ArenaFile`.

    ``start`` is the global id of the segment's first record and is
    always a multiple of 64 (except implicitly for ``start == 0``), so
    local bit ``j`` of the segment is global record ``start + j`` and
    the segment's ``(n_items, n_words)`` block is the global word range
    ``[start // 64, start // 64 + n_words)`` of the logical arena.
    """

    __slots__ = ("index", "start", "n_records", "n_words", "offset",
                 "class_counts")

    def __init__(self, index: int, start: int, n_records: int,
                 n_words: int, offset: int,
                 class_counts: Sequence[int]) -> None:
        self.index = index
        self.start = start
        self.n_records = n_records
        self.n_words = n_words
        self.offset = offset
        self.class_counts = np.asarray(class_counts, dtype=np.int64)

    @property
    def stop(self) -> int:
        return self.start + self.n_records

    def __repr__(self) -> str:
        return (f"ArenaSegment(index={self.index}, start={self.start}, "
                f"n_records={self.n_records})")


def segment_boundaries(n_records: int, n_segments: int) -> List[int]:
    """Record-range split points for ``n_segments`` word-aligned shards.

    Returns ``n_segments + 1`` ascending offsets starting at 0 and
    ending at ``n_records``; every interior boundary is a multiple of
    64 so each segment's packed words are a clean word-range slice.
    Requesting more segments than ``ceil(n_records / 64)`` words
    collapses to one segment per word.
    """
    if n_records <= 0:
        raise DataError("cannot segment an empty record range")
    if n_segments < 1:
        raise DataError("n_segments must be >= 1")
    n_words = words_for(n_records)
    n_segments = min(n_segments, n_words)
    split = np.linspace(0, n_words, n_segments + 1).round().astype(int)
    bounds = sorted({int(w) * 64 for w in split})
    bounds[-1] = n_records
    return bounds


def _render_header(*, n_records: int, n_items: int, name: str,
                   fingerprint: str, class_names: Sequence[str],
                   items: Sequence[Tuple[str, str]],
                   labels_offset: int, supports_offset: int,
                   segments: Sequence[dict]) -> bytes:
    header = {
        "version": ARENA_VERSION,
        "n_records": int(n_records),
        "n_items": int(n_items),
        "n_words": words_for(n_records),
        "name": str(name),
        "fingerprint": str(fingerprint),
        "class_names": [str(c) for c in class_names],
        "items": [[str(a), str(v)] for a, v in items],
        "labels_offset": int(labels_offset),
        "supports_offset": int(supports_offset),
        "segments": segments,
    }
    return json.dumps(header, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")


def write_arena(
    path: PathLike,
    *,
    n_records: int,
    items: Sequence[Tuple[str, str]],
    class_names: Sequence[str],
    labels: np.ndarray,
    segments: Sequence[Tuple[int, int, Iterable[np.ndarray]]],
    fingerprint: str = "",
    name: str = "dataset",
) -> Path:
    """Stream an arena file to disk and atomically rename it into place.

    ``segments`` is a sequence of ``(start, seg_records, chunks)``
    entries covering ``[0, n_records)`` contiguously with interior
    boundaries at multiples of 64; ``chunks`` is an *iterable* of
    C-order ``(rows, seg_words)`` uint64 blocks whose row counts sum to
    ``len(items)`` — a generator keeps the writer's memory bounded by
    one chunk regardless of arena size. Per-segment class counts and
    item supports are computed as the chunks stream through; all
    offsets in the header are relative to the 8-aligned end of the
    header, so the header never depends on its own rendered length.
    """
    path = Path(path)
    labels = np.ascontiguousarray(labels, dtype=np.int64)
    if labels.shape != (n_records,):
        raise DataError(
            f"{labels.shape} labels block for {n_records} records")
    n_items = len(items)
    n_classes = len(class_names)
    cursor = 0  # relative to data start
    labels_offset = cursor
    cursor = _align8(labels_offset + labels.nbytes)
    supports_offset = cursor
    supports = np.zeros((len(segments), n_items), dtype=np.int64)
    cursor = _align8(supports_offset + supports.nbytes)
    seg_meta: List[dict] = []
    expect_start = 0
    for start, seg_records, _chunks in segments:
        if start != expect_start or (start and start % 64) \
                or seg_records <= 0:
            raise DataError(
                f"segment at record {start} breaks the contiguous "
                f"64-aligned partition of [0, {n_records})")
        seg_words = words_for(seg_records)
        seg_meta.append({
            "start": int(start),
            "n_records": int(seg_records),
            "n_words": int(seg_words),
            "offset": int(cursor),
            "class_counts": [0] * n_classes,
        })
        cursor = _align8(cursor + n_items * seg_words * 8)
        expect_start = start + seg_records
    if expect_start != n_records:
        raise DataError(
            f"segments cover {expect_start} of {n_records} records")
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            # Header placeholder: rendered once sizes are known, but
            # its *length* must be fixed now; render with final-shaped
            # metadata (counts still zero) to reserve the exact bytes.
            for index, (start, seg_records, _) in enumerate(segments):
                seg_meta[index]["class_counts"] = [
                    int(c) for c in np.bincount(
                        labels[start:start + seg_records],
                        minlength=n_classes)]
            header = _render_header(
                n_records=n_records, n_items=n_items, name=name,
                fingerprint=fingerprint, class_names=class_names,
                items=items, labels_offset=labels_offset,
                supports_offset=supports_offset, segments=seg_meta)
            handle.write(ARENA_MAGIC)
            handle.write(np.uint64(len(header)).tobytes())
            handle.write(header)
            data_start = _align8(handle.tell())
            handle.write(b"\x00" * (data_start - handle.tell()))
            handle.write(labels.tobytes())
            handle.write(b"\x00" * (data_start + supports_offset
                                    - handle.tell()))
            supports_pos = handle.tell()
            handle.write(supports.tobytes())  # placeholder, patched below
            for index, (start, seg_records, chunks) in enumerate(segments):
                seg_words = seg_meta[index]["n_words"]
                target = data_start + seg_meta[index]["offset"]
                handle.write(b"\x00" * (target - handle.tell()))
                rows_done = 0
                for chunk in chunks:
                    chunk = np.ascontiguousarray(chunk, dtype=np.uint64)
                    if chunk.ndim != 2 or chunk.shape[1] != seg_words:
                        raise DataError(
                            f"segment {index} chunk has shape "
                            f"{chunk.shape}, need (*, {seg_words})")
                    supports[index, rows_done:rows_done + chunk.shape[0]] \
                        = np.bitwise_count(chunk).sum(axis=1,
                                                      dtype=np.int64)
                    handle.write(chunk.tobytes())
                    rows_done += chunk.shape[0]
                if rows_done != n_items:
                    raise DataError(
                        f"segment {index} received {rows_done} item "
                        f"rows, expected {n_items}")
            handle.seek(supports_pos)
            handle.write(supports.tobytes())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


class ArenaFile:
    """Read access to an on-disk packed arena (see module docstring).

    Opening parses the header and reads the label and support blocks;
    word blocks stay on disk until asked for. Three access grains:

    * :meth:`segment_words` — a read-only ``np.memmap`` window over one
      segment's ``(n_items, seg_words)`` block (address space = one
      segment, released when the array is dropped);
    * :meth:`whole_words` — the zero-copy whole-arena map, available
      only on single-segment files;
    * :meth:`item_words` — one item's full-width row assembled from
      per-segment ``os.pread`` calls, mapping nothing at all.

    Use as a context manager, or :meth:`close` explicitly; live numpy
    views must not outlast the file (the ``arena-lifetime`` lint rule
    enforces this in library code).
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        try:
            self._handle = open(self.path, "rb")
        except OSError as exc:
            raise DataError(f"cannot open arena {self.path}: {exc}") \
                from exc
        try:
            magic = self._handle.read(8)
            if magic != ARENA_MAGIC:
                raise DataError(
                    f"{self.path} is not an arena file (bad magic)")
            (header_len,) = np.frombuffer(self._handle.read(8),
                                          dtype=np.uint64)
            raw = self._handle.read(int(header_len))
            if len(raw) != int(header_len):
                raise DataError(f"{self.path}: truncated arena header")
            header = json.loads(raw.decode("utf-8"))
            if header.get("version") != ARENA_VERSION:
                raise DataError(
                    f"{self.path}: unsupported arena version "
                    f"{header.get('version')!r}")
            self._data_start = _align8(_HEADER_FIXED + int(header_len))
            self.n_records = int(header["n_records"])
            self.n_items = int(header["n_items"])
            self.n_words = int(header["n_words"])
            self.name = str(header["name"])
            self.fingerprint = str(header["fingerprint"])
            self.class_names = [str(c) for c in header["class_names"]]
            self.items: List[Tuple[str, str]] = [
                (str(a), str(v)) for a, v in header["items"]]
            self.segments: List[ArenaSegment] = [
                ArenaSegment(i, int(s["start"]), int(s["n_records"]),
                             int(s["n_words"]),
                             self._data_start + int(s["offset"]),
                             s["class_counts"])
                for i, s in enumerate(header["segments"])]
            self._labels_offset = self._data_start \
                + int(header["labels_offset"])
            self._supports_offset = self._data_start \
                + int(header["supports_offset"])
            self._labels: Optional[np.ndarray] = None
            self._supports: Optional[np.ndarray] = None
            self._catalog: Optional[ItemCatalog] = None
            self._validate_layout()
        except BaseException:
            self._handle.close()
            raise

    def _validate_layout(self) -> None:
        if self.n_words != words_for(self.n_records):
            raise DataError(f"{self.path}: header word count "
                            f"disagrees with record count")
        if len(self.items) != self.n_items:
            raise DataError(f"{self.path}: header lists "
                            f"{len(self.items)} items for "
                            f"{self.n_items} declared")
        expect, total_words = 0, 0
        for segment in self.segments:
            if segment.start != expect or (segment.start
                                           and segment.start % 64):
                raise DataError(f"{self.path}: segment table is not a "
                                f"contiguous 64-aligned partition")
            if segment.n_words != words_for(segment.n_records):
                raise DataError(f"{self.path}: segment {segment.index} "
                                f"word count mismatch")
            expect = segment.stop
            total_words += segment.n_words
        if expect != self.n_records or total_words != self.n_words:
            raise DataError(
                f"{self.path}: segments cover {expect} of "
                f"{self.n_records} records")
        end = os.fstat(self._handle.fileno()).st_size
        last = self.segments[-1]
        if last.offset + self.n_items * last.n_words * 8 > end:
            raise DataError(f"{self.path}: truncated arena data")

    # ------------------------------------------------------------------
    # metadata blocks (small, read once)
    # ------------------------------------------------------------------

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    @property
    def n_classes(self) -> int:
        return len(self.class_names)

    def _check_open(self) -> None:
        if self._handle.closed:
            raise DataError(
                f"{self.path} is closed; word blocks and labels are "
                f"unreachable (views taken earlier alias dead pages)")

    def labels(self) -> np.ndarray:
        """Per-record class indices (``int64``, cached)."""
        if self._labels is None:
            self._check_open()
            raw = os.pread(self._handle.fileno(), self.n_records * 8,
                           self._labels_offset)
            self._labels = np.frombuffer(raw, dtype=np.int64).copy()
        return self._labels

    def catalog(self) -> ItemCatalog:
        """The item catalog, rebuilt in dense-id order (cached)."""
        if self._catalog is None:
            catalog = ItemCatalog()
            for attribute, value in self.items:
                catalog.add_pair(attribute, value)
            self._catalog = catalog
        return self._catalog

    def segment_item_supports(self) -> np.ndarray:
        """``(n_segments, n_items)`` per-segment item supports."""
        if self._supports is None:
            count = self.n_segments * self.n_items
            raw = os.pread(self._handle.fileno(), count * 8,
                           self._supports_offset)
            self._supports = np.frombuffer(raw, dtype=np.int64) \
                .reshape(self.n_segments, self.n_items).copy()
        return self._supports

    def segment_class_counts(self) -> np.ndarray:
        """``(n_segments, n_classes)`` per-segment class counts."""
        return np.stack([s.class_counts for s in self.segments])

    def item_supports(self) -> np.ndarray:
        """Whole-dataset item supports: per-segment sums merged."""
        return self.segment_item_supports().sum(axis=0)

    def class_counts(self) -> np.ndarray:
        """Whole-dataset class supports: per-segment sums merged."""
        return self.segment_class_counts().sum(axis=0)

    # ------------------------------------------------------------------
    # word blocks (on-disk until asked for)
    # ------------------------------------------------------------------

    def segment_words(self, index: int) -> np.ndarray:
        """Read-only memmap window of one segment's word block.

        Address space charged to the process is one segment, not the
        file; drop the returned array to release it.
        """
        self._check_open()
        segment = self.segments[index]
        if self.n_items == 0 or segment.n_words == 0:
            return np.zeros((self.n_items, segment.n_words),
                            dtype=np.uint64)
        return np.memmap(self.path, dtype=np.uint64, mode="r",
                         offset=segment.offset,
                         shape=(self.n_items, segment.n_words))

    def whole_words(self) -> np.ndarray:
        """Zero-copy map of the whole arena (single-segment files).

        Multi-segment files interleave per-segment blocks row-major
        within each segment, so the logical whole arena is not one
        contiguous block; use :meth:`segment_words` /
        :meth:`item_words` or materialize via :meth:`to_dataset`.
        """
        if self.n_segments != 1:
            raise DataError(
                f"{self.path} has {self.n_segments} segments; the "
                f"whole-arena zero-copy map needs exactly one")
        return self.segment_words(0)

    def item_words(self, item_id: int,
                   segment: Optional[int] = None) -> np.ndarray:
        """One item's packed words via pread — no mapping, no paging
        beyond the row itself.

        With ``segment`` given, only that segment's ``seg_words`` are
        read; otherwise the full-width row is assembled across all
        segments (boundaries are word-aligned, so plain concatenation
        is the logical row).
        """
        if not 0 <= item_id < self.n_items:
            raise DataError(f"item id {item_id} out of range")
        self._check_open()
        fd = self._handle.fileno()
        if segment is not None:
            seg = self.segments[segment]
            raw = os.pread(fd, seg.n_words * 8,
                           seg.offset + item_id * seg.n_words * 8)
            return np.frombuffer(raw, dtype=np.uint64).copy()
        row = np.empty(self.n_words, dtype=np.uint64)
        word = 0
        for seg in self.segments:
            raw = os.pread(fd, seg.n_words * 8,
                           seg.offset + item_id * seg.n_words * 8)
            row[word:word + seg.n_words] = np.frombuffer(
                raw, dtype=np.uint64)
            word += seg.n_words
        return row

    def item_tidset(self, item_id: int) -> TidVector:
        """Full-width :class:`TidVector` of one item (owned copy)."""
        return TidVector(self.item_words(item_id), self.n_records)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        self._handle.close()

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def __enter__(self) -> "ArenaFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ArenaFile(path={str(self.path)!r}, "
                f"n_records={self.n_records}, n_items={self.n_items}, "
                f"n_segments={self.n_segments})")


# ----------------------------------------------------------------------
# sharded dataset view
# ----------------------------------------------------------------------


class _Shard:
    """One record-range shard: local counts plus local item rows."""

    __slots__ = ("start", "n_records")

    def __init__(self, start: int, n_records: int) -> None:
        self.start = start
        self.n_records = n_records

    @property
    def stop(self) -> int:
        return self.start + self.n_records

    @property
    def word_aligned(self) -> bool:
        return self.start % 64 == 0

    def class_counts(self) -> np.ndarray:     # pragma: no cover
        raise NotImplementedError

    def item_supports(self) -> np.ndarray:    # pragma: no cover
        raise NotImplementedError

    def item_words(self, item_id: int) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def item_bool(self, item_id: int) -> np.ndarray:
        words = self.item_words(item_id)
        return np.unpackbits(words.view(np.uint8),
                             bitorder="little")[:self.n_records] \
            .astype(bool)


class _FileShard(_Shard):
    """Shard backed by one :class:`ArenaFile` segment."""

    __slots__ = ("_arena", "_index")

    def __init__(self, arena: ArenaFile, index: int) -> None:
        segment = arena.segments[index]
        super().__init__(segment.start, segment.n_records)
        self._arena = arena
        self._index = index

    def class_counts(self) -> np.ndarray:
        return self._arena.segments[self._index].class_counts

    def item_supports(self) -> np.ndarray:
        return self._arena.segment_item_supports()[self._index]

    def item_words(self, item_id: int) -> np.ndarray:
        return self._arena.item_words(item_id, segment=self._index)


class _MemoryShard(_Shard):
    """Shard over a re-indexed in-RAM :class:`Dataset` subset.

    Supports arbitrary (sub-word) boundaries: the subset re-packs its
    records locally, and full-width assembly goes through the boolean
    path when a boundary is not word-aligned.
    """

    __slots__ = ("dataset",)

    def __init__(self, dataset: Dataset, start: int) -> None:
        super().__init__(start, dataset.n_records)
        self.dataset = dataset

    def class_counts(self) -> np.ndarray:
        return np.bincount(
            np.asarray(self.dataset.class_labels, dtype=np.int64),
            minlength=self.dataset.n_classes)

    def item_supports(self) -> np.ndarray:
        return np.bitwise_count(self.dataset.item_arena) \
            .sum(axis=1, dtype=np.int64)

    def item_words(self, item_id: int) -> np.ndarray:
        return np.asarray(self.dataset.item_tidsets[item_id].words)


class _LazyItemTidsets(Sequence[TidVector]):
    """Item tidsets assembled on demand from shard-local rows.

    Quacks like the ``Dataset.item_tidsets`` list (len / index /
    iterate) but holds no arena: each access reads one item's rows
    from every shard and merges them into a full-width
    :class:`TidVector`. Nothing is cached — bounded memory is the
    point; callers that need a row repeatedly hold the TidVector.
    """

    def __init__(self, owner: "ShardedDataset") -> None:
        self._owner = owner

    def __len__(self) -> int:
        return self._owner.n_items

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return TidVector(self._owner._item_row(index),
                         self._owner.n_records)

    def __iter__(self) -> Iterator[TidVector]:
        for i in range(len(self)):
            yield self[i]


class ShardedDataset:
    """K record-range shards presenting one dataset's read surface.

    Duck-compatible with the :class:`~repro.data.dataset.Dataset` read
    API that mining, fingerprinting and scoring consume (``n_records``,
    ``item_tidsets``, ``class_labels``, ``class_tidset``,
    ``pattern_tidset``, ...), but item tidsets are *assembled lazily*
    from per-shard rows and supports come from per-shard counts merged
    at the boundary — record ranges are disjoint, so whole-dataset
    support is the exact integer sum of shard supports (pinned against
    the unsharded oracle by the property suite).

    Build from an on-disk arena (:meth:`open`) for out-of-core mining,
    or from an in-RAM dataset (:meth:`from_dataset`) to test the
    boundary math on arbitrary — even sub-word — shard boundaries.
    """

    def __init__(self, shards: Sequence[_Shard], *, n_records: int,
                 catalog: ItemCatalog, labels: np.ndarray,
                 class_names: Sequence[str], name: str,
                 fingerprint: str = "",
                 arena: Optional[ArenaFile] = None) -> None:
        if not shards:
            raise DataError("sharded dataset needs at least one shard")
        expect = 0
        for shard in shards:
            if shard.start != expect:
                raise DataError(
                    f"shard starting at record {shard.start} breaks "
                    f"the contiguous partition (expected {expect})")
            expect = shard.stop
        if expect != n_records:
            raise DataError(
                f"shards cover {expect} of {n_records} records")
        self.shards: List[_Shard] = list(shards)
        self.n_records = n_records
        self.catalog = catalog
        self.class_names = [str(c) for c in class_names]
        self.name = name
        self._labels_array = np.ascontiguousarray(labels, dtype=np.int64)
        self.class_labels: List[int] = [int(x) for x in
                                        self._labels_array]
        self._fingerprint = fingerprint or None
        self._arena = arena
        self.item_tidsets = _LazyItemTidsets(self)
        self._class_tidsets: Optional[List[TidVector]] = None
        self._word_aligned = all(s.word_aligned for s in self.shards)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, path: PathLike) -> "ShardedDataset":
        """Open an arena file as one shard per on-disk segment."""
        arena = ArenaFile(path)
        return cls(
            [_FileShard(arena, i) for i in range(arena.n_segments)],
            n_records=arena.n_records, catalog=arena.catalog(),
            labels=arena.labels(), class_names=arena.class_names,
            name=arena.name, fingerprint=arena.fingerprint,
            arena=arena)

    @classmethod
    def from_dataset(cls, dataset: Dataset, n_shards: int = 2,
                     boundaries: Optional[Sequence[int]] = None,
                     ) -> "ShardedDataset":
        """Partition an in-RAM dataset into record-range shards.

        ``boundaries`` (ascending interior split points) overrides the
        even word-aligned split and may cut *inside* a 64-record word —
        the shard views re-pack locally, which is exactly the case the
        boundary-math property tests must cover.
        """
        if boundaries is None:
            bounds = segment_boundaries(dataset.n_records, n_shards)
        else:
            bounds = [0, *sorted(int(b) for b in boundaries),
                      dataset.n_records]
            if len(set(bounds)) != len(bounds) \
                    or bounds[0] < 0 or bounds[-1] != dataset.n_records:
                raise DataError(f"invalid shard boundaries {boundaries}")
        shards = [
            _MemoryShard(
                dataset.subset(range(lo, hi),
                               name=f"{dataset.name}[shard{i}]"), lo)
            for i, (lo, hi) in enumerate(zip(bounds, bounds[1:]))]
        fingerprint = getattr(dataset, "_fingerprint", None) or ""
        return cls(shards, n_records=dataset.n_records,
                   catalog=dataset.catalog,
                   labels=np.asarray(dataset.class_labels,
                                     dtype=np.int64),
                   class_names=dataset.class_names, name=dataset.name,
                   fingerprint=fingerprint)

    # ------------------------------------------------------------------
    # merged counts (no data scan)
    # ------------------------------------------------------------------

    @property
    def n_items(self) -> int:
        return len(self.catalog)

    @property
    def n_classes(self) -> int:
        return len(self.class_names)

    @property
    def n_attributes(self) -> int:
        return len(self.catalog.attributes)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def class_supports_merged(self) -> np.ndarray:
        """Whole-dataset class supports as the sum of shard counts."""
        out = np.zeros(self.n_classes, dtype=np.int64)
        for shard in self.shards:
            out += shard.class_counts()
        return out

    def item_supports_merged(self) -> np.ndarray:
        """Whole-dataset item supports as the sum of shard supports."""
        out = np.zeros(self.n_items, dtype=np.int64)
        for shard in self.shards:
            out += shard.item_supports()
        return out

    def item_support(self, item_id: int) -> int:
        return int(self.item_supports_merged()[item_id])

    def class_support(self, class_index: int) -> int:
        return int(self.class_supports_merged()[class_index])

    # ------------------------------------------------------------------
    # Dataset read surface
    # ------------------------------------------------------------------

    def _item_row(self, item_id: int) -> np.ndarray:
        """Full-width packed words of one item across all shards."""
        if self._word_aligned:
            return np.concatenate(
                [shard.item_words(item_id) for shard in self.shards])
        flags = np.concatenate(
            [shard.item_bool(item_id) for shard in self.shards])
        return TidVector.from_bool(flags).words

    def class_tidset(self, class_index: int) -> TidVector:
        if self._class_tidsets is None:
            from ..tidvector import arena_rows, pack_bool_matrix
            arena = pack_bool_matrix(
                self._labels_array[None, :]
                == np.arange(self.n_classes, dtype=np.int64)[:, None])
            self._class_tidsets = arena_rows(arena, self.n_records)
        return self._class_tidsets[class_index]

    def class_summaries(self):
        from .dataset import ClassSummary
        supports = self.class_supports_merged()
        return [ClassSummary(i, self.class_names[i], int(supports[i]),
                             self.class_tidset(i))
                for i in range(self.n_classes)]

    def pattern_tidset(self, item_ids: Iterable[int]) -> TidVector:
        """Intersection of the pattern's item rows (early exit)."""
        ids = [int(i) for i in item_ids]
        if not ids:
            return TidVector.universe(self.n_records)
        words = self._item_row(ids[0])
        for item_id in ids[1:]:
            np.bitwise_and(words, self._item_row(item_id), out=words)
            if not words.any():
                break
        return TidVector(words, self.n_records)

    def pattern_support(self, item_ids: Iterable[int]) -> int:
        return self.pattern_tidset(item_ids).count()

    def rule_support(self, item_ids: Iterable[int],
                     class_index: int) -> int:
        return self.pattern_tidset(item_ids).intersection_count(
            self.class_tidset(class_index))

    def fingerprint(self) -> str:
        """Header fingerprint when available, else computed lazily."""
        if self._fingerprint is None:
            from .fingerprint import dataset_fingerprint
            self._fingerprint = dataset_fingerprint(self)
        return self._fingerprint

    def permuted_class_tidsets(self, rng=None) -> List[TidVector]:
        """Label-shuffled per-class sets (permutation-engine surface)."""
        from ..tidvector import arena_rows, pack_bool_matrix
        generator = rng if rng is not None else np.random.default_rng()
        labels = generator.permutation(self._labels_array)
        arena = pack_bool_matrix(
            labels[None, :]
            == np.arange(self.n_classes, dtype=np.int64)[:, None])
        return arena_rows(arena, self.n_records)

    def to_dataset(self, name: Optional[str] = None) -> Dataset:
        """Materialize the full in-RAM :class:`Dataset` (one shard's
        words at a time; peak extra memory is the final arena)."""
        arena = np.empty((self.n_items, words_for(self.n_records)),
                         dtype=np.uint64)
        for item_id in range(self.n_items):
            arena[item_id] = self._item_row(item_id)
        dataset = Dataset(self.n_records, self.catalog, arena,
                          self.class_labels, self.class_names,
                          name=name or self.name)
        if self._fingerprint:
            dataset._fingerprint = self._fingerprint
        return dataset

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._arena is not None:
            self._arena.close()

    def __enter__(self) -> "ShardedDataset":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ShardedDataset(name={self.name!r}, "
                f"n_records={self.n_records}, n_items={self.n_items}, "
                f"n_shards={self.n_shards})")
