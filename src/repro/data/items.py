"""Item model: attribute=value pairs and their dense integer encoding.

Section 2.1 of the paper maps every attribute-value pair ``A = v`` to an
*item*. The miner works on dense integer item ids; :class:`ItemCatalog`
maintains the bidirectional mapping and remembers which attribute each
item belongs to, which the synthetic generator and the rule printer both
need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from ..errors import DataError

__all__ = ["Item", "ItemCatalog"]


@dataclass(frozen=True, order=True)
class Item:
    """An attribute=value pair.

    Attributes
    ----------
    attribute:
        Name of the attribute (for example ``"workclass"``).
    value:
        The categorical value taken by the attribute, always stored as a
        string (continuous data must be discretized first).
    """

    attribute: str
    value: str

    def __str__(self) -> str:
        return f"{self.attribute}={self.value}"


class ItemCatalog:
    """Bidirectional mapping between :class:`Item` objects and dense ids.

    Ids are assigned in registration order starting from zero, so they
    can index directly into per-item arrays (tidsets, supports).
    """

    def __init__(self) -> None:
        self._items: List[Item] = []
        self._ids: Dict[Item, int] = {}
        self._by_attribute: Dict[str, List[int]] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)

    def __contains__(self, item: Item) -> bool:
        return item in self._ids

    def add(self, item: Item) -> int:
        """Register ``item`` (idempotent) and return its dense id."""
        existing = self._ids.get(item)
        if existing is not None:
            return existing
        item_id = len(self._items)
        self._items.append(item)
        self._ids[item] = item_id
        self._by_attribute.setdefault(item.attribute, []).append(item_id)
        return item_id

    def add_pair(self, attribute: str, value: str) -> int:
        """Register the item ``attribute=value`` and return its id."""
        return self.add(Item(attribute, str(value)))

    def id_of(self, item: Item) -> int:
        """Return the id of ``item``; raise :class:`DataError` if unknown."""
        try:
            return self._ids[item]
        except KeyError:
            raise DataError(f"unknown item {item!s}") from None

    def item(self, item_id: int) -> Item:
        """Return the :class:`Item` with dense id ``item_id``."""
        try:
            return self._items[item_id]
        except IndexError:
            raise DataError(f"unknown item id {item_id}") from None

    def items_of_attribute(self, attribute: str) -> List[int]:
        """Return the ids of every item belonging to ``attribute``."""
        return list(self._by_attribute.get(attribute, []))

    @property
    def attributes(self) -> List[str]:
        """Attribute names in first-seen order."""
        return list(self._by_attribute)

    def describe_pattern(self, item_ids: Iterable[int]) -> str:
        """Render a pattern (set of item ids) as ``{A=v, B=w}``."""
        parts = sorted(str(self.item(i)) for i in item_ids)
        return "{" + ", ".join(parts) + "}"

    def pattern_attributes(self, item_ids: Iterable[int]) -> List[str]:
        """Return the attributes mentioned by a pattern, sorted."""
        return sorted({self.item(i).attribute for i in item_ids})

    def ids_for_pairs(self, pairs: Iterable[Tuple[str, str]]) -> List[int]:
        """Map ``(attribute, value)`` pairs to item ids."""
        return [self.id_of(Item(a, str(v))) for a, v in pairs]
