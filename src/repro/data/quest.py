"""IBM Quest-style synthetic transaction generator (Agrawal & Srikant,
VLDB 1994).

The classic market-basket generator behind the T10I4D100K-family
benchmarks, reimplemented for the general-rule and frequency-
significance paths. The model:

1. draw ``n_patterns`` *maximal potential itemsets*; each has a length
   drawn from Poisson(``avg_pattern_length``), items picked uniformly
   with a fraction carried over from the previous pattern (so patterns
   overlap, as real baskets do);
2. each pattern gets a weight (its relative frequency, exponentially
   distributed, normalized) and a *corruption level*: when a pattern is
   planted into a transaction, each item survives with probability
   1 - corruption;
3. each transaction has a length drawn from Poisson(``avg_transaction
   _length``); patterns are planted by weight until the transaction is
   full (a pattern that overflows a transaction is dropped with
   probability 0.5 and otherwise planted anyway, as in the original).

Naming follows the T/I/D convention: ``quest(avg_transaction_length=10,
avg_pattern_length=4, n_transactions=1000)`` is T10I4D1K.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import DataError

__all__ = ["QuestConfig", "QuestData", "generate_quest"]


@dataclass(frozen=True)
class QuestConfig:
    """Parameters of the Quest generator (T/I/D naming in comments)."""

    n_transactions: int = 1000          # D
    avg_transaction_length: float = 10.0  # T
    avg_pattern_length: float = 4.0     # I
    n_items: int = 100                  # N in the original (universe)
    n_patterns: int = 20                # |L|: potential frequent itemsets
    correlation: float = 0.5            # fraction of items carried over
    corruption_mean: float = 0.5        # mean corruption level
    max_transaction_length: int = 40    # hard cap to bound memory

    def __post_init__(self) -> None:
        if self.n_transactions < 1:
            raise DataError("n_transactions must be >= 1")
        if self.n_items < 2:
            raise DataError("n_items must be >= 2")
        if self.n_patterns < 1:
            raise DataError("n_patterns must be >= 1")
        if self.avg_transaction_length <= 0:
            raise DataError("avg_transaction_length must be positive")
        if self.avg_pattern_length <= 0:
            raise DataError("avg_pattern_length must be positive")
        if not 0.0 <= self.correlation <= 1.0:
            raise DataError("correlation must be in [0, 1]")
        if not 0.0 <= self.corruption_mean < 1.0:
            raise DataError("corruption_mean must be in [0, 1)")


@dataclass
class QuestData:
    """Generated transactions plus the ground-truth potential itemsets.
    """

    config: QuestConfig
    transactions: List[List[int]]
    patterns: List[frozenset]
    pattern_weights: List[float]
    item_tidsets: List = field(repr=False, default_factory=list)

    @property
    def n_transactions(self) -> int:
        """Number of generated transactions."""
        return len(self.transactions)

    def tidsets(self) -> List:
        """Columnar layout: one packed record set per item id."""
        if not self.item_tidsets:
            from ..tidvector import arena_rows, pack_id_lists

            id_lists: List[List[int]] = [
                [] for _ in range(self.config.n_items)]
            for r, transaction in enumerate(self.transactions):
                for item in transaction:
                    id_lists[item].append(r)
            arena = pack_id_lists(id_lists, self.n_transactions)
            self.item_tidsets = arena_rows(arena, self.n_transactions)
        return self.item_tidsets


def _poisson_draw(rng: random.Random, mean: float) -> int:
    """Knuth's Poisson sampler; adequate for the small means used here.
    """
    limit = math.exp(-mean)
    k = 0
    product = rng.random()
    while product > limit:
        k += 1
        product *= rng.random()
    return k


def _draw_patterns(config: QuestConfig,
                   rng: random.Random) -> List[frozenset]:
    """Maximal potential itemsets with partial carry-over."""
    patterns: List[frozenset] = []
    previous: Sequence[int] = []
    for __ in range(config.n_patterns):
        length = max(1, _poisson_draw(rng, config.avg_pattern_length))
        length = min(length, config.n_items)
        carried = []
        if previous:
            take = min(len(previous),
                       int(round(config.correlation * length)))
            carried = rng.sample(list(previous), take)
        fresh_needed = length - len(carried)
        pool = [i for i in range(config.n_items) if i not in carried]
        fresh = rng.sample(pool, min(fresh_needed, len(pool)))
        pattern = frozenset(carried + fresh)
        patterns.append(pattern)
        previous = sorted(pattern)
    return patterns


def _draw_weights(n: int, rng: random.Random) -> List[float]:
    """Exponential weights normalized to sum to one."""
    raw = [rng.expovariate(1.0) for __ in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


def generate_quest(config: Optional[QuestConfig] = None,
                   seed: Optional[int] = None) -> QuestData:
    """Generate one Quest-style transactional dataset.

    Every transaction is a sorted list of distinct item ids; empty
    transactions are re-drawn so downstream loaders never see them.
    """
    config = config or QuestConfig()
    rng = random.Random(seed)
    patterns = _draw_patterns(config, rng)
    weights = _draw_weights(len(patterns), rng)
    corruptions = [min(0.95, max(0.0, rng.normalvariate(
        config.corruption_mean, 0.1))) for __ in patterns]
    indices = list(range(len(patterns)))
    transactions: List[List[int]] = []
    while len(transactions) < config.n_transactions:
        target = min(config.max_transaction_length,
                     max(1, _poisson_draw(
                         rng, config.avg_transaction_length)))
        basket: set = set()
        guard = 0
        while len(basket) < target and guard < 50:
            guard += 1
            index = rng.choices(indices, weights=weights, k=1)[0]
            pattern = patterns[index]
            corruption = corruptions[index]
            kept = {item for item in pattern
                    if rng.random() >= corruption}
            if not kept:
                continue
            if len(basket) + len(kept) > target and basket:
                # Overflowing pattern: drop half the time, else plant
                # anyway (the original's 50% rule keeps lengths honest
                # without biasing against long patterns).
                if rng.random() < 0.5:
                    continue
            basket |= kept
        if basket:
            transactions.append(sorted(basket))
    return QuestData(config=config, transactions=transactions,
                     patterns=patterns, pattern_weights=weights)
