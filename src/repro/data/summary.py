"""Dataset profiling: the numbers a miner wants before choosing min_sup.

Choosing ``min_sup`` well requires knowing how item supports are
distributed (too high: nothing is frequent; too low: the hypothesis
count explodes and every correction gets brutal). This module computes
the per-attribute/per-class profile and a support histogram, and
renders them as the same aligned tables the evaluation reports use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import DataError
from .dataset import Dataset

__all__ = ["AttributeProfile", "DatasetSummary", "summarize"]


@dataclass(frozen=True)
class AttributeProfile:
    """Shape of one attribute: cardinality and support extremes."""

    name: str
    n_values: int
    max_support: int
    min_support: int
    missing: int


@dataclass(frozen=True)
class DatasetSummary:
    """Everything :func:`summarize` measures."""

    name: str
    n_records: int
    n_attributes: int
    n_items: int
    class_counts: Dict[str, int]
    attributes: List[AttributeProfile]
    support_quantiles: Dict[str, int]

    @property
    def suggested_min_sup(self) -> int:
        """Support of the k-th most frequent item (k from summarize).

        A crude but practical heuristic: mining cost is driven by the
        number of frequent items, so using the k-th most frequent
        item's support as min_sup keeps roughly k items frequent.
        """
        return self.support_quantiles.get("suggested", 1)

    def describe(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"dataset {self.name}: {self.n_records} records, "
            f"{self.n_attributes} attributes, {self.n_items} items",
            "classes: " + ", ".join(
                f"{label}={count}"
                for label, count in self.class_counts.items()),
            "item support quantiles: " + ", ".join(
                f"{key}={value}"
                for key, value in self.support_quantiles.items()),
            "attributes:",
        ]
        for profile in self.attributes:
            lines.append(
                f"  {profile.name}: {profile.n_values} values, support "
                f"[{profile.min_support}, {profile.max_support}], "
                f"{profile.missing} missing")
        return "\n".join(lines)


def summarize(dataset: Dataset, target_items: int = 50) -> DatasetSummary:
    """Profile a dataset for mining-parameter selection."""
    if target_items < 1:
        raise DataError("target_items must be positive")
    supports = [t.count() for t in dataset.item_tidsets]
    profiles: List[AttributeProfile] = []
    for attribute in dataset.catalog.attributes:
        item_ids = dataset.catalog.items_of_attribute(attribute)
        attr_supports = [supports[i] for i in item_ids]
        covered = sum(attr_supports)
        profiles.append(AttributeProfile(
            name=attribute,
            n_values=len(item_ids),
            max_support=max(attr_supports) if attr_supports else 0,
            min_support=min(attr_supports) if attr_supports else 0,
            missing=dataset.n_records - covered,
        ))
    ordered = sorted(supports, reverse=True)
    quantiles = _support_quantiles(ordered, target_items)
    class_counts = {
        summary.name: summary.support
        for summary in dataset.class_summaries()
    }
    return DatasetSummary(
        name=dataset.name,
        n_records=dataset.n_records,
        n_attributes=dataset.n_attributes,
        n_items=dataset.n_items,
        class_counts=class_counts,
        attributes=profiles,
        support_quantiles=quantiles,
    )


def _support_quantiles(ordered_desc: Sequence[int],
                       target_items: int) -> Dict[str, int]:
    if not ordered_desc:
        return {"max": 0, "median": 0, "min": 0, "suggested": 1}
    suggestion_index = min(target_items, len(ordered_desc)) - 1
    return {
        "max": ordered_desc[0],
        "median": ordered_desc[len(ordered_desc) // 2],
        "min": ordered_desc[-1],
        "suggested": max(1, ordered_desc[suggestion_index]),
    }
