"""Data substrate: datasets, items, loaders, discretization, generators."""

from .arena import ArenaFile, ShardedDataset, write_arena
from .dataset import ClassSummary, Dataset
from .ingest import (
    load_parquet,
    load_sql,
    stream_csv_to_arena,
    stream_parquet_to_arena,
    stream_records_to_arena,
    stream_sql_to_arena,
)
from .discretize import (
    apply_cuts,
    discretize_columns,
    equal_frequency_cuts,
    equal_width_cuts,
    mdl_discretize,
)
from .items import Item, ItemCatalog
from .loaders import (
    load_arena,
    load_arff,
    load_csv,
    load_fimi,
    save_csv,
    save_fimi,
)
from .quest import QuestConfig, QuestData, generate_quest
from .summary import AttributeProfile, DatasetSummary, summarize
from .synthetic import (
    EmbeddedRule,
    GeneratorConfig,
    SyntheticData,
    generate,
    generate_paired,
)
from .uci import (
    REAL_DATASETS,
    UCISpec,
    load_real_dataset,
    make_adult,
    make_german,
    make_hypo,
    make_mushroom,
)

__all__ = [
    "ArenaFile",
    "ShardedDataset",
    "write_arena",
    "ClassSummary",
    "Dataset",
    "Item",
    "ItemCatalog",
    "load_arena",
    "load_parquet",
    "load_sql",
    "stream_csv_to_arena",
    "stream_parquet_to_arena",
    "stream_records_to_arena",
    "stream_sql_to_arena",
    "apply_cuts",
    "discretize_columns",
    "equal_frequency_cuts",
    "equal_width_cuts",
    "mdl_discretize",
    "QuestConfig",
    "QuestData",
    "generate_quest",
    "load_arff",
    "load_csv",
    "load_fimi",
    "save_csv",
    "save_fimi",
    "AttributeProfile",
    "DatasetSummary",
    "summarize",
    "EmbeddedRule",
    "GeneratorConfig",
    "SyntheticData",
    "generate",
    "generate_paired",
    "REAL_DATASETS",
    "UCISpec",
    "load_real_dataset",
    "make_adult",
    "make_german",
    "make_hypo",
    "make_mushroom",
]
