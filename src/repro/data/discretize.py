"""Supervised discretization of continuous attributes.

The paper discretizes continuous UCI attributes with MLC++, whose
default supervised method is the Fayyad–Irani entropy/MDL algorithm.
:func:`mdl_discretize` implements that algorithm from scratch;
equal-width and equal-frequency binning are provided as unsupervised
baselines. All functions return *cut points*; :func:`apply_cuts` maps
raw values to interval labels suitable for :class:`~repro.data.Dataset`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..errors import DataError

__all__ = [
    "mdl_discretize",
    "equal_width_cuts",
    "equal_frequency_cuts",
    "apply_cuts",
    "discretize_columns",
]


def _entropy(counts: Sequence[int]) -> float:
    """Shannon entropy (base 2) of a class-count vector."""
    total = sum(counts)
    if total == 0:
        return 0.0
    ent = 0.0
    for c in counts:
        if c:
            p = c / total
            ent -= p * math.log2(p)
    return ent


def _class_counts(labels: Sequence[int], n_classes: int) -> List[int]:
    counts = [0] * n_classes
    for label in labels:
        counts[label] += 1
    return counts


def mdl_discretize(values: Sequence[float], labels: Sequence[int],
                   n_classes: Optional[int] = None,
                   max_depth: int = 32) -> List[float]:
    """Fayyad–Irani entropy-based discretization with the MDL stop rule.

    Recursively picks the boundary that minimizes the class-label
    entropy of the induced binary split, accepting a split only when the
    information gain exceeds the MDL criterion::

        gain > (log2(n - 1) + delta) / n
        delta = log2(3^k - 2) - (k*E - k1*E1 - k2*E2)

    Returns the sorted list of accepted cut points (possibly empty, in
    which case the attribute is effectively constant w.r.t. the class).
    """
    if len(values) != len(labels):
        raise DataError("values and labels must have equal length")
    if not values:
        return []
    if n_classes is None:
        n_classes = max(labels) + 1 if labels else 1
    pairs = sorted(zip(values, labels))
    cuts: List[float] = []
    _mdl_recurse(pairs, 0, len(pairs), n_classes, cuts, max_depth)
    return sorted(cuts)


def _mdl_recurse(pairs: List[Tuple[float, int]], lo: int, hi: int,
                 n_classes: int, cuts: List[float], depth: int) -> None:
    if depth <= 0 or hi - lo < 2:
        return
    best = _best_split(pairs, lo, hi, n_classes)
    if best is None:
        return
    cut_index, gain, ent, left_ent, right_ent, k, k1, k2 = best
    n = hi - lo
    delta = math.log2(3 ** k - 2) - (k * ent - k1 * left_ent - k2 * right_ent)
    threshold = (math.log2(n - 1) + delta) / n
    if gain <= threshold:
        return
    cut_value = (pairs[cut_index - 1][0] + pairs[cut_index][0]) / 2.0
    cuts.append(cut_value)
    _mdl_recurse(pairs, lo, cut_index, n_classes, cuts, depth - 1)
    _mdl_recurse(pairs, cut_index, hi, n_classes, cuts, depth - 1)


def _best_split(pairs: List[Tuple[float, int]], lo: int, hi: int,
                n_classes: int):
    """Scan boundary candidates; return the max-gain split or None.

    Only boundaries between distinct values are candidates, evaluated
    with incrementally maintained left/right class counts (O(n) scan).
    """
    total_counts = _class_counts([c for _, c in pairs[lo:hi]], n_classes)
    ent = _entropy(total_counts)
    n = hi - lo
    left_counts = [0] * n_classes
    right_counts = list(total_counts)
    best_gain = -1.0
    best = None
    for i in range(lo + 1, hi):
        prev_value, prev_class = pairs[i - 1]
        left_counts[prev_class] += 1
        right_counts[prev_class] -= 1
        if pairs[i][0] == prev_value:
            continue
        n_left = i - lo
        n_right = hi - i
        left_ent = _entropy(left_counts)
        right_ent = _entropy(right_counts)
        expected = (n_left / n) * left_ent + (n_right / n) * right_ent
        gain = ent - expected
        if gain > best_gain:
            k = sum(1 for c in total_counts if c)
            k1 = sum(1 for c in left_counts if c)
            k2 = sum(1 for c in right_counts if c)
            best_gain = gain
            best = (i, gain, ent, left_ent, right_ent, k, k1, k2)
    return best


def equal_width_cuts(values: Sequence[float], n_bins: int) -> List[float]:
    """Unsupervised equal-width cut points (n_bins - 1 of them)."""
    if n_bins < 1:
        raise DataError("n_bins must be >= 1")
    if not values:
        return []
    lo, hi = min(values), max(values)
    if lo == hi or n_bins == 1:
        return []
    width = (hi - lo) / n_bins
    return [lo + width * i for i in range(1, n_bins)]


def equal_frequency_cuts(values: Sequence[float], n_bins: int) -> List[float]:
    """Unsupervised equal-frequency cut points (at most n_bins - 1)."""
    if n_bins < 1:
        raise DataError("n_bins must be >= 1")
    if not values or n_bins == 1:
        return []
    ordered = sorted(values)
    n = len(ordered)
    cuts = []
    for b in range(1, n_bins):
        i = (b * n) // n_bins
        if 0 < i < n and ordered[i - 1] != ordered[i]:
            cuts.append((ordered[i - 1] + ordered[i]) / 2.0)
    return sorted(set(cuts))


def apply_cuts(values: Sequence[float], cuts: Sequence[float]) -> List[str]:
    """Map each value to an interval label induced by ``cuts``.

    With cuts ``[c1 < c2 < ...]`` the labels are ``(-inf,c1]``,
    ``(c1,c2]``, ..., ``(ck,inf)`` — readable and stable across calls.
    """
    ordered = sorted(cuts)
    labels = []
    names = _interval_names(ordered)
    for v in values:
        index = 0
        for c in ordered:
            if v > c:
                index += 1
            else:
                break
        labels.append(names[index])
    return labels


def _interval_names(cuts: Sequence[float]) -> List[str]:
    if not cuts:
        return ["(-inf,inf)"]
    names = [f"(-inf,{cuts[0]:g}]"]
    for a, b in zip(cuts, cuts[1:]):
        names.append(f"({a:g},{b:g}]")
    names.append(f"({cuts[-1]:g},inf)")
    return names


def discretize_columns(
    columns: Sequence[Sequence[float]],
    labels: Sequence[int],
    method: str = "mdl",
    n_bins: int = 4,
) -> List[List[str]]:
    """Discretize several continuous columns into categorical columns.

    ``method`` is one of ``"mdl"``, ``"width"``, ``"frequency"``.
    Returns columns of interval labels aligned with the inputs.
    """
    result = []
    for column in columns:
        if method == "mdl":
            cuts = mdl_discretize(column, labels)
        elif method == "width":
            cuts = equal_width_cuts(column, n_bins)
        elif method == "frequency":
            cuts = equal_frequency_cuts(column, n_bins)
        else:
            raise DataError(f"unknown discretization method {method!r}")
        result.append(apply_cuts(column, cuts))
    return result
