"""Bounded-memory streaming ingest into on-disk arena files.

``Dataset.from_records`` tokenizes whole datasets in RAM; this module
ingests *streams* — record iterators, CSV files, Parquet/Arrow tables,
SQL cursors — in fixed-size chunks: tokenize a chunk, pack its cells
into one word-aligned segment block (:func:`repro.tidvector.pack_pairs`)
and spill it to disk, never holding more than one chunk of records plus
the growing item catalog. The finalize pass rewrites the spilled blocks
into a proper :class:`~repro.data.arena.ArenaFile` (zero-padding each
early segment up to the final item count — items first seen later have
no records earlier, so the padding rows are exactly their true empty
tidsets) and atomically renames it into place.

Catalog ids are assigned record-by-record, left-to-right within each
record — precisely the historical first-seen order that
``Dataset.from_records`` replays via its registration sort — so the
streamed arena is **byte-identical** to ``from_records(...)`` +
``save_arena(...)`` on the same rows: same item ids, same mining
order, same CSV outputs downstream.

Fingerprinting: the content fingerprint needs every record's canonical
line, so with ``compute_fingerprint=True`` (the default) ingest
accumulates one rendered line per record — O(total text) memory, the
one knowingly unbounded cost — and hashes them at finalize. Pass
``False`` for huge streams; the fingerprint is then computed lazily on
first demand by whoever opens the arena.

The Parquet/Arrow loader degrades gracefully when ``pyarrow`` is not
installed (:class:`~repro.errors.LoaderError`); the SQL loader uses
only the standard-library ``sqlite3`` driver or any DB-API cursor you
hand it.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path
from typing import (Dict, Iterable, Iterator, List, Optional, Sequence,
                    Tuple, Union)

import numpy as np

from ..errors import DataError, LoaderError
from ..tidvector import pack_pairs, words_for
from .dataset import Dataset
from .fingerprint import fingerprint_from_lines, record_line
from .items import ItemCatalog

__all__ = [
    "DEFAULT_CHUNK_RECORDS",
    "stream_records_to_arena",
    "stream_csv_to_arena",
    "load_parquet",
    "stream_parquet_to_arena",
    "load_sql",
    "stream_sql_to_arena",
]

PathLike = Union[str, Path]

#: Records per ingest chunk (and per arena segment); a multiple of 64
#: so every chunk block is a word-aligned segment.
DEFAULT_CHUNK_RECORDS = 16384


class _StreamBuilder:
    """Accumulates a record stream chunk-by-chunk into spill blocks.

    One instance per ingest; drive with :meth:`add` then
    :meth:`finalize`. Memory held: the item catalog, per-chunk cell
    buffers (cleared every flush), the int label list, and — only when
    fingerprinting — one canonical line per record.
    """

    def __init__(self, out_path: PathLike, *,
                 attribute_names: Optional[Sequence[str]],
                 class_names: Optional[Sequence[str]],
                 name: str, chunk_records: int,
                 compute_fingerprint: bool) -> None:
        if chunk_records < 64:
            raise DataError("chunk_records must be at least 64")
        self.out_path = Path(out_path)
        self.chunk_records = chunk_records - chunk_records % 64
        self.name = name
        self.attribute_names = (list(attribute_names)
                                if attribute_names is not None else None)
        self.catalog = ItemCatalog()
        self._fixed_classes = class_names is not None
        self.class_names: List[str] = ([str(c) for c in class_names]
                                       if class_names else [])
        self._class_index: Dict[str, int] = {
            c: i for i, c in enumerate(self.class_names)}
        self.labels: List[int] = []
        self._lines: Optional[List[str]] = \
            [] if compute_fingerprint else None
        self._chunk_sets: List[int] = []
        self._chunk_records: List[int] = []
        self._chunk_start = 0
        self.n_records = 0
        self._spill_path = self.out_path.with_name(
            self.out_path.name + f".spill.{os.getpid()}")
        self._spill = open(self._spill_path, "wb")
        # (start, n_records, n_items_at_flush, n_words, spill_offset)
        self._blocks: List[Tuple[int, int, int, int, int]] = []

    # ------------------------------------------------------------------

    def add(self, record: Sequence[object], label: object) -> None:
        """Ingest one record; flushes a segment every chunk boundary."""
        if self.attribute_names is None:
            self.attribute_names = [f"A{j}" for j in range(len(record))]
        if len(record) != len(self.attribute_names):
            raise DataError(
                f"record {self.n_records} has {len(record)} values, "
                f"expected {len(self.attribute_names)}")
        rendered: List[str] = []
        local = self.n_records - self._chunk_start
        for j, value in enumerate(record):
            if value is None:
                continue
            value = value if type(value) is str else str(value)
            item_id = self.catalog.add_pair(self.attribute_names[j],
                                            value)
            self._chunk_sets.append(item_id)
            self._chunk_records.append(local)
            if self._lines is not None:
                rendered.append(f"{self.attribute_names[j]}={value}")
        key = str(label)
        index = self._class_index.get(key)
        if index is None:
            if self._fixed_classes:
                raise DataError(f"label {key!r} not in class_names")
            index = len(self.class_names)
            self._class_index[key] = index
            self.class_names.append(key)
        self.labels.append(index)
        if self._lines is not None:
            self._lines.append(record_line(rendered, key))
        self.n_records += 1
        if self.n_records - self._chunk_start >= self.chunk_records:
            self._flush_chunk()

    def _flush_chunk(self) -> None:
        chunk_len = self.n_records - self._chunk_start
        if chunk_len == 0:
            return
        block = pack_pairs(
            np.asarray(self._chunk_sets, dtype=np.int64),
            np.asarray(self._chunk_records, dtype=np.int64),
            len(self.catalog), chunk_len)
        self._blocks.append((self._chunk_start, chunk_len,
                             block.shape[0], block.shape[1],
                             self._spill.tell()))
        self._spill.write(np.ascontiguousarray(block).tobytes())
        self._chunk_sets.clear()
        self._chunk_records.clear()
        self._chunk_start = self.n_records

    # ------------------------------------------------------------------

    def finalize(self) -> Path:
        """Rewrite spill blocks as the final arena file (atomic)."""
        from .arena import write_arena

        try:
            self._flush_chunk()
            self._spill.flush()
            if self.n_records == 0:
                raise DataError("no records supplied")
            if len(self.class_names) < 2:
                raise DataError(
                    "dataset must have at least two classes")
            n_items = len(self.catalog)
            spill = open(self._spill_path, "rb")
            try:
                segments = [
                    (start, seg_records,
                     self._padded_chunks(spill, rows, n_words, offset,
                                         n_items))
                    for start, seg_records, rows, n_words, offset
                    in self._blocks]
                fingerprint = ""
                if self._lines is not None:
                    fingerprint = fingerprint_from_lines(
                        self._lines, self.class_names)
                return write_arena(
                    self.out_path, n_records=self.n_records,
                    items=[(item.attribute, item.value)
                           for item in self.catalog],
                    class_names=self.class_names,
                    labels=np.asarray(self.labels, dtype=np.int64),
                    segments=segments, fingerprint=fingerprint,
                    name=self.name)
            finally:
                spill.close()
        finally:
            self.abort()

    @staticmethod
    def _padded_chunks(spill, rows: int, n_words: int, offset: int,
                       n_items: int) -> Iterator[np.ndarray]:
        """Yield one spilled block padded up to the final item count."""
        raw = os.pread(spill.fileno(), rows * n_words * 8, offset)
        yield np.frombuffer(raw, dtype=np.uint64).reshape(rows, n_words)
        if n_items > rows:
            yield np.zeros((n_items - rows, n_words), dtype=np.uint64)

    def abort(self) -> None:
        """Drop the spill file (idempotent; finalize calls it too)."""
        if not self._spill.closed:
            self._spill.close()
        try:
            os.unlink(self._spill_path)
        except OSError:
            pass


def stream_records_to_arena(
    records: Iterable[Sequence[object]],
    class_labels: Iterable[object],
    path: PathLike,
    attribute_names: Optional[Sequence[str]] = None,
    name: str = "dataset",
    class_names: Optional[Sequence[str]] = None,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    compute_fingerprint: bool = True,
) -> Path:
    """Stream ``(records, labels)`` iterables into an arena file.

    Accepts the same row/label semantics as ``Dataset.from_records``
    (values stringified, ``None`` cells missing) but never holds more
    than ``chunk_records`` rows; the result is byte-identical to
    ``Dataset.from_records(...).save_arena(path, n_segments=1)`` up to
    segmentation (one segment per chunk here).
    """
    builder = _StreamBuilder(
        path, attribute_names=attribute_names, class_names=class_names,
        name=name, chunk_records=chunk_records,
        compute_fingerprint=compute_fingerprint)
    try:
        record_iter = iter(records)
        label_iter = iter(class_labels)
        sentinel = object()
        for record in record_iter:
            label = next(label_iter, sentinel)
            if label is sentinel:
                raise DataError(
                    f"{builder.n_records} class labels for a longer "
                    f"record stream")
            builder.add(record, label)
        if next(label_iter, sentinel) is not sentinel:
            raise DataError(
                f"more class labels than records "
                f"({builder.n_records} records)")
        return builder.finalize()
    except BaseException:
        builder.abort()
        raise


def stream_csv_to_arena(
    csv_path: PathLike,
    path: PathLike,
    class_column: Union[int, str] = -1,
    has_header: bool = True,
    delimiter: str = ",",
    missing_token: str = "?",
    name: Optional[str] = None,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    compute_fingerprint: bool = True,
) -> Path:
    """Stream a delimited text file into an arena file.

    Cell semantics match :func:`repro.data.loaders.load_csv` exactly —
    stripped cells, empty rows skipped, ``missing_token`` cells
    producing no item — so mining the streamed arena yields
    byte-identical CSV outputs to mining the in-RAM load.
    """
    csv_path = Path(csv_path)
    builder: Optional[_StreamBuilder] = None
    try:
        with open(csv_path, newline="") as handle:
            reader = csv.reader(handle, delimiter=delimiter)
            header: Optional[List[str]] = None
            class_index = 0
            data_row = 0
            for raw in reader:
                if not raw:
                    continue
                row = [cell.strip() for cell in raw]
                if header is None:
                    if has_header:
                        header = row
                        continue
                    header = [f"A{j}" for j in range(len(row))]
                if builder is None:
                    n_columns = len(header)
                    if isinstance(class_column, str):
                        try:
                            class_index = header.index(class_column)
                        except ValueError:
                            raise LoaderError(
                                f"class column {class_column!r} not in "
                                f"header {header}") from None
                    else:
                        class_index = class_column % n_columns
                    builder = _StreamBuilder(
                        path,
                        attribute_names=[h for j, h in enumerate(header)
                                         if j != class_index],
                        class_names=None, name=name or csv_path.stem,
                        chunk_records=chunk_records,
                        compute_fingerprint=compute_fingerprint)
                if len(row) != len(header):
                    raise LoaderError(
                        f"row {data_row} has {len(row)} cells, "
                        f"expected {len(header)}")
                label = row[class_index]
                record = [None if cell == missing_token else cell
                          for j, cell in enumerate(row)
                          if j != class_index]
                builder.add(record, label)
                data_row += 1
        if builder is None:
            if header is not None:
                raise LoaderError("CSV has a header but no data rows")
            raise LoaderError("empty CSV input")
        return builder.finalize()
    except BaseException as exc:
        if builder is not None:
            builder.abort()
        if isinstance(exc, OSError):
            raise LoaderError(f"cannot read {csv_path}: {exc}") from exc
        raise


# ----------------------------------------------------------------------
# Parquet / Arrow (gated on pyarrow)
# ----------------------------------------------------------------------


def _require_pyarrow():
    try:
        import pyarrow.parquet as pq  # type: ignore
    except ImportError as exc:
        raise LoaderError(
            "Parquet/Arrow ingest requires the optional pyarrow "
            "dependency, which is not installed") from exc
    return pq


def _iter_parquet(path: PathLike, class_column: Union[int, str],
                  batch_rows: int):
    """Yield ``(attribute_names, class_index)`` then row lists."""
    pq = _require_pyarrow()
    parquet = pq.ParquetFile(str(path))
    names = list(parquet.schema_arrow.names)
    if isinstance(class_column, str):
        if class_column not in names:
            raise LoaderError(
                f"class column {class_column!r} not in {names}")
        class_index = names.index(class_column)
    else:
        class_index = class_column % len(names)
    yield names, class_index
    for batch in parquet.iter_batches(batch_size=batch_rows):
        columns = [column.to_pylist() for column in batch.columns]
        for row in zip(*columns):
            yield list(row)


def load_parquet(path: PathLike,
                 class_column: Union[int, str] = -1,
                 name: Optional[str] = None) -> Dataset:
    """Load a Parquet file as an in-RAM dataset (requires pyarrow).

    Non-null cells are stringified (discretize continuous columns
    first); nulls are missing cells. Raises
    :class:`~repro.errors.LoaderError` when pyarrow is unavailable.
    """
    path = Path(path)
    rows = _iter_parquet(path, class_column, DEFAULT_CHUNK_RECORDS)
    names, class_index = next(rows)
    records: List[List[Optional[str]]] = []
    labels: List[str] = []
    for row in rows:
        labels.append(str(row[class_index]))
        records.append([None if cell is None else str(cell)
                        for j, cell in enumerate(row)
                        if j != class_index])
    if not records:
        raise LoaderError(f"{path} contains no rows")
    return Dataset.from_records(
        records, labels,
        [n for j, n in enumerate(names) if j != class_index],
        name=name or path.stem)


def stream_parquet_to_arena(
    parquet_path: PathLike,
    path: PathLike,
    class_column: Union[int, str] = -1,
    name: Optional[str] = None,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    compute_fingerprint: bool = True,
) -> Path:
    """Stream a Parquet file into an arena, one record batch at a time."""
    parquet_path = Path(parquet_path)
    rows = _iter_parquet(parquet_path, class_column, chunk_records)
    names, class_index = next(rows)
    builder = _StreamBuilder(
        path,
        attribute_names=[n for j, n in enumerate(names)
                         if j != class_index],
        class_names=None, name=name or parquet_path.stem,
        chunk_records=chunk_records,
        compute_fingerprint=compute_fingerprint)
    try:
        for row in rows:
            label = str(row[class_index])
            record = [None if cell is None else str(cell)
                      for j, cell in enumerate(row) if j != class_index]
            builder.add(record, label)
        return builder.finalize()
    except BaseException:
        builder.abort()
        raise


# ----------------------------------------------------------------------
# SQL (stdlib sqlite3 or any DB-API connection)
# ----------------------------------------------------------------------


def _sql_rows(database, query: str, class_column: Union[int, str],
              batch_rows: int):
    """Yield ``(column_names, class_index)`` then row tuples."""
    import sqlite3

    own = isinstance(database, (str, Path))
    connection = sqlite3.connect(str(database)) if own else database
    try:
        cursor = connection.execute(query)
        if cursor.description is None:
            raise LoaderError(f"query returns no columns: {query!r}")
        names = [column[0] for column in cursor.description]
        if isinstance(class_column, str):
            if class_column not in names:
                raise LoaderError(
                    f"class column {class_column!r} not in {names}")
            class_index = names.index(class_column)
        else:
            class_index = class_column % len(names)
        yield names, class_index
        while True:
            batch = cursor.fetchmany(batch_rows)
            if not batch:
                break
            yield from batch
    finally:
        if own:
            connection.close()


def load_sql(database, query: str,
             class_column: Union[int, str] = -1,
             name: str = "sql") -> Dataset:
    """Load a SQL query result as an in-RAM dataset.

    ``database`` is a sqlite database path or an open DB-API
    connection; column names come from the cursor description and
    NULLs become missing cells.
    """
    rows = _sql_rows(database, query, class_column,
                     DEFAULT_CHUNK_RECORDS)
    names, class_index = next(rows)
    records: List[List[Optional[str]]] = []
    labels: List[str] = []
    for row in rows:
        labels.append(str(row[class_index]))
        records.append([None if cell is None else str(cell)
                        for j, cell in enumerate(row)
                        if j != class_index])
    if not records:
        raise LoaderError(f"query returned no rows: {query!r}")
    return Dataset.from_records(
        records, labels,
        [n for j, n in enumerate(names) if j != class_index], name=name)


def stream_sql_to_arena(
    database, query: str, path: PathLike,
    class_column: Union[int, str] = -1,
    name: str = "sql",
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    compute_fingerprint: bool = True,
) -> Path:
    """Stream a SQL query result into an arena file batch-by-batch."""
    rows = _sql_rows(database, query, class_column, chunk_records)
    names, class_index = next(rows)
    builder = _StreamBuilder(
        path,
        attribute_names=[n for j, n in enumerate(names)
                         if j != class_index],
        class_names=None, name=name, chunk_records=chunk_records,
        compute_fingerprint=compute_fingerprint)
    try:
        for row in rows:
            label = str(row[class_index])
            record = [None if cell is None else str(cell)
                      for j, cell in enumerate(row) if j != class_index]
            builder.add(record, label)
        return builder.finalize()
    except BaseException:
        builder.abort()
        raise
