"""Content fingerprints for datasets.

The mining service (:mod:`repro.service`) keys its artifact cache by
*dataset content*, not by file path or registration name: two ingests
of the same logical data must map to the same cache rows, or repeated
queries re-mine for no reason. The fingerprint therefore hashes the
canonical content of a dataset — the multiset of its records, each
record the set of its ``attribute=value`` items plus its class label —
rather than the raw packed arenas, whose item ordering and record
ordering depend on how the data was ingested:

* **record order** — ``from_records(rows)`` and
  ``from_records(shuffled(rows))`` pack different tidsets, but describe
  the same data; the record lines are sorted before hashing.
* **item/column order** — catalog ids are assigned in first-seen order,
  so reordering columns (or transactions' element order) permutes the
  arena rows; items are rendered by name and sorted within each record.
* **class index order** — class indices follow first-seen label order;
  labels are rendered by name, and the class-name universe is hashed
  sorted (classes with zero records still shape rule generation for
  ``m > 2`` classes, so they must count).

What *does* change the fingerprint: any record's items or label, the
record multiset, attribute names, or the set of class names. The
``name`` of the dataset is display metadata and never participates.

The format is versioned (``sha256-v1:``) so a future canonicalization
change cannot silently alias old cache entries.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Sequence

__all__ = [
    "FINGERPRINT_VERSION",
    "dataset_fingerprint",
    "fingerprint_from_lines",
    "record_line",
]

FINGERPRINT_VERSION = "sha256-v1"

# Separators chosen from the C0 range so they cannot collide with
# attribute/value/class text.
_ITEM_SEP = "\x1f"
_FIELD_SEP = "\x1e"
_LINE_SEP = "\x1d"


def record_line(rendered_items: Iterable[str], label: str) -> str:
    """Canonical line of one record: sorted items plus its label name.

    The unit the fingerprint hashes; exposed so streaming ingest
    (:mod:`repro.data.ingest`) can render lines record-by-record
    without ever materializing a :class:`~repro.data.dataset.Dataset`.
    """
    return _ITEM_SEP.join(sorted(rendered_items)) + _FIELD_SEP + label


def fingerprint_from_lines(lines: List[str],
                           class_names: Sequence[str]) -> str:
    """Hash canonical record lines (sorted in place) to a fingerprint.

    ``lines`` must contain one :func:`record_line` per record; the
    record multiset — not its order — determines the digest.
    """
    lines.sort()
    digest = hashlib.sha256()
    digest.update(f"{FINGERPRINT_VERSION}\x00".encode("utf-8"))
    digest.update((_LINE_SEP.join(sorted(class_names))
                   + "\x00").encode("utf-8"))
    for line in lines:
        digest.update(line.encode("utf-8"))
        digest.update(b"\x00")
    return f"{FINGERPRINT_VERSION}:{digest.hexdigest()}"


def dataset_fingerprint(dataset) -> str:
    """Canonical content hash of a dataset (see module docstring).

    Accepts any object with the :class:`~repro.data.dataset.Dataset`
    read surface (``n_records``, ``catalog``, ``item_tidsets``,
    ``class_labels``, ``class_names``).
    """
    n = dataset.n_records
    per_record: List[List[str]] = [[] for _ in range(n)]
    for item_id, tidset in enumerate(dataset.item_tidsets):
        rendered = str(dataset.catalog.item(item_id))
        for record_id in tidset.indices():
            per_record[record_id].append(rendered)
    lines = [
        record_line(per_record[record_id],
                    dataset.class_names[dataset.class_labels[record_id]])
        for record_id in range(n)
    ]
    return fingerprint_from_lines(lines, dataset.class_names)
