"""Dataset file loaders: CSV, FIMI transaction files, and ARFF-lite.

The paper's real-data experiments use UCI datasets distributed as CSV
(attribute-valued) files, while the frequent-itemset-mining community
exchanges data as FIMI files (one transaction of space-separated item
ids per line). Both are supported here, plus a minimal ARFF reader for
Weka-formatted files, and matching writers so synthetic datasets can be
round-tripped to disk.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from ..errors import LoaderError
from .dataset import Dataset

__all__ = [
    "load_arena",
    "load_csv",
    "save_csv",
    "load_fimi",
    "save_fimi",
    "load_arff",
]

PathLike = Union[str, Path]


def load_csv(
    path: PathLike,
    class_column: Union[int, str] = -1,
    has_header: bool = True,
    delimiter: str = ",",
    missing_token: str = "?",
    name: Optional[str] = None,
) -> Dataset:
    """Load an attribute-valued dataset from a delimited text file.

    Parameters
    ----------
    class_column:
        Index (may be negative) or header name of the class column.
    has_header:
        When True the first row supplies attribute names.
    missing_token:
        Cell value treated as missing (``None``), producing no item.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise LoaderError(f"cannot read {path}: {exc}") from exc
    return _parse_csv_text(text, class_column, has_header, delimiter,
                           missing_token, name or path.stem)


def _parse_csv_text(
    text: str,
    class_column: Union[int, str],
    has_header: bool,
    delimiter: str,
    missing_token: str,
    name: str,
) -> Dataset:
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows = [[cell.strip() for cell in row] for row in reader if row]
    if not rows:
        raise LoaderError("empty CSV input")
    if has_header:
        header, rows = rows[0], rows[1:]
        if not rows:
            raise LoaderError("CSV has a header but no data rows")
    else:
        header = [f"A{j}" for j in range(len(rows[0]))]
    n_columns = len(header)
    for i, row in enumerate(rows):
        if len(row) != n_columns:
            raise LoaderError(
                f"row {i} has {len(row)} cells, expected {n_columns}")
    if isinstance(class_column, str):
        try:
            class_index = header.index(class_column)
        except ValueError:
            raise LoaderError(
                f"class column {class_column!r} not in header {header}"
            ) from None
    else:
        class_index = class_column % n_columns
    attribute_names = [h for j, h in enumerate(header) if j != class_index]
    records: List[List[Optional[str]]] = []
    labels: List[str] = []
    for row in rows:
        labels.append(row[class_index])
        record = [
            None if cell == missing_token else cell
            for j, cell in enumerate(row)
            if j != class_index
        ]
        records.append(record)
    return Dataset.from_records(records, labels, attribute_names, name=name)


def load_arena(path: PathLike, sharded: bool = False):
    """Open an on-disk arena file (see :mod:`repro.data.arena`).

    With ``sharded=False`` (default) this is
    :meth:`~repro.data.dataset.Dataset.open_arena`: a dataset whose
    word block is memory-mapped zero-copy on single-segment files.
    ``sharded=True`` returns the
    :class:`~repro.data.arena.ShardedDataset` view instead — bounded
    memory per access, for arenas larger than RAM.
    """
    if sharded:
        from .arena import ShardedDataset
        return ShardedDataset.open(path)
    return Dataset.open_arena(path)


def save_csv(dataset: Dataset, path: PathLike, delimiter: str = ",",
             missing_token: str = "?") -> None:
    """Write a dataset as CSV with the class label in the last column."""
    path = Path(path)
    attributes = dataset.catalog.attributes
    rows = dataset.to_records()
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(attributes + ["class"])
        for r, row in enumerate(rows):
            cells = [missing_token if v is None else v for v in row]
            cells.append(dataset.class_names[dataset.class_labels[r]])
            writer.writerow(cells)


def load_fimi(
    path: PathLike,
    class_labels: Optional[Sequence[object]] = None,
    label_path: Optional[PathLike] = None,
    name: Optional[str] = None,
) -> Dataset:
    """Load a FIMI transaction file (space-separated item ids per line).

    Class labels may come from an explicit sequence, from a companion
    file with one label per line, or — when neither is given — from the
    last item of every transaction (a common convention for class
    transaction data).
    """
    path = Path(path)
    try:
        lines = [ln.split() for ln in path.read_text().splitlines()
                 if ln.strip()]
    except OSError as exc:
        raise LoaderError(f"cannot read {path}: {exc}") from exc
    if not lines:
        raise LoaderError("empty FIMI input")
    if class_labels is not None and label_path is not None:
        raise LoaderError("give class_labels or label_path, not both")
    if label_path is not None:
        label_file = Path(label_path)
        try:
            class_labels = [ln.strip() for ln in
                            label_file.read_text().splitlines() if ln.strip()]
        except OSError as exc:
            raise LoaderError(f"cannot read {label_file}: {exc}") from exc
    if class_labels is None:
        transactions = [ln[:-1] for ln in lines]
        labels: Sequence[object] = [ln[-1] for ln in lines]
        if any(not t for t in transactions):
            raise LoaderError(
                "transaction with a single item cannot supply both items "
                "and a class label; pass labels explicitly")
    else:
        transactions = lines
        labels = class_labels
    if len(labels) != len(transactions):
        raise LoaderError(
            f"{len(labels)} labels for {len(transactions)} transactions")
    return Dataset.from_transactions(transactions, labels,
                                     name=name or path.stem)


def save_fimi(dataset: Dataset, path: PathLike,
              label_path: Optional[PathLike] = None) -> None:
    """Write transactions as item-id lists; labels in a companion file.

    Item ids are the catalog's dense ids, so ``load_fimi`` on the output
    reconstructs an isomorphic dataset.
    """
    path = Path(path)
    rows: List[List[int]] = [[] for _ in range(dataset.n_records)]
    for item_id, tids in enumerate(dataset.item_tidsets):
        for r in tids.indices():
            rows[r].append(item_id)
    with path.open("w") as handle:
        for row in rows:
            handle.write(" ".join(str(i) for i in sorted(row)) + "\n")
    if label_path is not None:
        with Path(label_path).open("w") as handle:
            for label in dataset.class_labels:
                handle.write(dataset.class_names[label] + "\n")


def load_arff(path: PathLike, class_attribute: Optional[str] = None,
              name: Optional[str] = None) -> Dataset:
    """Load a minimal ARFF file (nominal attributes, no quoting games).

    Supports ``@relation``, ``@attribute NAME {v1,v2,...}`` and
    ``@data`` sections with comma-separated rows; ``%`` comments are
    ignored. The class attribute defaults to the last one declared.
    """
    path = Path(path)
    try:
        raw_lines = path.read_text().splitlines()
    except OSError as exc:
        raise LoaderError(f"cannot read {path}: {exc}") from exc
    attributes: List[str] = []
    in_data = False
    data_rows: List[List[str]] = []
    relation = name or path.stem
    for raw in raw_lines:
        line = raw.strip()
        if not line or line.startswith("%"):
            continue
        lowered = line.lower()
        if in_data:
            data_rows.append([c.strip() for c in line.split(",")])
        elif lowered.startswith("@relation"):
            parts = line.split(None, 1)
            if len(parts) == 2 and name is None:
                relation = parts[1].strip()
        elif lowered.startswith("@attribute"):
            parts = line.split(None, 2)
            if len(parts) < 3:
                raise LoaderError(f"malformed attribute line: {line!r}")
            attributes.append(parts[1].strip().strip("'\""))
        elif lowered.startswith("@data"):
            in_data = True
    if not attributes:
        raise LoaderError("ARFF file declares no attributes")
    if not data_rows:
        raise LoaderError("ARFF file has no data rows")
    if class_attribute is None:
        class_index = len(attributes) - 1
    else:
        try:
            class_index = attributes.index(class_attribute)
        except ValueError:
            raise LoaderError(
                f"class attribute {class_attribute!r} not declared"
            ) from None
    for i, row in enumerate(data_rows):
        if len(row) != len(attributes):
            raise LoaderError(
                f"data row {i} has {len(row)} cells, "
                f"expected {len(attributes)}")
    records = []
    labels = []
    kept_names = [a for j, a in enumerate(attributes) if j != class_index]
    for row in data_rows:
        labels.append(row[class_index])
        records.append([None if cell == "?" else cell
                        for j, cell in enumerate(row) if j != class_index])
    return Dataset.from_records(records, labels, kept_names, name=relation)
