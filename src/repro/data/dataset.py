"""Attribute-valued dataset with class labels (Section 2.1 of the paper).

A :class:`Dataset` stores records columnar: for every item (attribute =
value pair) it keeps the *tidset* — the packed record-id set of the
records containing the item — and for every class label the packed set
of records carrying that label. Both live in shared uint64 arenas
(``(n_items, ceil(n/64))`` and ``(n_classes, ceil(n/64))``) built
vectorized at ingest; the per-item/per-class views are
:class:`~repro.tidvector.TidVector` rows over those arenas. All mining
and statistics downstream consume only these packed sets plus a
handful of integer counts, which is what enables the paper's "mine
once, re-score per permutation" optimization (Section 4.2.1):
permuting class labels leaves every item tidset untouched.

For plugin/oracle interop the constructor also accepts bigint bitsets
(the pre-packed-native representation); they are coerced once at
construction and never reappear downstream.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DataError
from ..tidvector import (
    TidVector,
    arena_rows,
    pack_bool_matrix,
    pack_id_lists,
    pack_pairs,
    stack_tidvectors,
    unpack_arena,
    words_for,
)
from .items import Item, ItemCatalog

__all__ = ["Dataset", "ClassSummary"]


@dataclass(frozen=True)
class ClassSummary:
    """Per-class bookkeeping: label name, index, support and tidset."""

    index: int
    name: str
    support: int
    tidset: TidVector = field(repr=False)


class Dataset:
    """Records over categorical attributes plus a class label attribute.

    Parameters
    ----------
    n_records:
        Number of records ``n``.
    catalog:
        The item catalog; item ids index into ``item_tidsets``.
    item_tidsets:
        One tidset per item: :class:`~repro.tidvector.TidVector` values,
        bigint bitsets (interop; coerced), or a ready
        ``(n_items, ceil(n/64))`` uint64 arena (shared zero-copy).
    class_labels:
        Per-record class index (length ``n_records``).
    class_names:
        Names of the classes; ``class_labels`` values index this list.
    name:
        Optional human-readable dataset name used in reports.
    """

    def __init__(
        self,
        n_records: int,
        catalog: ItemCatalog,
        item_tidsets: Sequence,
        class_labels: Sequence[int],
        class_names: Sequence[str],
        name: str = "dataset",
        *,
        validate_arena: bool = True,
    ) -> None:
        class_labels = [int(label) for label in class_labels]
        if len(class_labels) != n_records:
            raise DataError(
                f"{len(class_labels)} class labels for {n_records} records"
            )
        if n_records == 0:
            raise DataError("dataset must contain at least one record")
        n_classes = len(class_names)
        if n_classes < 2:
            raise DataError("dataset must have at least two classes")
        self.n_records = n_records
        self.catalog = catalog
        self._item_arena = self._adopt_arena(item_tidsets, n_records,
                                             validate=validate_arena)
        if self._item_arena.shape[0] != len(catalog):
            raise DataError(
                f"{self._item_arena.shape[0]} tidsets for "
                f"{len(catalog)} items"
            )
        self.item_tidsets: List[TidVector] = arena_rows(
            self._item_arena, n_records)
        self.class_labels: List[int] = class_labels
        self.class_names: List[str] = [str(c) for c in class_names]
        self.name = name
        self._labels_array = np.asarray(class_labels, dtype=np.int64)
        if self._labels_array.size and (
                self._labels_array.min() < 0
                or self._labels_array.max() >= n_classes):
            bad = int(self._labels_array.min()
                      if self._labels_array.min() < 0
                      else self._labels_array.max())
            raise DataError(f"class label {bad} out of range")
        self._class_arena = pack_bool_matrix(
            self._labels_array[None, :]
            == np.arange(n_classes, dtype=np.int64)[:, None])
        self._class_tidsets = arena_rows(self._class_arena, n_records)

    @staticmethod
    def _adopt_arena(item_tidsets, n_records: int,
                     validate: bool = True) -> np.ndarray:
        """Normalize any accepted tidset input to one packed arena.

        ``validate=False`` skips the tail-bit scan for arenas whose
        builder already guarantees clean tail words — the memory-mapped
        ``open_arena`` path, where touching the last word column would
        page in the entire file for no reason.
        """
        n_words = words_for(n_records)
        if isinstance(item_tidsets, np.ndarray) and item_tidsets.ndim == 2:
            arena = np.ascontiguousarray(item_tidsets, dtype=np.uint64)
            if arena.shape[1] != n_words:
                raise DataError(
                    f"arena has {arena.shape[1]} words per row, need "
                    f"{n_words} for {n_records} records")
            tail = n_records % 64
            if validate and n_words and tail and np.any(
                    arena[:, -1] >> np.uint64(tail)):
                raise DataError(
                    "arena tidsets reference records >= n")
            return arena
        rows = list(item_tidsets)
        if rows and all(isinstance(t, TidVector) for t in rows):
            for i, tids in enumerate(rows):
                if tids.n != n_records:
                    raise DataError(
                        f"tidset of item {i} covers {tids.n} records, "
                        f"expected {n_records}")
            # stack_tidvectors returns a zero-copy arena slice when the
            # rows already share one contiguous arena in order.
            return stack_tidvectors(rows, n_records)
        arena = np.zeros((len(rows), n_words), dtype=np.uint64)
        for i, tids in enumerate(rows):
            try:
                arena[i] = TidVector.from_bigint(int(tids),
                                                 n_records).words
            except ValueError:
                raise DataError(
                    f"tidset of item {i} references records >= n")
        return arena

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: Sequence[Sequence[object]],
        class_labels: Sequence[object],
        attribute_names: Optional[Sequence[str]] = None,
        name: str = "dataset",
        class_names: Optional[Sequence[str]] = None,
    ) -> "Dataset":
        """Build a dataset from row-major records of categorical values.

        ``records[r][a]`` is the value of attribute ``a`` in record
        ``r``; values are stringified. A value of ``None`` means
        "missing" and produces no item for that cell.

        Ingest is columnar and vectorized: each attribute's column is
        tokenized once against a plain per-column dict (no per-cell
        catalog object), catalog ids are then assigned in exactly the
        historical row-major first-seen order (so item ids — and every
        downstream mining order built on them — are unchanged), and
        all cells land in the packed uint64 arena through one
        :func:`~repro.tidvector.pack_pairs` call. No per-cell bigint
        arithmetic anywhere.
        """
        if not records:
            raise DataError("no records supplied")
        n_attributes = len(records[0])
        if attribute_names is None:
            attribute_names = [f"A{j}" for j in range(n_attributes)]
        if len(attribute_names) != n_attributes:
            raise DataError("attribute_names length mismatch")
        n = len(records)
        for r, record in enumerate(records):
            if len(record) != n_attributes:
                raise DataError(f"record {r} has {len(record)} values, "
                                f"expected {n_attributes}")
        columns = []      # per attribute: (values, codes, rec_ids)
        registration = []  # (first_record, attribute, local code)
        for j in range(n_attributes):
            seen: Dict[str, int] = {}
            values: List[str] = []
            codes: List[int] = []
            rec_ids: List[int] = []
            for r in range(n):
                value = records[r][j]
                if value is None:
                    continue
                value = value if type(value) is str else str(value)
                code = seen.get(value)
                if code is None:
                    code = len(values)
                    seen[value] = code
                    values.append(value)
                    registration.append((r, j, code))
                codes.append(code)
                rec_ids.append(r)
            columns.append((values, codes, rec_ids))
        # Catalog ids in row-major first-seen order: sorting the
        # (first_record, attribute) pairs replays the historical
        # cell-by-cell scan exactly.
        registration.sort()
        catalog = ItemCatalog()
        id_of: Dict[Tuple[int, int], int] = {}
        for first_r, j, code in registration:
            id_of[(j, code)] = catalog.add_pair(
                attribute_names[j], columns[j][0][code])
        total = sum(len(codes) for _, codes, _ in columns)
        set_ids = np.empty(total, dtype=np.int64)
        record_ids = np.empty(total, dtype=np.int64)
        offset = 0
        for j, (values, codes, rec_ids) in enumerate(columns):
            if not codes:
                continue
            mapping = np.fromiter(
                (id_of[(j, code)] for code in range(len(values))),
                dtype=np.int64, count=len(values))
            k = len(codes)
            set_ids[offset:offset + k] = mapping[
                np.asarray(codes, dtype=np.int64)]
            record_ids[offset:offset + k] = rec_ids
            offset += k
        arena = pack_pairs(set_ids, record_ids, len(catalog), n)
        label_indices, names = _encode_labels(class_labels, class_names)
        return cls(n, catalog, arena, label_indices, names, name=name)

    @classmethod
    def from_transactions(
        cls,
        transactions: Sequence[Iterable[object]],
        class_labels: Sequence[object],
        name: str = "dataset",
        class_names: Optional[Sequence[str]] = None,
    ) -> "Dataset":
        """Build a dataset from item-set transactions (FIMI style).

        Every distinct transaction element becomes an item of a
        synthetic single-valued attribute named after the element, so a
        market-basket file can be mined with the class-rule machinery.
        """
        if not transactions:
            raise DataError("no transactions supplied")
        catalog = ItemCatalog()
        item_rows: List[List[int]] = []
        for r, transaction in enumerate(transactions):
            for element in transaction:
                item_id = catalog.add_pair(f"item:{element}", "1")
                if item_id == len(item_rows):
                    item_rows.append([])
                item_rows[item_id].append(r)
        label_indices, names = _encode_labels(class_labels, class_names)
        return cls(len(transactions), catalog,
                   pack_id_lists(item_rows, len(transactions)),
                   label_indices, names, name=name)

    # ------------------------------------------------------------------
    # core accessors
    # ------------------------------------------------------------------

    @property
    def n_classes(self) -> int:
        """Number of distinct class labels."""
        return len(self.class_names)

    @property
    def n_items(self) -> int:
        """Number of distinct items (attribute=value pairs)."""
        return len(self.catalog)

    @property
    def n_attributes(self) -> int:
        """Number of attributes (excluding the class attribute)."""
        return len(self.catalog.attributes)

    @property
    def item_arena(self) -> np.ndarray:
        """The shared ``(n_items, n_words)`` packed arena (read-only
        by convention; item tidset views alias its rows)."""
        return self._item_arena

    def class_tidset(self, class_index: int) -> TidVector:
        """Packed set of records labelled with class ``class_index``."""
        return self._class_tidsets[class_index]

    def class_support(self, class_index: int) -> int:
        """``n_c``: the number of records labelled with the class."""
        return self._class_tidsets[class_index].count()

    def class_summaries(self) -> List[ClassSummary]:
        """Per-class name/support/tidset summaries."""
        return [
            ClassSummary(i, self.class_names[i], t.count(), t)
            for i, t in enumerate(self._class_tidsets)
        ]

    def item_support(self, item_id: int) -> int:
        """Support of a single item."""
        return self.item_tidsets[item_id].count()

    def fingerprint(self) -> str:
        """Stable content hash of this dataset (cached after one call).

        Invariant to ingest ordering — record order, column/item order
        and class-index order — but sensitive to any change in the
        record multiset, attribute names or class-name universe; see
        :mod:`repro.data.fingerprint`. The service's artifact cache
        (:mod:`repro.service`) keys every mining result by this value.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            from .fingerprint import dataset_fingerprint

            cached = dataset_fingerprint(self)
            self._fingerprint = cached
        return cached

    def pattern_tidset(self, item_ids: Iterable[int]) -> TidVector:
        """Tidset of a pattern: intersection of its items' tidsets.

        Chained word-wise intersection with an early exit as soon as
        the running set empties; the empty pattern covers everything.
        """
        ids = [int(i) for i in item_ids]
        if not ids:
            return TidVector.universe(self.n_records)
        words = self._item_arena[ids[0]].copy()
        for item_id in ids[1:]:
            np.bitwise_and(words, self._item_arena[item_id], out=words)
            if not words.any():
                break
        return TidVector(words, self.n_records)

    def pattern_support(self, item_ids: Iterable[int]) -> int:
        """Support (coverage) of a pattern."""
        return self.pattern_tidset(item_ids).count()

    def rule_support(self, item_ids: Iterable[int], class_index: int) -> int:
        """Support of the rule ``pattern => class``."""
        return self.pattern_tidset(item_ids).intersection_count(
            self._class_tidsets[class_index])

    # ------------------------------------------------------------------
    # out-of-core arena files
    # ------------------------------------------------------------------

    def save_arena(self, path, n_segments: int = 1,
                   fingerprint: bool = True):
        """Write this dataset as an on-disk arena file (atomic rename).

        ``n_segments`` partitions the records into word-aligned
        row-range segments for out-of-core sharded access (see
        :mod:`repro.data.arena`); the default single segment keeps the
        file mappable as one zero-copy whole arena. With
        ``fingerprint=True`` the content fingerprint is computed (if
        not already cached) and stored in the header, so readers never
        need a full scan to key caches.
        """
        from .arena import segment_boundaries, write_arena

        bounds = segment_boundaries(self.n_records, n_segments)
        segments = []
        for lo, hi in zip(bounds, bounds[1:]):
            w0 = lo // 64
            w1 = w0 + words_for(hi - lo)
            segments.append((lo, hi - lo, self._arena_chunks(w0, w1)))
        if fingerprint:
            stamp = self.fingerprint()
        else:
            stamp = getattr(self, "_fingerprint", None) or ""
        return write_arena(
            path, n_records=self.n_records,
            items=[(item.attribute, item.value) for item in self.catalog],
            class_names=self.class_names, labels=self._labels_array,
            segments=segments, fingerprint=stamp, name=self.name)

    def _arena_chunks(self, w0: int, w1: int):
        """Yield contiguous item-row chunks of one word-column range,
        bounded to ~64 MB per chunk however wide the arena is."""
        row_bytes = max(1, (w1 - w0) * 8)
        chunk = max(1, (64 << 20) // row_bytes)
        for start in range(0, self.n_items, chunk):
            yield np.ascontiguousarray(
                self._item_arena[start:start + chunk, w0:w1])

    @classmethod
    def open_arena(cls, path) -> "Dataset":
        """Open an arena file as a dataset, zero-copy where possible.

        Single-segment files (the ``save_arena`` default) are adopted
        as a read-only ``np.memmap`` of the word block — no copy, no
        validation scan, pages faulted in only as mining touches them,
        and shared between processes that open the same file.
        Multi-segment files are materialized segment-at-a-time into
        RAM; use :class:`~repro.data.arena.ShardedDataset` to mine
        them without materializing.

        The returned dataset remembers its source path: pickling it
        (e.g. shipping it to executor workers) transmits the *path*,
        not the words, and the receiver re-maps the same pages.
        """
        return _rebuild_arena_dataset(str(path), None, None, None, None)

    def __reduce_ex__(self, protocol):
        source = getattr(self, "_arena_source", None)
        if source is None:
            # No __reduce__ override exists, so the base implementation
            # takes the normal copyreg path (pickling the arena by
            # value) instead of dispatching back here.
            return super().__reduce_ex__(protocol)
        labels = None
        if not getattr(self, "_arena_labels_native", False):
            labels = np.asarray(self._labels_array)
        return (_rebuild_arena_dataset,
                (source, labels, list(self.class_names), self.name,
                 getattr(self, "_fingerprint", None)))

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------

    def with_class_labels(self, new_labels: Sequence[int],
                          name: Optional[str] = None) -> "Dataset":
        """Return a copy sharing the item arena but with new labels.

        The packed item arena is shared zero-copy (tidsets are
        immutable), so this is cheap; it is the primitive beneath
        permutation testing. An arena-file-backed dataset keeps its
        source path, so relabelled copies still pickle as path plus
        labels rather than by value.
        """
        clone = Dataset(
            self.n_records,
            self.catalog,
            self._item_arena,
            new_labels,
            self.class_names,
            name=name or self.name,
            validate_arena=False,
        )
        source = getattr(self, "_arena_source", None)
        if source is not None:
            clone._arena_source = source
            clone._arena_labels_native = False
        return clone

    def permuted(self, rng=None, name: Optional[str] = None) -> "Dataset":
        """Return a copy with class labels randomly shuffled.

        ``rng`` is a :class:`numpy.random.Generator` (``None`` draws a
        fresh ``numpy.random.default_rng()``), matching the permutation
        engine's label-shuffle path. Passing a :class:`random.Random`
        is deprecated; the legacy Fisher–Yates shuffle is kept as a
        warning shim for one release.
        """
        if isinstance(rng, random.Random):
            warnings.warn(
                "Dataset.permuted(random.Random) is deprecated; pass a "
                "numpy.random.Generator (e.g. numpy.random.default_rng"
                "(seed)) for the engine-consistent shuffle",
                DeprecationWarning, stacklevel=2)
            labels = list(self.class_labels)
            rng.shuffle(labels)
        else:
            generator = rng if rng is not None else np.random.default_rng()
            labels = generator.permutation(self._labels_array)
        return self.with_class_labels(labels, name=name or
                                      f"{self.name}[permuted]")

    def permuted_class_tidsets(self, rng=None) -> List[TidVector]:
        """Shuffle labels and return only the per-class packed sets.

        The permutation engine needs nothing but these sets, so this
        avoids constructing a full Dataset per permutation. ``rng``
        follows :meth:`permuted` (numpy Generator preferred;
        :class:`random.Random` deprecated).
        """
        if isinstance(rng, random.Random):
            warnings.warn(
                "Dataset.permuted_class_tidsets(random.Random) is "
                "deprecated; pass a numpy.random.Generator",
                DeprecationWarning, stacklevel=2)
            labels_list = list(self.class_labels)
            rng.shuffle(labels_list)
            labels = np.asarray(labels_list, dtype=np.int64)
        else:
            generator = rng if rng is not None else np.random.default_rng()
            labels = generator.permutation(self._labels_array)
        arena = pack_bool_matrix(
            labels[None, :]
            == np.arange(self.n_classes, dtype=np.int64)[:, None])
        return arena_rows(arena, self.n_records)

    def subset(self, record_ids: Sequence[int],
               name: Optional[str] = None) -> "Dataset":
        """Return the dataset restricted to ``record_ids`` (re-indexed).

        Used by the holdout approach to materialize the exploratory and
        evaluation halves. Items that vanish from the subset keep their
        catalog entry with an empty tidset, so item ids remain
        comparable across the two halves. Extraction is one vectorized
        unpack → column-select → repack over the whole arena, not a
        per-bit probe per item.
        """
        ordered = list(int(r) for r in record_ids)
        seen = set()
        for r in ordered:
            if r < 0 or r >= self.n_records:
                raise DataError(f"record id {r} out of range")
            if r in seen:
                raise DataError(f"duplicate record id {r} in subset")
            seen.add(r)
        columns = np.asarray(ordered, dtype=np.int64)
        n_items = self._item_arena.shape[0]
        new_arena = np.empty((n_items, words_for(len(ordered))),
                             dtype=np.uint64)
        # Unpack in item-row chunks so the bool intermediate stays
        # bounded (~64 MB) however large n_items x n_records grows.
        chunk = max(1, (64 << 20) // max(1, self.n_records))
        for start in range(0, n_items, chunk):
            flags = unpack_arena(self._item_arena[start:start + chunk],
                                 self.n_records)
            new_arena[start:start + flags.shape[0]] = \
                pack_bool_matrix(flags[:, columns])
        new_labels = self._labels_array[columns]
        return Dataset(len(ordered), self.catalog, new_arena, new_labels,
                       self.class_names,
                       name=name or f"{self.name}[subset]")

    def split_half(self, rng: Optional[random.Random] = None,
                   boundary: Optional[int] = None,
                   ) -> Tuple["Dataset", "Dataset"]:
        """Split into two halves for holdout evaluation.

        With ``boundary`` given, records ``[0, boundary)`` form the
        first half and the rest the second (the paper's structured
        "holdout" on catenated sub-datasets). With ``rng`` given,
        records are shuffled first (the paper's "random holdout").
        """
        if boundary is None:
            boundary = self.n_records // 2
        ids = list(range(self.n_records))
        if rng is not None:
            rng.shuffle(ids)
        first = ids[:boundary]
        second = ids[boundary:]
        if not first or not second:
            raise DataError("split would leave an empty half")
        return (self.subset(first, name=f"{self.name}[exploratory]"),
                self.subset(second, name=f"{self.name}[evaluation]"))

    # ------------------------------------------------------------------
    # conversions and dunder plumbing
    # ------------------------------------------------------------------

    def to_records(self) -> List[List[Optional[str]]]:
        """Materialize row-major records (None for missing cells)."""
        attributes = self.catalog.attributes
        column_of = {a: j for j, a in enumerate(attributes)}
        rows: List[List[Optional[str]]] = [
            [None] * len(attributes) for _ in range(self.n_records)
        ]
        for item_id, tids in enumerate(self.item_tidsets):
            item = self.catalog.item(item_id)
            j = column_of[item.attribute]
            for r in tids.indices():
                rows[r][j] = item.value
        return rows

    def __repr__(self) -> str:
        return (f"Dataset(name={self.name!r}, n_records={self.n_records}, "
                f"n_attributes={self.n_attributes}, n_items={self.n_items}, "
                f"n_classes={self.n_classes})")


def _rebuild_arena_dataset(path, labels, class_names, name, fingerprint):
    """Open (or unpickle) a dataset from an arena file.

    The reconstructor behind :meth:`Dataset.open_arena` and the
    zero-copy pickle path: ``labels``/``class_names``/``name`` override
    the file's values when a relabelled derivative was pickled;
    ``None`` means "use the file's". Workers unpickling a shipped
    dataset re-map the same on-disk pages instead of receiving a
    by-value copy of the words.
    """
    from .arena import ArenaFile

    with ArenaFile(path) as arena:
        if arena.n_segments == 1:
            words = arena.whole_words()
        else:
            words = np.empty((arena.n_items, arena.n_words),
                             dtype=np.uint64)
            column = 0
            for index in range(arena.n_segments):
                block = np.asarray(arena.segment_words(index))
                words[:, column:column + block.shape[1]] = block
                column += block.shape[1]
        native_labels = labels is None
        dataset = Dataset(
            arena.n_records,
            arena.catalog(),
            words,
            arena.labels() if labels is None else labels,
            arena.class_names if class_names is None else class_names,
            name=arena.name if name is None else name,
            validate_arena=False,
        )
        stamp = fingerprint if fingerprint is not None \
            else (arena.fingerprint or None)
        if stamp and native_labels and class_names is None:
            dataset._fingerprint = stamp
        elif stamp and fingerprint is not None:
            dataset._fingerprint = stamp
        dataset._arena_source = str(path)
        dataset._arena_labels_native = native_labels
    return dataset


def _encode_labels(
    class_labels: Sequence[object],
    class_names: Optional[Sequence[str]],
) -> Tuple[List[int], List[str]]:
    """Map raw labels to dense indices, preserving first-seen order."""
    if class_names is not None:
        names = [str(c) for c in class_names]
        index_of: Dict[str, int] = {c: i for i, c in enumerate(names)}
        indices = []
        for label in class_labels:
            key = str(label)
            if key not in index_of:
                raise DataError(f"label {key!r} not in class_names")
            indices.append(index_of[key])
        return indices, names
    index_of = {}
    names = []
    indices = []
    for label in class_labels:
        key = str(label)
        if key not in index_of:
            index_of[key] = len(names)
            names.append(key)
        indices.append(index_of[key])
    return indices, names
