"""Attribute-valued dataset with class labels (Section 2.1 of the paper).

A :class:`Dataset` stores records columnar: for every item (attribute =
value pair) it keeps the *tidset* — the bitset of record ids containing
the item — and for every class label the bitset of records carrying that
label. All mining and statistics downstream consume only these bitsets
plus a handful of integer counts, which is what enables the paper's
"mine once, re-score per permutation" optimization (Section 4.2.1):
permuting class labels leaves every item tidset untouched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import bitset as bs
from ..errors import DataError
from .items import Item, ItemCatalog

__all__ = ["Dataset", "ClassSummary"]


@dataclass(frozen=True)
class ClassSummary:
    """Per-class bookkeeping: label name, index, support and tidset."""

    index: int
    name: str
    support: int
    tidset: int = field(repr=False)


class Dataset:
    """Records over categorical attributes plus a class label attribute.

    Parameters
    ----------
    n_records:
        Number of records ``n``.
    catalog:
        The item catalog; item ids index into ``item_tidsets``.
    item_tidsets:
        ``item_tidsets[i]`` is the bitset of record ids containing item
        ``i``.
    class_labels:
        Per-record class index (length ``n_records``).
    class_names:
        Names of the classes; ``class_labels`` values index this list.
    name:
        Optional human-readable dataset name used in reports.
    """

    def __init__(
        self,
        n_records: int,
        catalog: ItemCatalog,
        item_tidsets: Sequence[int],
        class_labels: Sequence[int],
        class_names: Sequence[str],
        name: str = "dataset",
    ) -> None:
        if len(class_labels) != n_records:
            raise DataError(
                f"{len(class_labels)} class labels for {n_records} records"
            )
        if len(item_tidsets) != len(catalog):
            raise DataError(
                f"{len(item_tidsets)} tidsets for {len(catalog)} items"
            )
        if n_records == 0:
            raise DataError("dataset must contain at least one record")
        n_classes = len(class_names)
        if n_classes < 2:
            raise DataError("dataset must have at least two classes")
        self.n_records = n_records
        self.catalog = catalog
        self.item_tidsets: List[int] = list(item_tidsets)
        self.class_labels: List[int] = list(class_labels)
        self.class_names: List[str] = [str(c) for c in class_names]
        self.name = name
        limit = bs.universe(n_records)
        for i, tids in enumerate(self.item_tidsets):
            if tids & ~limit:
                raise DataError(f"tidset of item {i} references records >= n")
        for label in self.class_labels:
            if not 0 <= label < n_classes:
                raise DataError(f"class label {label} out of range")
        self._class_tidsets = self._build_class_tidsets()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: Sequence[Sequence[object]],
        class_labels: Sequence[object],
        attribute_names: Optional[Sequence[str]] = None,
        name: str = "dataset",
        class_names: Optional[Sequence[str]] = None,
    ) -> "Dataset":
        """Build a dataset from row-major records of categorical values.

        ``records[r][a]`` is the value of attribute ``a`` in record
        ``r``; values are stringified. A value of ``None`` means
        "missing" and produces no item for that cell.
        """
        if not records:
            raise DataError("no records supplied")
        n_attributes = len(records[0])
        if attribute_names is None:
            attribute_names = [f"A{j}" for j in range(n_attributes)]
        if len(attribute_names) != n_attributes:
            raise DataError("attribute_names length mismatch")
        catalog = ItemCatalog()
        tidsets: List[int] = []
        for r, record in enumerate(records):
            if len(record) != n_attributes:
                raise DataError(f"record {r} has {len(record)} values, "
                                f"expected {n_attributes}")
            for j, value in enumerate(record):
                if value is None:
                    continue
                item_id = catalog.add_pair(attribute_names[j], str(value))
                if item_id == len(tidsets):
                    tidsets.append(0)
                tidsets[item_id] |= 1 << r
        label_indices, names = _encode_labels(class_labels, class_names)
        return cls(len(records), catalog, tidsets, label_indices, names,
                   name=name)

    @classmethod
    def from_transactions(
        cls,
        transactions: Sequence[Iterable[object]],
        class_labels: Sequence[object],
        name: str = "dataset",
        class_names: Optional[Sequence[str]] = None,
    ) -> "Dataset":
        """Build a dataset from item-set transactions (FIMI style).

        Every distinct transaction element becomes an item of a
        synthetic single-valued attribute named after the element, so a
        market-basket file can be mined with the class-rule machinery.
        """
        if not transactions:
            raise DataError("no transactions supplied")
        catalog = ItemCatalog()
        tidsets: List[int] = []
        for r, transaction in enumerate(transactions):
            for element in transaction:
                item_id = catalog.add_pair(f"item:{element}", "1")
                if item_id == len(tidsets):
                    tidsets.append(0)
                tidsets[item_id] |= 1 << r
        label_indices, names = _encode_labels(class_labels, class_names)
        return cls(len(transactions), catalog, tidsets, label_indices, names,
                   name=name)

    # ------------------------------------------------------------------
    # core accessors
    # ------------------------------------------------------------------

    @property
    def n_classes(self) -> int:
        """Number of distinct class labels."""
        return len(self.class_names)

    @property
    def n_items(self) -> int:
        """Number of distinct items (attribute=value pairs)."""
        return len(self.catalog)

    @property
    def n_attributes(self) -> int:
        """Number of attributes (excluding the class attribute)."""
        return len(self.catalog.attributes)

    def class_tidset(self, class_index: int) -> int:
        """Bitset of records labelled with class ``class_index``."""
        return self._class_tidsets[class_index]

    def class_support(self, class_index: int) -> int:
        """``n_c``: the number of records labelled with the class."""
        return bs.popcount(self._class_tidsets[class_index])

    def class_summaries(self) -> List[ClassSummary]:
        """Per-class name/support/tidset summaries."""
        return [
            ClassSummary(i, self.class_names[i],
                         bs.popcount(t), t)
            for i, t in enumerate(self._class_tidsets)
        ]

    def item_support(self, item_id: int) -> int:
        """Support of a single item."""
        return bs.popcount(self.item_tidsets[item_id])

    def pattern_tidset(self, item_ids: Iterable[int]) -> int:
        """Tidset of a pattern: intersection of its items' tidsets."""
        tids = bs.universe(self.n_records)
        for item_id in item_ids:
            tids &= self.item_tidsets[item_id]
        return tids

    def pattern_support(self, item_ids: Iterable[int]) -> int:
        """Support (coverage) of a pattern."""
        return bs.popcount(self.pattern_tidset(item_ids))

    def rule_support(self, item_ids: Iterable[int], class_index: int) -> int:
        """Support of the rule ``pattern => class``."""
        tids = self.pattern_tidset(item_ids)
        return bs.popcount(tids & self._class_tidsets[class_index])

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------

    def with_class_labels(self, new_labels: Sequence[int],
                          name: Optional[str] = None) -> "Dataset":
        """Return a copy sharing tidsets but with different labels.

        Item tidsets are shared (they are immutable ints), so this is
        cheap; it is the primitive beneath permutation testing.
        """
        return Dataset(
            self.n_records,
            self.catalog,
            self.item_tidsets,
            new_labels,
            self.class_names,
            name=name or self.name,
        )

    def permuted(self, rng: random.Random,
                 name: Optional[str] = None) -> "Dataset":
        """Return a copy with class labels randomly shuffled."""
        labels = list(self.class_labels)
        rng.shuffle(labels)
        return self.with_class_labels(labels, name=name or
                                      f"{self.name}[permuted]")

    def permuted_class_tidsets(self, rng: random.Random) -> List[int]:
        """Shuffle labels and return only the per-class bitsets.

        The permutation engine needs nothing but these bitsets, so this
        avoids constructing a full Dataset per permutation.
        """
        labels = list(self.class_labels)
        rng.shuffle(labels)
        tidsets = [0] * self.n_classes
        for r, label in enumerate(labels):
            tidsets[label] |= 1 << r
        return tidsets

    def subset(self, record_ids: Sequence[int],
               name: Optional[str] = None) -> "Dataset":
        """Return the dataset restricted to ``record_ids`` (re-indexed).

        Used by the holdout approach to materialize the exploratory and
        evaluation halves. Items that vanish from the subset keep their
        catalog entry with an empty tidset, so item ids remain
        comparable across the two halves.
        """
        ordered = list(record_ids)
        seen = set()
        for r in ordered:
            if r < 0 or r >= self.n_records:
                raise DataError(f"record id {r} out of range")
            if r in seen:
                raise DataError(f"duplicate record id {r} in subset")
            seen.add(r)
        position = {r: i for i, r in enumerate(ordered)}
        new_tidsets = []
        for tids in self.item_tidsets:
            new_bits = 0
            for r in bs.iter_indices(tids):
                pos = position.get(r)
                if pos is not None:
                    new_bits |= 1 << pos
            new_tidsets.append(new_bits)
        new_labels = [self.class_labels[r] for r in ordered]
        return Dataset(len(ordered), self.catalog, new_tidsets, new_labels,
                       self.class_names,
                       name=name or f"{self.name}[subset]")

    def split_half(self, rng: Optional[random.Random] = None,
                   boundary: Optional[int] = None,
                   ) -> Tuple["Dataset", "Dataset"]:
        """Split into two halves for holdout evaluation.

        With ``boundary`` given, records ``[0, boundary)`` form the
        first half and the rest the second (the paper's structured
        "holdout" on catenated sub-datasets). With ``rng`` given,
        records are shuffled first (the paper's "random holdout").
        """
        if boundary is None:
            boundary = self.n_records // 2
        ids = list(range(self.n_records))
        if rng is not None:
            rng.shuffle(ids)
        first = ids[:boundary]
        second = ids[boundary:]
        if not first or not second:
            raise DataError("split would leave an empty half")
        return (self.subset(first, name=f"{self.name}[exploratory]"),
                self.subset(second, name=f"{self.name}[evaluation]"))

    # ------------------------------------------------------------------
    # conversions and dunder plumbing
    # ------------------------------------------------------------------

    def to_records(self) -> List[List[Optional[str]]]:
        """Materialize row-major records (None for missing cells)."""
        attributes = self.catalog.attributes
        column_of = {a: j for j, a in enumerate(attributes)}
        rows: List[List[Optional[str]]] = [
            [None] * len(attributes) for _ in range(self.n_records)
        ]
        for item_id, tids in enumerate(self.item_tidsets):
            item = self.catalog.item(item_id)
            j = column_of[item.attribute]
            for r in bs.iter_indices(tids):
                rows[r][j] = item.value
        return rows

    def __repr__(self) -> str:
        return (f"Dataset(name={self.name!r}, n_records={self.n_records}, "
                f"n_attributes={self.n_attributes}, n_items={self.n_items}, "
                f"n_classes={self.n_classes})")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _build_class_tidsets(self) -> List[int]:
        tidsets = [0] * self.n_classes
        for r, label in enumerate(self.class_labels):
            tidsets[label] |= 1 << r
        return tidsets


def _encode_labels(
    class_labels: Sequence[object],
    class_names: Optional[Sequence[str]],
) -> Tuple[List[int], List[str]]:
    """Map raw labels to dense indices, preserving first-seen order."""
    if class_names is not None:
        names = [str(c) for c in class_names]
        index_of: Dict[str, int] = {c: i for i, c in enumerate(names)}
        indices = []
        for label in class_labels:
            key = str(label)
            if key not in index_of:
                raise DataError(f"label {key!r} not in class_names")
            indices.append(index_of[key])
        return indices, names
    index_of = {}
    names = []
    indices = []
    for label in class_labels:
        key = str(label)
        if key not in index_of:
            index_of[key] = len(names)
            names.append(key)
        indices.append(index_of[key])
    return indices, names
