"""Shape-faithful stand-ins for the paper's four UCI datasets.

The paper's real-data experiments (Table 2, Figures 4, 5, 14, 15, 16
and Table 4) use adult, german, hypo and mushroom from the UCI
repository, discretized with MLC++. This environment has no network
access, so this module *simulates* each dataset: the record count,
attribute count and class count match Table 2 exactly, class priors
match the published datasets, and attribute-class dependencies are
planted with per-dataset strength profiles chosen to reproduce the
p-value regimes reported in Figure 15:

* ``adult`` and ``mushroom`` — strong dependencies plus redundant
  (near-copy) attributes, so the bulk of mined rules have extremely
  small p-values (paper: >80% below 1e-12).
* ``german`` and ``hypo`` — weak-to-moderate dependencies, so a large
  fraction of rules land in the "gray zone" between 1e-6 and 1e-2
  where the correction approaches genuinely disagree.

The substitution is recorded in DESIGN.md Section 3. Every generator is
deterministic given its seed, so experiments are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import DataError
from .dataset import Dataset

__all__ = [
    "UCISpec",
    "REAL_DATASETS",
    "load_real_dataset",
    "make_adult",
    "make_german",
    "make_hypo",
    "make_mushroom",
]


@dataclass(frozen=True)
class UCISpec:
    """Recipe for one simulated UCI dataset.

    ``signal_range`` bounds the per-attribute dependency strength: a
    strength of 0 makes the attribute independent of the class, 1 makes
    its preferred value deterministic given the class.
    ``dominance_range`` bounds how skewed each attribute's *base*
    distribution is — the dominant value's share. Skew is what gives a
    dataset high-support items (hypo's lab measurements are mostly
    "normal", which is why the paper can mine it at min_sup 2000 of
    3163). ``redundancy`` is the fraction of attributes generated as
    noisy copies of an earlier attribute (redundant attributes are what
    make closed patterns much smaller than all frequent patterns on
    mushroom).
    """

    name: str
    n_records: int
    n_attributes: int
    class_names: Tuple[str, str]
    class_prior: float
    cardinality_range: Tuple[int, int]
    signal_range: Tuple[float, float]
    informative_fraction: float
    dominance_range: Tuple[float, float]
    redundancy: float
    copy_noise: float
    default_seed: int
    minsup_sweep: Tuple[int, ...]
    paper_minsup: int


REAL_DATASETS: Dict[str, UCISpec] = {
    "adult": UCISpec(
        name="adult", n_records=32561, n_attributes=14,
        class_names=("<=50K", ">50K"), class_prior=0.7592,
        cardinality_range=(2, 8), signal_range=(0.15, 0.65),
        informative_fraction=0.85, dominance_range=(0.35, 0.75),
        redundancy=0.15, copy_noise=0.05,
        default_seed=421, minsup_sweep=(500, 1000, 1500, 2000, 2500, 3000),
        paper_minsup=1000,
    ),
    "german": UCISpec(
        name="german", n_records=1000, n_attributes=20,
        class_names=("good", "bad"), class_prior=0.70,
        cardinality_range=(2, 5), signal_range=(0.03, 0.25),
        informative_fraction=0.7, dominance_range=(0.3, 0.6),
        redundancy=0.10, copy_noise=0.15,
        default_seed=422, minsup_sweep=(20, 30, 40, 50, 60, 70, 80, 90),
        paper_minsup=60,
    ),
    "hypo": UCISpec(
        name="hypo", n_records=3163, n_attributes=25,
        class_names=("negative", "hypothyroid"), class_prior=0.9523,
        cardinality_range=(2, 4), signal_range=(0.02, 0.18),
        informative_fraction=0.5, dominance_range=(0.78, 0.96),
        redundancy=0.12, copy_noise=0.12,
        default_seed=423,
        minsup_sweep=(1400, 1500, 1600, 1700, 1800, 1900, 2000, 2100),
        paper_minsup=2000,
    ),
    "mushroom": UCISpec(
        name="mushroom", n_records=8124, n_attributes=22,
        class_names=("edible", "poisonous"), class_prior=0.5180,
        cardinality_range=(2, 9), signal_range=(0.25, 0.9),
        informative_fraction=0.8, dominance_range=(0.3, 0.7),
        redundancy=0.30, copy_noise=0.005,
        default_seed=424, minsup_sweep=(200, 400, 600, 800, 1000, 1200),
        paper_minsup=600,
    ),
}


def load_real_dataset(name: str, seed: Optional[int] = None,
                      n_records: Optional[int] = None) -> Dataset:
    """Build the simulated stand-in for one of the Table 2 datasets.

    ``n_records`` may shrink the dataset (useful for fast test runs);
    it can never exceed the Table 2 record count.
    """
    try:
        spec = REAL_DATASETS[name]
    except KeyError:
        raise DataError(
            f"unknown dataset {name!r}; available: "
            f"{sorted(REAL_DATASETS)}") from None
    return _synthesize(spec, seed=seed, n_records=n_records)


def make_adult(seed: Optional[int] = None,
               n_records: Optional[int] = None) -> Dataset:
    """Simulated UCI *adult* (32561 records, 14 attributes, 2 classes)."""
    return load_real_dataset("adult", seed=seed, n_records=n_records)


def make_german(seed: Optional[int] = None,
                n_records: Optional[int] = None) -> Dataset:
    """Simulated UCI *german* credit (1000 records, 20 attributes)."""
    return load_real_dataset("german", seed=seed, n_records=n_records)


def make_hypo(seed: Optional[int] = None,
              n_records: Optional[int] = None) -> Dataset:
    """Simulated *hypothyroid* (3163 records, 25 attributes)."""
    return load_real_dataset("hypo", seed=seed, n_records=n_records)


def make_mushroom(seed: Optional[int] = None,
                  n_records: Optional[int] = None) -> Dataset:
    """Simulated UCI *mushroom* (8124 records, 22 attributes)."""
    return load_real_dataset("mushroom", seed=seed, n_records=n_records)


# ----------------------------------------------------------------------
# generator internals
# ----------------------------------------------------------------------


def _synthesize(spec: UCISpec, seed: Optional[int],
                n_records: Optional[int]) -> Dataset:
    rng = random.Random(spec.default_seed if seed is None else seed)
    n = spec.n_records if n_records is None else n_records
    if n < 2 or n > spec.n_records:
        raise DataError(
            f"n_records must be in [2, {spec.n_records}] for {spec.name}")
    labels = _draw_labels(n, spec.class_prior, rng)
    columns: List[List[int]] = []
    cardinalities: List[int] = []
    for j in range(spec.n_attributes):
        copies_from = _pick_copy_source(j, spec, rng)
        if copies_from is not None:
            column = _noisy_copy(columns[copies_from],
                                 cardinalities[copies_from],
                                 spec.copy_noise, rng)
            cardinality = cardinalities[copies_from]
        else:
            cardinality = rng.randint(*spec.cardinality_range)
            strength = (rng.uniform(*spec.signal_range)
                        if rng.random() < spec.informative_fraction else 0.0)
            dominance = rng.uniform(*spec.dominance_range)
            column = _class_conditional_column(labels, cardinality,
                                               strength, dominance, rng)
        columns.append(column)
        cardinalities.append(cardinality)
    records = [
        [f"a{j}v{columns[j][r]}" for j in range(spec.n_attributes)]
        for r in range(n)
    ]
    attribute_names = [f"{spec.name}.A{j}"
                       for j in range(spec.n_attributes)]
    label_names = [spec.class_names[c] for c in labels]
    return Dataset.from_records(records, label_names, attribute_names,
                                name=spec.name,
                                class_names=list(spec.class_names))


def _draw_labels(n: int, prior: float, rng: random.Random) -> List[int]:
    """Exact-count labels: ``round(prior * n)`` records of class 0."""
    n_majority = round(prior * n)
    labels = [0] * n_majority + [1] * (n - n_majority)
    rng.shuffle(labels)
    return labels


def _pick_copy_source(j: int, spec: UCISpec,
                      rng: random.Random) -> Optional[int]:
    if j == 0 or rng.random() >= spec.redundancy:
        return None
    return rng.randrange(j)


def _noisy_copy(source: Sequence[int], cardinality: int, noise: float,
                rng: random.Random) -> List[int]:
    """Copy a column, re-drawing each cell uniformly with prob ``noise``."""
    column = []
    for v in source:
        if rng.random() < noise:
            column.append(rng.randrange(cardinality))
        else:
            column.append(v)
    return column


def _class_conditional_column(labels: Sequence[int], cardinality: int,
                              strength: float, dominance: float,
                              rng: random.Random) -> List[int]:
    """Draw a column from a skewed, class-tilted categorical model.

    The *base* distribution gives value 0 (the dominant value, e.g.
    "measurement normal") probability ``dominance`` and splits the rest
    evenly. With probability ``strength`` a record instead takes its
    class's preferred value: the dominant value for the majority class
    and a fixed minority-signature value otherwise. ``strength = 0``
    makes the column class-independent but still skewed.
    """
    dominant = 0
    minority_signature = (rng.randrange(1, cardinality)
                          if cardinality > 1 else 0)
    preferred = (dominant, minority_signature)
    others = [v for v in range(cardinality) if v != dominant]
    column = []
    for label in labels:
        if strength > 0.0 and rng.random() < strength:
            column.append(preferred[label])
        elif cardinality == 1 or rng.random() < dominance:
            column.append(dominant)
        else:
            column.append(rng.choice(others))
    return column
