"""Synthetic dataset generator with embedded (planted) rules.

Implements the Section 5.1 generator: datasets are matrices whose rows
are records and whose columns are categorical attributes. A number of
class association rules are embedded first; cells not covered by any
embedded rule are filled uniformly at random, and class labels are
balanced across classes ("the records are evenly distributed in
different classes"). The full Table 1 parameter set is supported.

Two constructions are provided:

* :func:`generate` — a single dataset with ``Nr`` embedded rules.
* :func:`generate_paired` — the paper's holdout-fairness construction:
  two sub-datasets of ``N/2`` records each receive the *same* rules
  with half the coverage, then are catenated, so splitting at the
  midpoint gives an exploratory and an evaluation half that both
  contain every embedded rule.

The generator also *repairs* accidental coverage: after random filling,
records outside an embedded rule's chosen set that happen to contain the
full pattern get one of their cells flipped, so the realized coverage of
each embedded rule stays inside ``[min_s, max_s]`` as Table 1 promises.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import DataError
from ..tidvector import TidVector
from .dataset import Dataset

__all__ = [
    "GeneratorConfig",
    "EmbeddedRule",
    "SyntheticData",
    "generate",
    "generate_paired",
]


@dataclass(frozen=True)
class GeneratorConfig:
    """Table 1 parameters of the synthetic data generator.

    Field names follow the paper: ``n_records`` is N, ``n_classes`` is
    #C, ``n_attributes`` is A, ``min_values``/``max_values`` are
    min_v/max_v, ``n_rules`` is Nr, ``min_length``/``max_length`` are
    min_l/max_l, ``min_coverage``/``max_coverage`` are min_s/max_s and
    ``min_confidence``/``max_confidence`` are min_c/max_c.
    """

    n_records: int = 2000
    n_classes: int = 2
    n_attributes: int = 40
    min_values: int = 2
    max_values: int = 8
    n_rules: int = 0
    min_length: int = 2
    max_length: int = 16
    min_coverage: int = 400
    max_coverage: int = 600
    min_confidence: float = 0.6
    max_confidence: float = 0.8

    def validate(self) -> None:
        """Raise :class:`DataError` on out-of-range parameter values."""
        if self.n_records < 1:
            raise DataError("n_records must be positive")
        if self.n_classes < 2:
            raise DataError("n_classes must be at least 2")
        if self.n_attributes < 1:
            raise DataError("n_attributes must be positive")
        if not 2 <= self.min_values <= self.max_values:
            raise DataError("need 2 <= min_values <= max_values")
        if self.n_rules < 0:
            raise DataError("n_rules must be non-negative")
        if self.n_rules:
            if not 1 <= self.min_length <= self.max_length:
                raise DataError("need 1 <= min_length <= max_length")
            if self.min_length > self.n_attributes:
                raise DataError("min_length exceeds n_attributes")
            if not 1 <= self.min_coverage <= self.max_coverage:
                raise DataError("need 1 <= min_coverage <= max_coverage")
            if self.max_coverage > self.n_records:
                raise DataError("max_coverage exceeds n_records")
            if not 0.0 < self.min_confidence <= self.max_confidence <= 1.0:
                raise DataError(
                    "need 0 < min_confidence <= max_confidence <= 1")


@dataclass
class EmbeddedRule:
    """Ground truth for one planted rule ``X_t => c_t``.

    ``record_ids`` are the records deliberately covered at embedding
    time; ``item_ids`` and ``tidset`` describe the rule in the *final*
    dataset (after random filling and repair), which is what the
    Section 5.2 false-positive analysis consumes.
    """

    pairs: Tuple[Tuple[str, str], ...]
    class_index: int
    class_name: str
    target_coverage: int
    target_confidence: float
    record_ids: List[int] = field(default_factory=list)
    item_ids: frozenset = frozenset()
    #: Packed record set in the final dataset (``0`` until resolved;
    #: bigint interop accepted, both expose ``bit_count``).
    tidset: object = 0

    @property
    def length(self) -> int:
        """Number of items on the left-hand side."""
        return len(self.pairs)

    @property
    def coverage(self) -> int:
        """Realized coverage ``supp(X_t)`` in the final dataset."""
        return self.tidset.bit_count()

    def describe(self) -> str:
        """Human-readable ``{A=v, ...} => class`` rendering."""
        lhs = ", ".join(f"{a}={v}" for a, v in self.pairs)
        return f"{{{lhs}}} => {self.class_name}"


@dataclass
class SyntheticData:
    """A generated dataset together with its planted ground truth."""

    dataset: Dataset
    embedded_rules: List[EmbeddedRule]
    config: GeneratorConfig
    half_boundary: Optional[int] = None


@dataclass(frozen=True)
class _RuleSpec:
    """Internal description of a rule before it is placed in a matrix."""

    attribute_indices: Tuple[int, ...]
    values: Tuple[int, ...]
    class_index: int
    confidence: float


def generate(config: GeneratorConfig,
             seed: Optional[int] = None,
             rng: Optional[random.Random] = None,
             name: str = "synthetic") -> SyntheticData:
    """Generate one dataset with ``config.n_rules`` embedded rules."""
    config.validate()
    rng = _resolve_rng(seed, rng)
    cardinalities = _draw_cardinalities(config, rng)
    specs = [_draw_rule_spec(config, cardinalities, rng)
             for _ in range(config.n_rules)]
    coverages = [rng.randint(config.min_coverage, config.max_coverage)
                 for _ in specs]
    matrix, labels, placements = _build_matrix(
        config.n_records, config, cardinalities, specs, coverages, rng)
    return _finalize(matrix, labels, cardinalities, specs, placements,
                     config, name, half_boundary=None)


def generate_paired(config: GeneratorConfig,
                    seed: Optional[int] = None,
                    rng: Optional[random.Random] = None,
                    name: str = "synthetic-paired") -> SyntheticData:
    """Generate the catenated two-half construction of Section 5.1.

    Both halves of ``N/2`` records receive the same rules with coverage
    drawn from ``[min_s/2, max_s/2]``, so the full dataset carries
    coverages in ``[min_s, max_s]`` and a midpoint split is fair to the
    holdout approach.
    """
    config.validate()
    if config.n_records < 2:
        raise DataError("paired generation needs at least 2 records")
    rng = _resolve_rng(seed, rng)
    cardinalities = _draw_cardinalities(config, rng)
    specs = [_draw_rule_spec(config, cardinalities, rng)
             for _ in range(config.n_rules)]
    half_n = config.n_records // 2
    halves = []
    for _ in range(2):
        coverages = [
            rng.randint(max(1, config.min_coverage // 2),
                        max(1, config.max_coverage // 2))
            for _ in specs
        ]
        halves.append(_build_matrix(half_n, config, cardinalities, specs,
                                    coverages, rng))
    (matrix_a, labels_a, placements_a) = halves[0]
    (matrix_b, labels_b, placements_b) = halves[1]
    matrix = matrix_a + matrix_b
    labels = labels_a + labels_b
    placements = [
        list(pa) + [r + half_n for r in pb]
        for pa, pb in zip(placements_a, placements_b)
    ]
    return _finalize(matrix, labels, cardinalities, specs, placements,
                     config, name, half_boundary=half_n)


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------


def _resolve_rng(seed: Optional[int],
                 rng: Optional[random.Random]) -> random.Random:
    if rng is not None and seed is not None:
        raise DataError("give seed or rng, not both")
    if rng is not None:
        return rng
    return random.Random(seed)


def _draw_cardinalities(config: GeneratorConfig,
                        rng: random.Random) -> List[int]:
    return [rng.randint(config.min_values, config.max_values)
            for _ in range(config.n_attributes)]


def _draw_rule_spec(config: GeneratorConfig, cardinalities: Sequence[int],
                    rng: random.Random) -> _RuleSpec:
    length = rng.randint(config.min_length,
                         min(config.max_length, config.n_attributes))
    attribute_indices = tuple(sorted(
        rng.sample(range(config.n_attributes), length)))
    values = tuple(rng.randrange(cardinalities[a])
                   for a in attribute_indices)
    class_index = rng.randrange(config.n_classes)
    confidence = rng.uniform(config.min_confidence, config.max_confidence)
    return _RuleSpec(attribute_indices, values, class_index, confidence)


def _build_matrix(
    n_records: int,
    config: GeneratorConfig,
    cardinalities: Sequence[int],
    specs: Sequence[_RuleSpec],
    coverages: Sequence[int],
    rng: random.Random,
) -> Tuple[List[List[int]], List[int], List[List[int]]]:
    """Embed rules into a fresh matrix; fill, balance, and repair.

    Returns ``(matrix, labels, placements)`` where ``placements[k]`` is
    the list of record ids deliberately covered by ``specs[k]``.
    """
    n_attributes = config.n_attributes
    matrix: List[List[Optional[int]]] = [
        [None] * n_attributes for _ in range(n_records)
    ]
    owner: Dict[Tuple[int, int], int] = {}
    labels: List[Optional[int]] = [None] * n_records
    free_records = list(range(n_records))
    rng.shuffle(free_records)
    placements: List[List[int]] = []
    for k, (spec, coverage) in enumerate(zip(specs, coverages)):
        coverage = min(coverage, n_records)
        if len(free_records) >= coverage:
            chosen = [free_records.pop() for _ in range(coverage)]
        else:
            chosen = list(free_records)
            free_records.clear()
            remaining = coverage - len(chosen)
            pool = [r for r in range(n_records) if r not in set(chosen)]
            chosen.extend(rng.sample(pool, remaining))
        for r in chosen:
            for a, v in zip(spec.attribute_indices, spec.values):
                matrix[r][a] = v
                owner.setdefault((r, a), k)
        n_positive = round(spec.confidence * len(chosen))
        shuffled = list(chosen)
        rng.shuffle(shuffled)
        other_classes = [c for c in range(config.n_classes)
                         if c != spec.class_index]
        for i, r in enumerate(shuffled):
            if i < n_positive:
                labels[r] = spec.class_index
            else:
                labels[r] = rng.choice(other_classes)
        placements.append(sorted(chosen))
    _balance_labels(labels, config.n_classes, rng)
    _random_fill(matrix, cardinalities, rng)
    _repair_accidental_coverage(matrix, specs, placements, owner,
                                cardinalities, rng)
    return [list(row) for row in matrix], list(labels), placements


def _balance_labels(labels: List[Optional[int]], n_classes: int,
                    rng: random.Random) -> None:
    """Assign labels to untouched records so class totals are even."""
    n = len(labels)
    counts = [0] * n_classes
    unassigned = []
    for r, label in enumerate(labels):
        if label is None:
            unassigned.append(r)
        else:
            counts[label] += 1
    target = n // n_classes
    fill: List[int] = []
    for c in range(n_classes):
        fill.extend([c] * max(0, target - counts[c]))
    while len(fill) < len(unassigned):
        fill.append(rng.randrange(n_classes))
    rng.shuffle(fill)
    for r, c in zip(unassigned, fill):
        labels[r] = c


def _random_fill(matrix: List[List[Optional[int]]],
                 cardinalities: Sequence[int], rng: random.Random) -> None:
    for row in matrix:
        for a, value in enumerate(row):
            if value is None:
                row[a] = rng.randrange(cardinalities[a])


def _repair_accidental_coverage(
    matrix: List[List[int]],
    specs: Sequence[_RuleSpec],
    placements: Sequence[Sequence[int]],
    owner: Dict[Tuple[int, int], int],
    cardinalities: Sequence[int],
    rng: random.Random,
) -> None:
    """Break the pattern in records that match a rule by accident.

    A record outside ``placements[k]`` containing the full pattern of
    ``specs[k]`` gets one unowned cell of the pattern flipped to a
    different value. Cells owned by other rules are never touched, so
    deliberate embeddings survive; if every cell is owned the accident
    is tolerated.
    """
    for k, spec in enumerate(specs):
        placed = set(placements[k])
        for r, row in enumerate(matrix):
            if r in placed:
                continue
            if all(row[a] == v
                   for a, v in zip(spec.attribute_indices, spec.values)):
                candidates = [a for a in spec.attribute_indices
                              if (r, a) not in owner]
                if not candidates:
                    continue
                a = rng.choice(candidates)
                alternatives = [v for v in range(cardinalities[a])
                                if v != row[a]]
                row[a] = rng.choice(alternatives)


def _finalize(
    matrix: List[List[int]],
    labels: List[int],
    cardinalities: Sequence[int],
    specs: Sequence[_RuleSpec],
    placements: Sequence[List[int]],
    config: GeneratorConfig,
    name: str,
    half_boundary: Optional[int],
) -> SyntheticData:
    attribute_names = [f"A{j}" for j in range(config.n_attributes)]
    class_names = [f"c{j}" for j in range(config.n_classes)]
    records = [[f"v{v}" for v in row] for row in matrix]
    label_names = [class_names[c] for c in labels]
    dataset = Dataset.from_records(records, label_names, attribute_names,
                                   name=name, class_names=class_names)
    embedded: List[EmbeddedRule] = []
    for spec, placed in zip(specs, placements):
        pairs = tuple(
            (attribute_names[a], f"v{v}")
            for a, v in zip(spec.attribute_indices, spec.values)
        )
        item_ids = frozenset(dataset.catalog.ids_for_pairs(pairs))
        tidset = dataset.pattern_tidset(item_ids)
        embedded.append(EmbeddedRule(
            pairs=pairs,
            class_index=spec.class_index,
            class_name=class_names[spec.class_index],
            target_coverage=len(placed),
            target_confidence=spec.confidence,
            record_ids=list(placed),
            item_ids=item_ids,
            tidset=tidset,
        ))
    return SyntheticData(dataset, embedded, config,
                         half_boundary=half_boundary)
