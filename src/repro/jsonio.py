"""Shared JSON helpers for the serializable result surfaces.

Three layers persist results as JSON — the pattern/rule round-trip
(:meth:`repro.mining.patterns.PatternSet.to_json`,
:meth:`repro.corrections.base.CorrectionResult.to_json`) and the
service's artifact store (:mod:`repro.service.store`) — and they all
need the same two guarantees:

* **losslessness** — Python floats survive a dump/load cycle exactly
  (``json`` renders shortest-round-trip ``repr``), so byte-identity
  against the CSV export path is achievable; numpy scalars are
  converted to their exact Python equivalents before dumping.
* **canonical bytes** — :func:`canonical_dumps` fixes key order and
  separators, so equal payloads produce equal stored text and cache
  keys hash deterministically.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = ["canonical_dumps", "json_safe"]


def json_safe(value: Any, strict: bool = False) -> Any:
    """Recursively convert ``value`` to plain JSON-dumpable types.

    Numpy scalars become exact Python ints/floats/bools, tuples and
    sets become (sorted, for sets) lists, mapping keys are stringified.
    Unconvertible leaves are dropped from mappings and replaced by
    their ``repr`` elsewhere — unless ``strict`` is true, in which
    case they raise :class:`TypeError`.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if hasattr(value, "item") and hasattr(value, "dtype"):
        return json_safe(value.item(), strict=strict)
    if isinstance(value, dict):
        out = {}
        for key, entry in value.items():
            try:
                out[str(key)] = json_safe(entry, strict=True)
            except TypeError:
                if strict:
                    raise
                continue  # drop entries that cannot round-trip
        return out
    if isinstance(value, (list, tuple)):
        return [json_safe(entry, strict=strict) for entry in value]
    if isinstance(value, (set, frozenset)):
        return sorted(json_safe(entry, strict=strict) for entry in value)
    if strict:
        raise TypeError(f"not JSON-serializable: {type(value).__name__}")
    return repr(value)


def canonical_dumps(payload: Any) -> str:
    """Deterministic JSON text: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)
