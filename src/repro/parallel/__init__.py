"""Shared parallel execution subsystem.

One :class:`Executor` interface (``map_shards``) over three pluggable
backends (``serial``, ``threads``, ``processes``), plus the
deterministic shard-seeding helpers that keep results bit-identical at
any worker count. Used by the permutation engine
(:mod:`repro.corrections.permutation`), the pipeline
(:mod:`repro.core.pipeline`) and the experiment runner
(:mod:`repro.evaluation.runner`); see ``docs/parallel.md``.
"""

from .executor import (
    BACKENDS,
    Executor,
    RetryExhausted,
    WorkerError,
    get_executor,
    validate_backend,
    validate_n_jobs,
)
from .resilience import (
    DEGRADATION_ORDER,
    CircuitBreaker,
    DeadlineExceeded,
    RetryPolicy,
    TransientError,
    global_breaker,
    is_transient,
)
from .seeding import (
    root_sequence,
    sequence_from_legacy_rng,
    shard_slices,
    slice_sequences,
    spawn_sequences,
)

__all__ = [
    "BACKENDS",
    "DEGRADATION_ORDER",
    "CircuitBreaker",
    "DeadlineExceeded",
    "Executor",
    "RetryExhausted",
    "RetryPolicy",
    "TransientError",
    "WorkerError",
    "get_executor",
    "global_breaker",
    "is_transient",
    "root_sequence",
    "sequence_from_legacy_rng",
    "shard_slices",
    "slice_sequences",
    "spawn_sequences",
    "validate_backend",
    "validate_n_jobs",
]
