"""Deterministic seed derivation for sharded work.

The invariant every parallel caller in this library relies on: **the
random stream of work unit ``t`` depends only on the root seed and on
``t``** — never on which shard or worker executes it, and never on how
many shards exist. That is what makes results bit-identical for 1, 4
or 16 workers.

The mechanism is numpy's :class:`~numpy.random.SeedSequence`:
``SeedSequence(seed).spawn(n)`` derives ``n`` statistically
independent child sequences by spawn index. :func:`spawn_sequences`
spawns one child per *work unit* (e.g. per permutation), and
:func:`shard_slices` partitions the unit index range into contiguous
per-shard slices; a shard receives the child sequences of exactly the
units it executes.

Legacy ``random.Random`` seeding funnels through
:func:`sequence_from_legacy_rng` so code that predates the numpy
migration keeps a deterministic (though re-pinned) stream.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError

__all__ = ["root_sequence", "sequence_from_legacy_rng", "shard_slices",
           "slice_sequences", "spawn_sequences"]


def root_sequence(seed: Optional[int] = None) -> np.random.SeedSequence:
    """The root :class:`~numpy.random.SeedSequence` for ``seed``.

    ``None`` draws fresh OS entropy (a deliberately non-deterministic
    run, matching ``random.Random(None)`` semantics).
    """
    return np.random.SeedSequence(seed)


def sequence_from_legacy_rng(rng: random.Random,
                             ) -> np.random.SeedSequence:
    """Derive a root sequence from a legacy ``random.Random``.

    Compatibility shim for callers that still hand over a
    ``random.Random``: the generator's next 128 bits become the
    sequence entropy, so a seeded legacy rng still yields a fully
    deterministic (new-scheme) stream.
    """
    return np.random.SeedSequence(rng.getrandbits(128))


def spawn_sequences(root: np.random.SeedSequence,
                    n: int) -> List[np.random.SeedSequence]:
    """``n`` independent child sequences, one per work unit."""
    if n < 0:
        raise ReproError(f"cannot spawn {n} seed sequences")
    return root.spawn(n)


def shard_slices(n_items: int, n_shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` slices covering ``range(n_items)``.

    At most ``n_shards`` slices, sizes differing by at most one, empty
    slices dropped. The partition only affects *scheduling*; because
    seeds attach to unit indices, any partition yields identical
    results.
    """
    if n_shards < 1:
        raise ReproError(f"n_shards must be >= 1, got {n_shards}")
    n_shards = min(n_shards, n_items)
    if n_items == 0:
        return []
    base, extra = divmod(n_items, n_shards)
    slices = []
    start = 0
    for index in range(n_shards):
        stop = start + base + (1 if index < extra else 0)
        slices.append((start, stop))
        start = stop
    return slices


def slice_sequences(children: Sequence[np.random.SeedSequence],
                    slices: Sequence[Tuple[int, int]],
                    ) -> List[List[np.random.SeedSequence]]:
    """The per-shard child sequences for :func:`shard_slices` output."""
    return [list(children[start:stop]) for start, stop in slices]
