"""Retry policies, failure classification and the backend breaker.

The executor's fault model (see ``docs/resilience.md``): a work unit
can fail **transiently** (a SIGKILLed process worker, a broken pool, a
timed-out deadline, a locked SQLite database — failures where the same
computation retried is expected to succeed) or **fatally** (a
deterministic exception from the shard function itself, which would
recur on every retry). :func:`is_transient` draws that line;
:class:`RetryPolicy` bounds how often a transient failure is retried
and spaces the attempts on a **deterministic** capped-exponential
schedule — no wall-clock coupling, no jitter — so chaos tests
reproduce exactly; :class:`CircuitBreaker` degrades the *backend*
(processes → threads → serial) once transient failures repeat, which
is what guarantees forward progress even when every process worker is
being killed.

Determinism under retry is structural, not statistical: a retried
unit re-runs the **same shard object**, which carries the same
:class:`numpy.random.SeedSequence` children
(:mod:`repro.parallel.seeding` attaches seeds to unit indices, never
to workers or attempts), so a run that recovered from ten kills is
byte-identical to a fault-free run.

One process-wide breaker (:func:`global_breaker`) is shared by every
executor by default: repeated kills discovered by the permutation
engine also protect the next pipeline run, and the service's
``/health`` endpoint reports its state.
"""

from __future__ import annotations

import sqlite3
import threading
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import DeadlineExceeded, ReproError, TransientError

__all__ = [
    "DEGRADATION_ORDER",
    "CircuitBreaker",
    "DeadlineExceeded",
    "RetryPolicy",
    "TransientError",
    "global_breaker",
    "is_transient",
]

#: Backends ordered from most to least demanding; the breaker walks
#: this chain left to right as transient failures accumulate.
DEGRADATION_ORDER: Tuple[str, ...] = ("processes", "threads", "serial")

#: SQLite error-message fragments that indicate lock contention (the
#: retryable subset of ``sqlite3.OperationalError``).
_SQLITE_BUSY_MARKERS = ("locked", "busy")


def is_transient(exc: BaseException) -> bool:
    """Whether ``exc`` names a failure worth retrying.

    Transient: the explicit :class:`~repro.errors.TransientError`
    marker (which fault injection and deadline enforcement raise),
    a broken executor/pool (a worker process died — the SIGKILL
    signature), timeouts, connection/interrupt-class OS errors, and
    SQLite lock contention. Everything else — in particular any
    deterministic exception raised *by the shard function* — is
    fatal: retrying a computation that failed on its own inputs
    cannot change the outcome.
    """
    if isinstance(exc, TransientError):
        return True
    if isinstance(exc, BrokenExecutor):
        return True
    if isinstance(exc, (TimeoutError, ConnectionError,
                        InterruptedError, BrokenPipeError)):
        return True
    if isinstance(exc, sqlite3.OperationalError):
        message = str(exc).lower()
        return any(marker in message
                   for marker in _SQLITE_BUSY_MARKERS)
    return False


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries on a deterministic backoff schedule.

    ``max_attempts`` counts *total* tries of one work unit (1 = never
    retry). The delay before attempt ``k+1`` is
    ``min(max_delay, base_delay * multiplier**(k-1))`` — a pure
    function of the attempt index, so two runs of the same chaos
    scenario sleep the same schedule.
    """

    max_attempts: int = 4
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ReproError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ReproError(
                f"retry multiplier must be >= 1, got {self.multiplier}")

    def delay(self, failed_attempts: int) -> float:
        """Seconds to wait after ``failed_attempts`` failures."""
        if failed_attempts < 1:
            return 0.0
        raw = self.base_delay * self.multiplier ** (failed_attempts - 1)
        return min(self.max_delay, raw)

    def schedule(self) -> Tuple[float, ...]:
        """The full backoff schedule (one delay per retry)."""
        return tuple(self.delay(attempt)
                     for attempt in range(1, self.max_attempts))


class CircuitBreaker:
    """Degrade the execution backend under repeated transient failure.

    Counts consecutive transient failures; each time the count reaches
    ``threshold`` the degradation level rises one step and the count
    resets. The level shifts any requested backend down
    :data:`DEGRADATION_ORDER` (``processes`` degrades to ``threads``
    then ``serial``; ``serial`` has nowhere left to go). A fully
    fault-free ``map_shards`` call resets the consecutive count but
    never the level — recovery is explicit (:meth:`reset`), because a
    backend that killed workers three times is not trusted again just
    for surviving one call.

    Thread-safe; picklable by snapshot (the lock is dropped and
    re-created, so a breaker riding along in a worker payload does not
    break the processes backend — the worker gets an independent copy).
    """

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ReproError(
                f"breaker threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self._lock = threading.Lock()
        self._consecutive = 0
        self._total = 0
        self._level = 0
        self._degradations: List[Dict[str, object]] = []

    # -- pickling (drop the lock, keep the counters) -------------------

    def __getstate__(self) -> Dict[str, object]:
        with self._lock:
            return {"threshold": self.threshold,
                    "consecutive": self._consecutive,
                    "total": self._total,
                    "level": self._level,
                    "degradations": list(self._degradations)}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.threshold = int(state["threshold"])  # type: ignore[arg-type]
        self._lock = threading.Lock()
        self._consecutive = int(state["consecutive"])  # type: ignore[arg-type]
        self._total = int(state["total"])  # type: ignore[arg-type]
        self._level = int(state["level"])  # type: ignore[arg-type]
        self._degradations = list(state["degradations"])  # type: ignore[arg-type]

    # -- recording -----------------------------------------------------

    def record_transient(self, backend: str,
                         error: str = "") -> Optional[str]:
        """Count one transient failure on ``backend``.

        Returns the new *active* backend for ``backend`` when this
        failure tripped a degradation, else ``None``.
        """
        with self._lock:
            self._total += 1
            self._consecutive += 1
            if (self._consecutive < self.threshold
                    or self._level >= len(DEGRADATION_ORDER) - 1):
                return None
            self._consecutive = 0
            self._level += 1
            degraded = self._active_locked(backend)
            self._degradations.append({
                "requested": backend,
                "active": degraded,
                "level": self._level,
                "after_failures": self.threshold,
                "error": error,
            })
            return degraded

    def record_success(self) -> None:
        """A fault-free call: forgive the consecutive-failure streak."""
        with self._lock:
            self._consecutive = 0

    def reset(self) -> None:
        """Re-arm completely (clears the degradation level too)."""
        with self._lock:
            self._consecutive = 0
            self._total = 0
            self._level = 0
            self._degradations = []

    # -- queries -------------------------------------------------------

    def _active_locked(self, requested: str) -> str:
        # The level is an index into DEGRADATION_ORDER acting as a
        # ceiling on ambition: at level 1 ``processes`` is banned (it
        # degrades to ``threads``) but a request for ``threads`` or
        # ``serial`` is already at or below the ceiling and passes
        # through unchanged.
        if self._level == 0 or requested not in DEGRADATION_ORDER:
            return requested
        position = DEGRADATION_ORDER.index(requested)
        return DEGRADATION_ORDER[max(position, self._level)]

    def active_backend(self, requested: str) -> str:
        """The backend actually used when ``requested`` is asked for."""
        with self._lock:
            return self._active_locked(requested)

    @property
    def level(self) -> int:
        with self._lock:
            return self._level

    def state(self) -> Dict[str, object]:
        """JSON-ready snapshot (the ``/health`` breaker component)."""
        with self._lock:
            return {
                "threshold": self.threshold,
                "level": self._level,
                "consecutive_transient": self._consecutive,
                "total_transient": self._total,
                "active": {backend: self._active_locked(backend)
                           for backend in DEGRADATION_ORDER},
                "degradations": [dict(entry)
                                 for entry in self._degradations],
            }


# The process-wide default breaker every Executor shares unless handed
# its own instance. Module-level and deliberately shared: degradation
# discovered anywhere protects everything that runs afterwards.
_GLOBAL_BREAKER = CircuitBreaker()


def global_breaker() -> CircuitBreaker:
    """The shared process-wide :class:`CircuitBreaker`."""
    return _GLOBAL_BREAKER
