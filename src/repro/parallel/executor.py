"""Pluggable execution backends behind one ``map_shards`` interface.

Three backends, one contract:

* ``"serial"``    — plain in-process loop; the reference semantics
  every other backend must reproduce bit-for-bit.
* ``"threads"``   — :class:`concurrent.futures.ThreadPoolExecutor`.
  Python-level work is GIL-bound, but the permutation hot loop spends
  most of its time inside numpy (which releases the GIL around array
  kernels), so threads give real speedups without any pickling cost.
* ``"processes"`` — :class:`concurrent.futures.ProcessPoolExecutor`.
  True multi-core parallelism; shard functions and their payloads must
  be picklable (module-level functions, plain-data arguments).

Determinism is the executor's design constraint, not an afterthought:
``map_shards`` always returns results **in shard order**, regardless
of completion order, and never re-partitions the work it is handed —
the *caller* decides the shard structure (and derives per-shard seeds
via :mod:`repro.parallel.seeding`), so the same shards produce the
same results on any backend at any worker count.

Worker failures propagate as the **original exception type**. For the
in-process backends the original traceback survives unchanged; for the
``processes`` backend (where tracebacks cannot cross the pickle
boundary) the re-raised exception is chained to a :class:`WorkerError`
whose message carries the worker's formatted traceback, so the
failing frame is never lost.
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Sequence, TypeVar

from ..errors import ReproError

__all__ = ["BACKENDS", "Executor", "WorkerError", "get_executor",
           "validate_backend"]

BACKENDS = ("serial", "threads", "processes")

S = TypeVar("S")
R = TypeVar("R")


class WorkerError(ReproError):
    """A shard raised in a worker process.

    Carries the worker-side formatted traceback; ``map_shards``
    re-raises the original exception *from* this error, so both the
    original type and the remote frames stay visible::

        ValueError: negative support
        ...
        The above exception was the direct cause of ...
        WorkerError: shard 3 raised in worker:
        Traceback (most recent call last):
          File "...", line 42, in _score_shard
        ...
    """


def validate_backend(backend: str) -> str:
    """Return ``backend`` or raise listing the valid names."""
    if backend not in BACKENDS:
        raise ReproError(
            f"unknown parallel backend {backend!r}; "
            f"pick from {', '.join(BACKENDS)}")
    return backend


def validate_n_jobs(n_jobs: int) -> int:
    """Return ``n_jobs`` (``-1`` → CPU count) or raise."""
    if n_jobs == -1:
        return multiprocessing.cpu_count()
    if not isinstance(n_jobs, int) or n_jobs < 1:
        raise ReproError(
            f"n_jobs must be a positive integer or -1 (all cores), "
            f"got {n_jobs!r}")
    return n_jobs


class Executor:
    """Run shard functions through the configured backend.

    Parameters
    ----------
    backend:
        One of :data:`BACKENDS`.
    n_jobs:
        Worker count; ``-1`` means one per CPU core. ``n_jobs=1``
        always degenerates to the serial loop, whatever the backend.
    """

    def __init__(self, backend: str = "serial", n_jobs: int = 1) -> None:
        self.backend = validate_backend(backend)
        self.n_jobs = validate_n_jobs(n_jobs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Executor(backend={self.backend!r}, n_jobs={self.n_jobs})"

    # ------------------------------------------------------------------

    def map_shards(self, fn: Callable[[S], R],
                   shards: Iterable[S]) -> List[R]:
        """``[fn(shard) for shard in shards]``, possibly in parallel.

        Results come back in shard order on every backend. The shard
        structure is the caller's: this method never splits or merges
        shards, which is what makes results independent of the worker
        count.
        """
        items: Sequence[S] = list(shards)
        if not items:
            return []
        workers = min(self.n_jobs, len(items))
        if self.backend == "serial" or workers == 1:
            return [fn(shard) for shard in items]
        if self.backend == "threads":
            with ThreadPoolExecutor(max_workers=workers) as pool:
                # Executor.map preserves input order and re-raises the
                # first failure with its original traceback.
                return list(pool.map(fn, items))
        return self._map_processes(fn, items, workers)

    # ------------------------------------------------------------------

    def _map_processes(self, fn: Callable[[S], R], items: Sequence[S],
                       workers: int) -> List[R]:
        # fork keeps the parent's modules/sys.path visible without
        # re-importing, and makes already-registered plugin
        # corrections available in workers; fall back to the platform
        # default where fork is unavailable (Windows, macOS spawn).
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context()
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=ctx) as pool:
            futures = [pool.submit(_guarded_call, fn, index, shard)
                       for index, shard in enumerate(items)]
            out: List[R] = []
            for index, future in enumerate(futures):
                ok, value, formatted = future.result()
                if ok:
                    out.append(value)
                    continue
                raise value from WorkerError(
                    f"shard {index} raised in worker:\n{formatted}")
            return out


def _guarded_call(fn, index, shard):
    """Run one shard in a worker, capturing the traceback on failure.

    Exception objects survive pickling back to the parent; traceback
    objects do not, so the formatted text rides along. Unpicklable
    exceptions are downgraded to a :class:`WorkerError` carrying their
    repr (the traceback text still shows the original type).
    """
    try:
        return True, fn(shard), None
    except BaseException as exc:
        formatted = traceback.format_exc()
        try:
            pickle.loads(pickle.dumps(exc))
        except Exception:
            exc = WorkerError(
                f"unpicklable worker exception {exc!r} on shard {index}")
        return False, exc, formatted


def get_executor(backend: str = "serial", n_jobs: int = 1) -> Executor:
    """Construct a validated :class:`Executor`."""
    return Executor(backend=backend, n_jobs=n_jobs)
