"""Pluggable execution backends behind one ``map_shards`` interface.

Three backends, one contract:

* ``"serial"``    — plain in-process loop; the reference semantics
  every other backend must reproduce bit-for-bit.
* ``"threads"``   — :class:`concurrent.futures.ThreadPoolExecutor`.
  Python-level work is GIL-bound, but the permutation hot loop spends
  most of its time inside numpy (which releases the GIL around array
  kernels), so threads give real speedups without any pickling cost.
* ``"processes"`` — :class:`concurrent.futures.ProcessPoolExecutor`.
  True multi-core parallelism; shard functions and their payloads must
  be picklable (module-level functions, plain-data arguments).

Determinism is the executor's design constraint, not an afterthought:
``map_shards`` always returns results **in shard order**, regardless
of completion order, and never re-partitions the work it is handed —
the *caller* decides the shard structure (and derives per-shard seeds
via :mod:`repro.parallel.seeding`), so the same shards produce the
same results on any backend at any worker count.

Failure handling (see :mod:`repro.parallel.resilience` and
``docs/resilience.md``): **fatal** failures — deterministic exceptions
raised by the shard function — propagate immediately as the original
exception type (chained to a :class:`WorkerError` carrying the remote
traceback when it crossed a process boundary). **Transient** failures
— a killed worker, a broken pool, an overrun deadline — are retried
under the executor's :class:`~repro.parallel.resilience.RetryPolicy`:
the same shard object is re-run (its seeds travel with it, so a
recovered result is byte-identical to a fault-free run), the shared
:class:`~repro.parallel.resilience.CircuitBreaker` is notified (and
may degrade the backend processes → threads → serial for the next
wave), and exhaustion raises the last failure chained to a
:class:`RetryExhausted` recording the attempt count and the final
attempt's traceback.

When ``deadline`` is set, the processes backend bounds each unit's
wall clock: an overrun terminates the pool's workers and surfaces a
transient :class:`~repro.errors.DeadlineExceeded` for the unit.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import time
import traceback
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as _FuturesTimeout
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..errors import DeadlineExceeded, ReproError
from ..testing import faults
from .resilience import CircuitBreaker, RetryPolicy, global_breaker, \
    is_transient

__all__ = ["BACKENDS", "Executor", "RetryExhausted", "WorkerError",
           "get_executor", "validate_backend"]

BACKENDS = ("serial", "threads", "processes")

S = TypeVar("S")
R = TypeVar("R")

#: Sentinel distinguishing "no context" from a ``None`` context.
_NO_CONTEXT = object()

#: One unit's outcome inside a wave: (unit index, succeeded, value or
#: exception, formatted worker traceback when one crossed a process
#: boundary).
_Outcome = Tuple[int, bool, object, Optional[str]]

#: A submitted unit paired with its in-flight future (processes wave).
_Submitted = Tuple[int, "Future[Tuple[bool, object, Optional[str]]]"]


class WorkerError(ReproError):
    """A shard raised in a worker process.

    Carries the worker-side formatted traceback; ``map_shards``
    re-raises the original exception *from* this error, so both the
    original type and the remote frames stay visible::

        ValueError: negative support
        ...
        The above exception was the direct cause of ...
        WorkerError: shard 3 raised in worker:
        Traceback (most recent call last):
          File "...", line 42, in _score_shard
        ...
    """


class RetryExhausted(WorkerError):
    """A transiently-failing unit ran out of retry attempts.

    The original (last-attempt) exception is re-raised *from* this
    error; :attr:`attempts` is the total number of tries and
    :attr:`last_traceback` the formatted traceback of the final
    attempt, so post-mortems see exactly where the last retry died.
    """

    def __init__(self, message: str, attempts: int,
                 last_traceback: str) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_traceback = last_traceback


def validate_backend(backend: str) -> str:
    """Return ``backend`` or raise listing the valid names."""
    if backend not in BACKENDS:
        raise ReproError(
            f"unknown parallel backend {backend!r}; "
            f"pick from {', '.join(BACKENDS)}")
    return backend


def validate_n_jobs(n_jobs: int) -> int:
    """Return ``n_jobs`` (``-1`` → CPU count) or raise."""
    if n_jobs == -1:
        return multiprocessing.cpu_count()
    if not isinstance(n_jobs, int) or n_jobs < 1:
        raise ReproError(
            f"n_jobs must be a positive integer or -1 (all cores), "
            f"got {n_jobs!r}")
    return n_jobs


class Executor:
    """Run shard functions through the configured backend.

    Parameters
    ----------
    backend:
        One of :data:`BACKENDS`. The breaker may degrade the *active*
        backend below the requested one after repeated transient
        failures.
    n_jobs:
        Worker count; ``-1`` means one per CPU core. ``n_jobs=1``
        always degenerates to the serial loop, whatever the backend.
    retry:
        The :class:`~repro.parallel.resilience.RetryPolicy` for
        transient failures (default: 4 attempts, deterministic capped
        exponential backoff). ``RetryPolicy(max_attempts=1)`` disables
        retries.
    deadline:
        Optional per-unit wall-clock bound in seconds, enforced on the
        processes backend (an overrun terminates the workers and
        counts as a transient failure of the unit).
    breaker:
        The :class:`~repro.parallel.resilience.CircuitBreaker` to
        consult and notify; defaults to the process-wide shared one.
    """

    def __init__(self, backend: str = "serial", n_jobs: int = 1,
                 retry: Optional[RetryPolicy] = None,
                 deadline: Optional[float] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.backend = validate_backend(backend)
        self.n_jobs = validate_n_jobs(n_jobs)
        self.retry = retry if retry is not None else RetryPolicy()
        if deadline is not None and not deadline > 0:
            raise ReproError(
                f"deadline must be a positive number of seconds, "
                f"got {deadline!r}")
        self.deadline = deadline
        self.breaker = breaker if breaker is not None \
            else global_breaker()
        #: Cumulative resilience counters (diagnostics, not identity).
        self.stats: Dict[str, int] = {"waves": 0, "retries": 0,
                                      "transient_failures": 0}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Executor(backend={self.backend!r}, n_jobs={self.n_jobs})"

    # ------------------------------------------------------------------

    def map_shards(self, fn: Callable[..., R],
                   shards: Iterable[S],
                   context: object = _NO_CONTEXT) -> List[R]:
        """``[fn(shard) for shard in shards]``, possibly in parallel.

        Results come back in shard order on every backend. The shard
        structure is the caller's: this method never splits or merges
        shards, which is what makes results independent of the worker
        count — and what makes retries invisible in the output, since
        a retried shard re-runs with the seeds it carries.

        ``context`` hoists a payload shared by every unit out of the
        per-unit shards: when given, ``fn`` is called as
        ``fn(context, shard)`` and the processes backend ships the
        payload through the pool *initializer* — once per worker per
        wave (inherited for free under the fork start method, not
        pickled at all) — so per-unit submissions and **retries**
        re-send only the small shard, never the payload. Callers whose
        payload is a dataset should pass it here rather than closing
        over it, or the dataset is re-pickled for every unit of every
        retry wave.
        """
        items: Sequence[S] = list(shards)
        if not items:
            return []
        results: List[object] = [None] * len(items)
        attempts = [0] * len(items)
        pending = list(range(len(items)))
        clean = True
        while pending:
            backend = self.breaker.active_backend(self.backend)
            workers = min(self.n_jobs, len(pending))
            self.stats["waves"] += 1
            # A single worker degenerates to the in-process loop
            # (which is why closures work at n_jobs=1 on any
            # backend) — except when a deadline must be enforced,
            # which only the process pool can do.
            in_process = (workers == 1
                          and (backend != "processes"
                               or self.deadline is None))
            if backend == "serial" or in_process:
                outcomes = self._wave_serial(fn, items, pending,
                                             context)
            elif backend == "threads":
                outcomes = self._wave_threads(fn, items, pending,
                                              workers, context)
            else:
                outcomes = self._wave_processes(fn, items, pending,
                                                workers, context)
            retry: List[int] = []
            deepest = 0
            for index, ok, value, formatted in outcomes:
                if ok:
                    results[index] = value
                    continue
                clean = False
                error = value if isinstance(value, BaseException) \
                    else ReproError(f"shard {index} failed: {value!r}")
                attempts[index] += 1
                if not is_transient(error):
                    self._raise_fatal(backend, index, error, formatted)
                self.stats["transient_failures"] += 1
                self.breaker.record_transient(backend,
                                              error=repr(error))
                if attempts[index] >= self.retry.max_attempts:
                    self._raise_exhausted(index, error, formatted,
                                          attempts[index])
                retry.append(index)
                deepest = max(deepest, attempts[index])
            if retry:
                self.stats["retries"] += len(retry)
                delay = self.retry.delay(deepest)
                if delay > 0:
                    time.sleep(delay)
            pending = retry
        if clean:
            self.breaker.record_success()
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # failure surfacing
    # ------------------------------------------------------------------

    def _raise_fatal(self, backend: str, index: int,
                     error: BaseException,
                     formatted: Optional[str]) -> None:
        if backend == "processes" and formatted is not None:
            raise error from WorkerError(
                f"shard {index} raised in worker:\n{formatted}")
        # In-process backends: the exception object still carries its
        # original traceback; re-raise it unwrapped.
        raise error

    def _raise_exhausted(self, index: int, error: BaseException,
                         formatted: Optional[str],
                         attempts: int) -> None:
        last = formatted or "".join(
            traceback.format_exception(type(error), error,
                                       error.__traceback__))
        raise error from RetryExhausted(
            f"shard {index} failed transiently on every attempt "
            f"({attempts} of {attempts}); last failure:\n{last}",
            attempts=attempts, last_traceback=last)

    # ------------------------------------------------------------------
    # waves (one attempt of every still-pending unit)
    # ------------------------------------------------------------------

    def _wave_serial(self, fn: Callable[..., R], items: Sequence[S],
                     pending: Sequence[int],
                     context: object = _NO_CONTEXT) -> List[_Outcome]:
        outcomes: List[_Outcome] = []
        for index in pending:
            try:
                value = (fn(items[index]) if context is _NO_CONTEXT
                         else fn(context, items[index]))
                outcomes.append((index, True, value, None))
            except Exception as exc:
                outcomes.append((index, False, exc,
                                 traceback.format_exc()))
                if not is_transient(exc):
                    # Fatal: no retry is coming, so stop executing the
                    # rest of the wave (matches eager serial
                    # semantics).
                    break
        return outcomes

    def _wave_threads(self, fn: Callable[..., R], items: Sequence[S],
                      pending: Sequence[int], workers: int,
                      context: object = _NO_CONTEXT) -> List[_Outcome]:
        def guarded(index: int) -> _Outcome:
            try:
                value = (fn(items[index]) if context is _NO_CONTEXT
                         else fn(context, items[index]))
                return index, True, value, None
            except Exception as exc:
                return index, False, exc, traceback.format_exc()

        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(guarded, pending))

    def _wave_processes(self, fn: Callable[..., R], items: Sequence[S],
                        pending: Sequence[int], workers: int,
                        context: object = _NO_CONTEXT) -> List[_Outcome]:
        # fork keeps the parent's modules/sys.path visible without
        # re-importing, and makes already-registered plugin
        # corrections (and the armed fault plan) available in workers;
        # fall back to the platform default where fork is unavailable
        # (Windows, macOS spawn).
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context()
        outcomes: List[_Outcome] = []
        if context is _NO_CONTEXT:
            pool = ProcessPoolExecutor(max_workers=workers,
                                       mp_context=ctx)
            submit = lambda index: pool.submit(  # noqa: E731
                _guarded_call, fn, index, items[index])
        else:
            # The shared payload rides the pool initializer: once per
            # worker per wave (inherited, not pickled, under fork), so
            # per-unit submissions — and every retry — carry only the
            # small shard.
            pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=ctx,
                initializer=_install_wave_context,
                initargs=(fn, context))
            submit = lambda index: pool.submit(  # noqa: E731
                _guarded_context_call, index, items[index])
        try:
            futures: List[_Submitted] = []
            for index in pending:
                try:
                    futures.append((index, submit(index)))
                except BrokenExecutor as exc:
                    # A worker died while this wave was still being
                    # submitted: the pool refuses further work, so the
                    # unsubmitted units fail transiently right here.
                    outcomes.append((index, False, exc, None))
            for index, future in futures:
                try:
                    ok, value, formatted = future.result(
                        timeout=self.deadline)
                except (_FuturesTimeout, TimeoutError):
                    # The unit overran its deadline. The worker is
                    # hung, which poisons the pool: kill the workers
                    # so this wave ends in bounded time (the
                    # remaining futures fail fast as a broken pool).
                    _terminate_pool_workers(pool)
                    deadline = self.deadline or 0.0
                    ok, value, formatted = False, DeadlineExceeded(
                        f"shard {index} exceeded its {deadline:g}s "
                        f"deadline"), None
                except BrokenExecutor as exc:
                    # A worker died (SIGKILL, OOM-kill): every unit
                    # still in flight fails transiently.
                    ok, value, formatted = False, exc, None
                outcomes.append((index, ok, value, formatted))
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return outcomes


def _terminate_pool_workers(pool: ProcessPoolExecutor) -> None:
    """SIGTERM a pool's worker processes (hung-deadline recovery)."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, ValueError):  # pragma: no cover - dead worker
            continue


#: Worker-side ``(fn, context)`` installed by the pool initializer for
#: context-hoisted waves (one slot per worker process; each wave's
#: fresh pool overwrites it).
_WAVE_CONTEXT: Optional[Tuple[Callable, object]] = None


def _install_wave_context(fn: Callable, context: object) -> None:
    """Pool initializer: park the wave's shared payload in the worker."""
    global _WAVE_CONTEXT
    _WAVE_CONTEXT = (fn, context)


def _guarded_call(fn: Callable[[S], R], index: int,
                  shard: S) -> Tuple[bool, object, Optional[str]]:
    """Run one shard in a worker, capturing the traceback on failure.

    Exception objects survive pickling back to the parent; traceback
    objects do not, so the formatted text rides along. Unpicklable
    exceptions are downgraded to a :class:`WorkerError` carrying their
    repr (the traceback text still shows the original type).

    This is also where the process-backend chaos faults live:
    ``worker-kill`` SIGKILLs the worker before the shard runs (the
    parent observes a broken pool, exactly like a real OOM-kill), and
    ``executor-hang`` sleeps past any sane deadline (the parent's
    deadline enforcement must recover). Both are no-ops unless armed
    (:mod:`repro.testing.faults`).
    """
    if faults.should_fire("worker-kill"):
        os.kill(os.getpid(), signal.SIGKILL)
    if faults.should_fire("executor-hang"):
        time.sleep(faults.hang_seconds())
    try:
        return True, fn(shard), None
    except BaseException as exc:
        formatted = traceback.format_exc()
        try:
            pickle.loads(pickle.dumps(exc))
        except Exception:
            exc = WorkerError(
                f"unpicklable worker exception {exc!r} on shard {index}")
        return False, exc, formatted


def _guarded_context_call(index: int, shard: S,
                          ) -> Tuple[bool, object, Optional[str]]:
    """Context-hoisted flavour of :func:`_guarded_call`: the function
    and shared payload come from the worker's installed wave context,
    so this submission pickles only the unit index and shard."""
    assert _WAVE_CONTEXT is not None, "pool initializer did not run"
    fn, context = _WAVE_CONTEXT
    return _guarded_call(lambda unit: fn(context, unit), index, shard)


def get_executor(backend: str = "serial", n_jobs: int = 1,
                 retry: Optional[RetryPolicy] = None,
                 deadline: Optional[float] = None,
                 breaker: Optional[CircuitBreaker] = None) -> Executor:
    """Construct a validated :class:`Executor`."""
    return Executor(backend=backend, n_jobs=n_jobs, retry=retry,
                    deadline=deadline, breaker=breaker)
