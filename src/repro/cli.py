"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``mine``
    Mine statistically significant class association rules from a CSV
    (attribute-valued, class column last by default), FIMI or ARFF
    file, or from one of the built-in simulated UCI datasets
    (``builtin:german`` etc.).
``datasets``
    List the built-in datasets and their Table 2 shapes.
``corrections``
    List the available correction identifiers.
``measures``
    List the available interestingness measures.
``power``
    Analytic detectability: minimum detectable confidence/support for
    a coverage, or detection power for a planted confidence.
``experiment``
    Run a replicated planted-rule experiment (the Section 5 loop) and
    print power/FWER/FDR per correction method.
``classify``
    Build a CBA/CMAR associative classifier on a dataset, optionally
    restricting the rule base to a correction's significant rules, and
    report cross-validated accuracy.
``contrast``
    Mine STUCCO contrast sets between the dataset's class groups.
``serve``
    Run the mining service (:mod:`repro.service`): an HTTP API with a
    dataset registry, an async job queue and a fingerprint-keyed
    artifact cache; see ``docs/service.md``.
``lint``
    Run the AST invariant checker (:mod:`repro.analysis`) over the
    source tree, gated by the committed ``lint-baseline.json``.

Correction names (``--correction``, ``experiment --methods``) are
resolved through the correction registry and mining algorithms
(``--algorithm``) through the miner registry: canonical identifiers
(``bh``, ``fpgrowth``), Table 3 abbreviations (``BH``) and aliases
(``fp-growth``) all work, and unknown names get a did-you-mean
suggestion. Out-of-tree corrections *and miners* registered via
:func:`repro.corrections.register_correction` /
:func:`repro.mining.register_miner` are usable without editing this
package: load the registering module with ``--plugin my_module``
(repeatable, resolved before anything else) or the ``REPRO_PLUGINS``
environment variable (comma-separated module names).
``--list-algorithms`` prints the registered miners and exits.

Examples
--------
::

    python -m repro mine data.csv --min-sup 60 --correction bh
    python -m repro mine data.csv --min-sup 60 --algorithm fpgrowth
    python -m repro --list-algorithms
    python -m repro mine builtin:german --min-sup 60 \\
        --correction permutation-fwer --permutations 1000 --seed 0
    python -m repro --plugin my_corrections mine data.csv \\
        --min-sup 60 --correction my-method
    python -m repro classify builtin:german --min-sup 80 \\
        --correction bonferroni --folds 3
    python -m repro contrast builtin:adult --min-deviation 0.1
    python -m repro datasets
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .core.miner import mine_significant_rules
from .corrections.registry import (
    available_corrections,
    correction_names,
    resolve_correction,
)
from .interest.measures import ALL_MEASURES, ContingencyTable
from .data.dataset import Dataset
from .data.loaders import load_arff, load_csv, load_fimi
from .data.uci import REAL_DATASETS, load_real_dataset
from .errors import CorrectionError, MiningError, ReproError
from .mining.diffsets import DEFAULT_POLICY, POLICY_CHOICES
from .mining.registry import (
    available_miners,
    miner_names,
    resolve_miner,
)

__all__ = ["main", "build_parser", "load_plugins"]


def load_plugins(modules: Sequence[str]) -> List[str]:
    """Import plugin modules so they can register extensions.

    Modules named in ``REPRO_PLUGINS`` (comma-separated) are loaded
    first, then the given ones; each module is expected to call
    :func:`repro.corrections.register_correction` and/or
    :func:`repro.mining.register_miner` at import time. Returns the
    list of modules imported.
    """
    names = [name.strip()
             for name in os.environ.get("REPRO_PLUGINS", "").split(",")
             if name.strip()]
    names.extend(modules)
    loaded = []
    for name in names:
        try:
            importlib.import_module(name)
        except ImportError as exc:
            raise ReproError(
                f"cannot import plugin module {name!r}: {exc}") from exc
        loaded.append(name)
    return loaded


class _PluginAction(argparse.Action):
    """Import a plugin module the moment its flag is parsed.

    Importing eagerly (instead of after ``parse_args``) lets a
    ``--correction`` later on the same command line resolve names the
    plugin registers — argparse converts options left to right.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        try:
            load_plugins([values])
        except ReproError as exc:
            parser.error(str(exc))
        items = list(getattr(namespace, self.dest) or [])
        items.append(values)
        setattr(namespace, self.dest, items)


def _miner_name(value: str) -> str:
    """argparse type: resolve any registered miner spelling.

    Unknown names abort parsing with the miner registry's message —
    the valid algorithm list plus a did-you-mean suggestion, covering
    miners registered by ``--plugin`` modules earlier on the line.
    """
    try:
        return resolve_miner(value).name
    except MiningError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


class _ListAlgorithmsAction(argparse.Action):
    """Print the registered miners and exit (like ``--help``)."""

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        _print_miners(sys.stdout)
        parser.exit(0)


def _print_miners(out) -> None:
    print("mining algorithms (capabilities, aliases):", file=out)
    for spec in sorted(available_miners(), key=lambda s: s.name):
        line = (f"  {spec.name:15s} "
                f"{', '.join(spec.capabilities):25s}")
        if spec.aliases:
            line += f" aliases: {', '.join(spec.aliases)}"
        print(line, file=out)
        if spec.description:
            print(f"  {'':15s} {spec.description}", file=out)


def _correction_name(value: str) -> str:
    """argparse type: resolve any registered spelling, canonicalised.

    Unknown names abort parsing with the registry's message (valid
    names plus a did-you-mean suggestion). Variant spellings that bind
    context overrides (``"HD_BC"`` → structured split) are kept as
    given — canonicalising them would silently drop the binding.
    """
    try:
        resolved = resolve_correction(value)
    except CorrectionError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    return value if resolved.overrides else resolved.name


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing).

    Correction choices are enumerated from the live registry, so
    corrections registered before this call — e.g. by ``--plugin``
    modules — appear automatically.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Statistically sound class association rule mining "
                    "(VLDB 2011 reproduction).")
    parser.add_argument("--plugin", action=_PluginAction, default=[],
                        metavar="MODULE",
                        help="import this module before running so it "
                             "can register custom corrections or "
                             "miners (repeatable; see also "
                             "REPRO_PLUGINS)")
    parser.add_argument("--list-algorithms",
                        action=_ListAlgorithmsAction,
                        help="list the registered mining algorithms "
                             "and exit; options apply left to right, "
                             "so put --plugin before this flag to "
                             "include plugin miners")
    commands = parser.add_subparsers(dest="command", required=True)

    mine = commands.add_parser(
        "mine", help="mine significant rules from a dataset")
    mine.add_argument("input",
                      help="path to a .csv/.fimi/.arff file, or "
                           "builtin:<name> for a simulated UCI dataset")
    mine.add_argument("--min-sup", type=int, required=True,
                      help="minimum rule coverage")
    mine.add_argument("--algorithm", default="closed",
                      type=_miner_name,
                      help="pattern mining algorithm, any registered "
                           "spelling (default: closed; see "
                           f"--list-algorithms): "
                           f"{', '.join(miner_names())}")
    mine.add_argument("--correction", default="bh",
                      type=_correction_name,
                      help="multiple testing correction, any registered "
                           f"spelling (default: bh; see 'corrections'): "
                           f"{', '.join(correction_names())}")
    mine.add_argument("--alpha", type=float, default=0.05,
                      help="error level to control (default: 0.05)")
    mine.add_argument("--min-conf", type=float, default=0.0,
                      help="domain-significance confidence filter")
    mine.add_argument("--max-length", type=int, default=None,
                      help="cap on rule LHS length")
    mine.add_argument("--permutations", type=int, default=1000,
                      help="permutation count for permutation-* "
                           "corrections (default: 1000)")
    mine.add_argument("--policy", default=DEFAULT_POLICY,
                      choices=tuple(sorted(POLICY_CHOICES)),
                      help="pattern-forest storage/kernel policy for "
                           "permutation-* corrections (default: "
                           "packed, the uint64 bitmap kernel; auto "
                           "picks per dataset shape; all policies "
                           "give bit-identical results — see "
                           "docs/performance.md)")
    mine.add_argument("--holdout-split", default="random",
                      choices=("random", "structured"),
                      help="split convention for holdout-* corrections")
    mine.add_argument("--scorer", default="fisher",
                      choices=("fisher", "fisher-midp", "chi2"),
                      help="statistical test (default: fisher)")
    mine.add_argument("--redundancy-delta", type=float, default=None,
                      help="Section 7 representative-pattern reduction "
                           "tolerance (collapse sub/super-pattern "
                           "chains with support within 1-delta)")
    mine.add_argument("--rank-by", default=None,
                      choices=sorted(ALL_MEASURES),
                      help="order printed rules by this interestingness "
                           "measure instead of p-value")
    mine.add_argument("--seed", type=int, default=None,
                      help="seed for permutation/holdout randomness")
    mine.add_argument("--jobs", type=int, default=1,
                      help="parallel workers for the permutation pass "
                           "(-1 = all cores; results are identical "
                           "for any worker count; default: 1)")
    mine.add_argument("--backend", default="serial",
                      choices=("serial", "threads", "processes"),
                      help="parallel execution backend (default: "
                           "serial; see docs/parallel.md)")
    mine.add_argument("--class-column", default="-1",
                      help="CSV class column name or index "
                           "(default: last)")
    mine.add_argument("--top", type=int, default=20,
                      help="number of rules to print (default: 20)")
    mine.add_argument("--csv-out", default=None,
                      help="also write the significant rules to this "
                           "CSV file (columns: rule, class, coverage, "
                           "support, confidence, p_value)")

    commands.add_parser("datasets",
                        help="list built-in simulated UCI datasets")
    commands.add_parser("corrections",
                        help="list correction identifiers")
    commands.add_parser("measures",
                        help="list interestingness measures")

    power = commands.add_parser(
        "power", help="analytic detectability calculator")
    power.add_argument("--records", type=int, required=True,
                       help="dataset size n")
    power.add_argument("--class-support", type=int, required=True,
                       help="records of the rule's class (n_c)")
    power.add_argument("--coverage", type=int, required=True,
                       help="rule coverage supp(X)")
    power.add_argument("--threshold", type=float, required=True,
                       help="raw p-value cut-off to clear (e.g. the "
                            "Bonferroni alpha/Nt)")
    power.add_argument("--confidence", type=float, default=None,
                       help="planted confidence; when given, also "
                            "print the detection probability")

    experiment = commands.add_parser(
        "experiment",
        help="replicated planted-rule experiment (Section 5 loop)")
    experiment.add_argument("--records", type=int, default=2000,
                            help="records per dataset (default: 2000)")
    experiment.add_argument("--attributes", type=int, default=40,
                            help="attributes (default: 40)")
    experiment.add_argument("--rules", type=int, default=1,
                            help="embedded rules (default: 1)")
    experiment.add_argument("--coverage", type=int, default=400,
                            help="embedded rule coverage (default: 400)")
    experiment.add_argument("--confidence", type=float, default=0.65,
                            help="embedded rule confidence "
                                 "(default: 0.65)")
    experiment.add_argument("--min-sup", type=int, default=150,
                            help="minimum support (default: 150)")
    experiment.add_argument("--algorithm", default="closed",
                            type=_miner_name,
                            help="pattern mining algorithm for the "
                                 "ablation grid (default: closed)")
    experiment.add_argument("--alpha", type=float, default=0.05,
                            help="error level (default: 0.05)")
    experiment.add_argument("--replicates", type=int, default=10,
                            help="datasets per cell (paper: 100)")
    experiment.add_argument("--permutations", type=int, default=150,
                            help="permutation count (paper: 1000)")
    experiment.add_argument("--methods", default="No correction,BC,BH",
                            help="comma-separated method keys "
                                 "(Table 3 names; default: "
                                 "'No correction,BC,BH')")
    experiment.add_argument("--seed", type=int, default=0,
                            help="master seed (default: 0)")
    experiment.add_argument("--jobs", type=int, default=1,
                            help="parallel workers for the replicate "
                                 "grid (-1 = all cores; default: 1)")
    experiment.add_argument("--backend", default="serial",
                            choices=("serial", "threads", "processes"),
                            help="parallel execution backend "
                                 "(default: serial)")

    classify = commands.add_parser(
        "classify",
        help="build and evaluate an associative classifier")
    classify.add_argument("input",
                          help="dataset path or builtin:<name>")
    classify.add_argument("--min-sup", type=int, required=True,
                          help="minimum rule coverage")
    classify.add_argument("--classifier", default="cba",
                          choices=("cba", "cmar", "cpar"),
                          help="rule-list (cba), weighted vote (cmar) "
                               "or greedy FOIL induction (cpar)")
    classify.add_argument("--correction", default="none",
                          type=_correction_name,
                          help="filter the rule base to this "
                               "correction's significant rules, any "
                               "registered spelling (default: none = "
                               "plain CBA/CMAR)")
    classify.add_argument("--alpha", type=float, default=0.05,
                          help="error level for the filter")
    classify.add_argument("--max-length", type=int, default=None,
                          help="cap on rule LHS length")
    classify.add_argument("--folds", type=int, default=0,
                          help="stratified CV folds (0 = skip CV)")
    classify.add_argument("--permutations", type=int, default=200,
                          help="permutation count for permutation-* "
                               "filters (default: 200)")
    classify.add_argument("--seed", type=int, default=0,
                          help="seed for CV folds and permutations")
    classify.add_argument("--class-column", default="-1",
                          help="CSV class column (default: last)")
    classify.add_argument("--top", type=int, default=10,
                          help="rules of the classifier to print")

    contrast = commands.add_parser(
        "contrast",
        help="mine STUCCO contrast sets between class groups")
    contrast.add_argument("input",
                          help="dataset path or builtin:<name>")
    contrast.add_argument("--min-deviation", type=float, default=0.05,
                          help="minimum cross-group proportion gap "
                               "(default: 0.05)")
    contrast.add_argument("--alpha", type=float, default=0.05,
                          help="total error budget (default: 0.05)")
    contrast.add_argument("--min-sup", type=int, default=1,
                          help="coverage floor for candidates")
    contrast.add_argument("--max-length", type=int, default=3,
                          help="search depth cap (default: 3)")
    contrast.add_argument("--correction", default="stucco",
                          choices=("stucco", "bonferroni", "none"),
                          help="significance regime (default: stucco)")
    contrast.add_argument("--class-column", default="-1",
                          help="CSV class column (default: last)")
    contrast.add_argument("--top", type=int, default=15,
                          help="contrast sets to print (default: 15)")

    serve = commands.add_parser(
        "serve",
        help="run the mining service (HTTP API with job queue and "
             "artifact cache)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port (default: 8765)")
    serve.add_argument("--db", default=":memory:",
                       help="artifact-store SQLite path (default: "
                            "in-memory, nothing survives restart)")
    serve.add_argument("--dataset", action="append", default=[],
                       metavar="NAME=SOURCE",
                       help="pre-register a dataset, e.g. "
                            "german=builtin:german or "
                            "mydata=path/to/data.csv (repeatable; "
                            "more can be registered at runtime via "
                            "POST /v1/datasets)")
    serve.add_argument("--job-workers", type=int, default=1,
                       help="background job worker threads "
                            "(default: 1)")
    serve.add_argument("--jobs", type=int, default=1,
                       help="repro.parallel workers each job's "
                            "pipeline runs with (-1 = all cores; "
                            "results are identical for any count; "
                            "default: 1)")
    serve.add_argument("--backend", default="serial",
                       choices=("serial", "threads", "processes"),
                       help="parallel execution backend for job "
                            "pipelines (default: serial)")
    serve.add_argument("--token", default=None,
                       help="require 'Authorization: Bearer <token>' "
                            "on every route except /health "
                            "(default: no authentication)")
    serve.add_argument("--journal", default=None, metavar="PATH",
                       help="job-journal SQLite path; default derives "
                            "<db>.jobs next to a file-backed --db "
                            "(in-memory stores run without a "
                            "journal); pass an empty string to "
                            "disable durability explicitly")
    serve.add_argument("--max-retries", type=int, default=2,
                       help="times a job is re-enqueued after a "
                            "transient failure or an orphaning "
                            "crash (default: 2)")
    serve.add_argument("--job-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-job wall-clock bound, enforced "
                            "cooperatively by the reaper (default: "
                            "none)")
    serve.add_argument("--job-ttl", type=float, default=None,
                       metavar="SECONDS",
                       help="prune finished jobs from memory after "
                            "this age; the journal keeps their "
                            "history (default: keep forever)")

    lint = commands.add_parser(
        "lint",
        help="run the AST invariant checker (repro.analysis)")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files/directories to analyze "
                           "(default: src)")
    lint.add_argument("--select", default=None, metavar="RULES",
                      help="comma-separated rule names to run "
                           "(default: all)")
    lint.add_argument("--format", default="text",
                      choices=("text", "json"),
                      help="report format (default: text)")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="baseline JSON to gate against (default: "
                           "./lint-baseline.json when it exists)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline; report every "
                           "finding as new")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline from current "
                           "findings and exit 0")
    lint.add_argument("--show-baselined", action="store_true",
                      help="also list findings matched by the "
                           "baseline")
    lint.add_argument("--list-rules", action="store_true",
                      help="list registered rules and exit")
    return parser


def _load_input(path: str, class_column: str) -> Dataset:
    if path.startswith("builtin:"):
        return load_real_dataset(path[len("builtin:"):])
    suffix = Path(path).suffix.lower()
    if suffix == ".csv":
        column: object
        try:
            column = int(class_column)
        except ValueError:
            column = class_column
        return load_csv(path, class_column=column)
    if suffix in (".fimi", ".dat", ".txt"):
        return load_fimi(path)
    if suffix == ".arff":
        return load_arff(path)
    if suffix == ".arena":
        return Dataset.open_arena(path)
    if suffix == ".parquet":
        from .data.ingest import load_parquet
        return load_parquet(path)
    raise ReproError(
        f"cannot infer format of {path!r}; expected .csv, .fimi/.dat, "
        f".arff, .arena, .parquet or builtin:<name>")


def _run_mine(args: argparse.Namespace, out) -> int:
    dataset = _load_input(args.input, args.class_column)
    report = mine_significant_rules(
        dataset, min_sup=args.min_sup, correction=args.correction,
        algorithm=args.algorithm,
        alpha=args.alpha, min_conf=args.min_conf,
        max_length=args.max_length, n_permutations=args.permutations,
        policy=args.policy,
        holdout_split=args.holdout_split, scorer=args.scorer,
        seed=args.seed, redundancy_delta=args.redundancy_delta,
        n_jobs=args.jobs, backend=args.backend)
    print(report.summary(), file=out)
    if args.rank_by is not None:
        measure = ALL_MEASURES[args.rank_by]
        ordered = sorted(
            report.significant,
            key=lambda r: measure(ContingencyTable.from_rule(r, dataset)),
            reverse=True)
    else:
        ordered = sorted(report.significant, key=lambda r: r.p_value)
    for rule in ordered[:args.top]:
        print("  " + rule.describe(dataset), file=out)
    remaining = len(ordered) - args.top
    if remaining > 0:
        print(f"  ... and {remaining} more", file=out)
    if args.csv_out is not None:
        from .evaluation.export import rules_to_csv
        written = rules_to_csv(report.significant, dataset,
                               args.csv_out)
        print(f"wrote {written} rules to {args.csv_out}", file=out)
    return 0


def _run_datasets(out) -> int:
    print("built-in datasets (simulated UCI stand-ins, Table 2 shapes):",
          file=out)
    for name, spec in sorted(REAL_DATASETS.items()):
        print(f"  builtin:{name:10s} {spec.n_records:6d} records, "
              f"{spec.n_attributes:2d} attributes, classes "
              f"{'/'.join(spec.class_names)}; paper min_sup "
              f"{spec.paper_minsup}", file=out)
    return 0


def _run_corrections(out) -> int:
    print("correction identifiers (paper abbreviation, family, "
          "aliases):", file=out)
    for spec in sorted(available_corrections(), key=lambda s: s.name):
        aliases = ", ".join(spec.aliases)
        line = (f"  {spec.name:25s} {spec.abbreviation:14s} "
                f"{spec.family:5s}")
        if aliases:
            line += f" aliases: {aliases}"
        print(line, file=out)
        if spec.description:
            print(f"  {'':25s} {spec.description}", file=out)
    return 0


def _run_power(args, out) -> int:
    from .stats.power import (
        detection_power,
        min_detectable_confidence,
        min_detectable_support,
        min_testable_coverage,
    )
    n, n_c = args.records, args.class_support
    coverage, threshold = args.coverage, args.threshold
    support = min_detectable_support(n, n_c, coverage, threshold)
    print(f"n={n}, n_c={n_c}, coverage={coverage}, "
          f"threshold={threshold:g}", file=out)
    if support is None:
        sigma = min_testable_coverage(n, n_c, threshold)
        print("  this coverage is UNTESTABLE at the threshold: even a "
              "perfect class split cannot reach it", file=out)
        if sigma is not None:
            print(f"  minimum testable coverage: {sigma}", file=out)
        return 0
    confidence = min_detectable_confidence(n, n_c, coverage, threshold)
    print(f"  minimum detectable support:    {support}", file=out)
    print(f"  minimum detectable confidence: {confidence:.4f}", file=out)
    if args.confidence is not None:
        probability = detection_power(n, n_c, coverage,
                                      args.confidence, threshold)
        print(f"  detection power at confidence {args.confidence:g}: "
              f"{probability:.4f}", file=out)
    return 0


def _run_experiment(args, out) -> int:
    from .data.synthetic import GeneratorConfig
    from .evaluation.reporting import format_table
    from .evaluation.runner import ExperimentRunner

    methods = tuple(key.strip() for key in args.methods.split(",")
                    if key.strip())
    config = GeneratorConfig(
        n_records=args.records, n_attributes=args.attributes,
        n_rules=args.rules,
        min_coverage=args.coverage, max_coverage=args.coverage,
        min_confidence=args.confidence, max_confidence=args.confidence)
    runner = ExperimentRunner(methods=methods, alpha=args.alpha,
                              n_permutations=args.permutations,
                              algorithm=args.algorithm,
                              n_jobs=args.jobs, backend=args.backend)
    result = runner.run(config, min_sup=args.min_sup,
                        n_replicates=args.replicates, seed=args.seed)
    print(f"{args.replicates} replicates, N={args.records}, "
          f"A={args.attributes}, {args.rules} embedded rule(s) "
          f"(coverage {args.coverage}, confidence {args.confidence:g}), "
          f"min_sup={args.min_sup}, alpha={args.alpha:g}",
          file=out)
    print(f"mean rules tested: "
          f"{result.mean_tested['whole dataset']:.1f}", file=out)
    print(format_table(
        ["method", "#datasets", "power", "FWER", "FDR", "avg #FP",
         "avg #significant"],
        [result.aggregates[m].row() for m in methods]), file=out)
    return 0


def _run_classify(args, out) -> int:
    from .classify import (
        cross_validate,
        significance_filtered_classifier,
    )

    dataset = _load_input(args.input, args.class_column)
    fitted = significance_filtered_classifier(
        dataset, args.min_sup, correction=args.correction,
        alpha=args.alpha, classifier=args.classifier,
        max_length=args.max_length, n_permutations=args.permutations,
        seed=args.seed)
    print(fitted.describe(dataset, limit=args.top), file=out)
    if args.folds and args.folds >= 2:
        def factory(train, _cli_args=args):
            scaled_min_sup = max(
                1, _cli_args.min_sup * (_cli_args.folds - 1)
                // _cli_args.folds)
            return significance_filtered_classifier(
                train, scaled_min_sup,
                correction=_cli_args.correction,
                alpha=_cli_args.alpha,
                classifier=_cli_args.classifier,
                max_length=_cli_args.max_length,
                n_permutations=_cli_args.permutations,
                seed=_cli_args.seed)

        result = cross_validate(dataset, factory, k=args.folds,
                                seed=args.seed)
        print(f"\n{args.folds}-fold CV accuracy: "
              f"{result.mean_accuracy:.4f} "
              f"(+/- {result.std_accuracy:.4f}), "
              f"mean rules kept: {result.mean_rule_count:.1f}",
              file=out)
        print(result.confusion.describe(), file=out)
    return 0


def _run_contrast(args, out) -> int:
    from .contrast import find_contrast_sets

    dataset = _load_input(args.input, args.class_column)
    result = find_contrast_sets(
        dataset, min_deviation=args.min_deviation, alpha=args.alpha,
        min_sup=args.min_sup, max_length=args.max_length,
        correction=args.correction)
    print(result.describe(limit=args.top), file=out)
    print("\nlayered alpha per level:", file=out)
    for level in sorted(result.alpha_per_level):
        print(f"  level {level}: "
              f"{result.candidates_per_level[level]} candidates, "
              f"alpha_l = {result.alpha_per_level[level]:.3g}",
              file=out)
    return 0


def _run_serve(args, out) -> int:
    from .service import ServiceConfig, create_app
    from .service.server import serve

    datasets = []
    for spec in args.dataset:
        name, separator, source = spec.partition("=")
        if not separator or not name or not source:
            raise ReproError(
                f"--dataset expects NAME=SOURCE, got {spec!r}")
        datasets.append((name, source))
    # Datasets ride in the config so ServiceCore registers them
    # before the job manager's journal replay can run a recovered
    # job that needs them.
    config = ServiceConfig(db_path=args.db, token=args.token,
                           workers=args.job_workers,
                           n_jobs=args.jobs, backend=args.backend,
                           journal_path=args.journal,
                           max_retries=args.max_retries,
                           job_timeout=args.job_timeout,
                           job_ttl=args.job_ttl,
                           datasets=tuple(datasets))
    app = create_app(config)
    for name, source in datasets:
        entry = app.core.registry.get(name)
        print(f"registered dataset {name!r} from {source} "
              f"({entry.fingerprint[:28]}...)", file=out)
    return serve(config, host=args.host, port=args.port, out=out,
                 app=app)


def _run_measures(out) -> int:
    print("interestingness measures (repro.interest):", file=out)
    for name in sorted(ALL_MEASURES):
        doc = (ALL_MEASURES[name].__doc__ or "").strip().splitlines()[0]
        print(f"  {name:18s} {doc}", file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    try:
        load_plugins([])  # REPRO_PLUGINS modules, before enumeration
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        if args.command == "mine":
            return _run_mine(args, out)
        if args.command == "datasets":
            return _run_datasets(out)
        if args.command == "corrections":
            return _run_corrections(out)
        if args.command == "measures":
            return _run_measures(out)
        if args.command == "power":
            return _run_power(args, out)
        if args.command == "experiment":
            return _run_experiment(args, out)
        if args.command == "classify":
            return _run_classify(args, out)
        if args.command == "contrast":
            return _run_contrast(args, out)
        if args.command == "serve":
            return _run_serve(args, out)
        if args.command == "lint":
            from .analysis.cli import run_lint
            return run_lint(args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 1  # unreachable with required=True subparsers


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
