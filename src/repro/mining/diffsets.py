"""Record-id storage for pattern forests (Section 4.2.2 + packed kernel).

The permutation approach re-scores every rule on every permutation,
which needs ``supp_c(X)`` — the number of class-``c`` records containing
``X`` — for every mined pattern and every shuffled labelling. Storing
each pattern's full record-id list makes that a per-pattern scan;
Diffsets (Zaki & Gouda, SIGKDD 2003) exploit the enumeration tree: when
a child's support is more than half its parent's, storing only the
*difference* (records in the parent but not the child) is smaller, and
``supp_c(child) = supp_c(parent) - |diff ∩ class c|``.

:class:`PatternForest` implements four storage policies so the Figure 4
ablation can compare them:

* ``"packed"`` (default) — this library's fastest representation: all
  tidsets packed into one ``(n_nodes, ceil(n_records/64))`` uint64
  :class:`~repro.bitmat.BitMatrix`, class supports via hardware
  popcounts over the whole forest at once (and over whole *batches* of
  labellings at once — see :meth:`class_supports_batch`);
* ``"bitset"`` — the tidset as an arbitrary-precision integer, class
  supports via per-node bigint ``popcount`` (the historical substrate,
  kept as the Fig 4 bigint-baseline ablation arm and as the oracle the
  packed kernels are diffed against);
* ``"diffsets"`` — the paper's rule: full record-id list when
  ``supp(X) <= supp(parent)/2``, otherwise the diffset;
* ``"full"`` — every node stores its full record-id list.

All four count exact integers, so their results are bit-identical;
they differ only in storage footprint and wall-clock speed
(``docs/performance.md`` has measurements and guidance). Callers who
do not want to choose may request ``"auto"``, which resolves to
``"packed"`` or ``"diffsets"`` from the forest's shape at construction
(:func:`resolve_auto_policy`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..bitmat import BitMatrix, andnot_counts
from ..errors import MiningError
from ..tidvector import as_tidvector
from .patterns import Pattern

__all__ = ["PatternForest", "ForestStats", "POLICIES", "POLICY_CHOICES",
           "DEFAULT_POLICY", "resolve_auto_policy"]

POLICIES = ("full", "diffsets", "bitset", "packed")

#: What callers may request: every storage policy plus ``"auto"``,
#: which resolves to one of :data:`POLICIES` at forest construction
#: (see :func:`resolve_auto_policy`).
POLICY_CHOICES = POLICIES + ("auto",)

#: The policy used when callers do not pick one.
DEFAULT_POLICY = "packed"

#: Below this record count a packed row is a handful of uint64 words,
#: so the popcount kernels win at any density (BENCH_kernels.json:
#: per-shape timings show no gather-path crossover under ~4k records).
AUTO_MIN_RECORDS = 4096

#: Mean tidset density below which the gather path (``"diffsets"``)
#: overtakes the packed popcount sweep. The packed kernels touch every
#: word of every row (``n_nodes * n_records / 64`` word ops per
#: labelling) regardless of density; the gather path touches only the
#: stored ids, each roughly an order of magnitude costlier than a
#: word op. The measured crossover sits near one set bit per eight
#: words (BENCH_kernels.json sparse shapes).
AUTO_DENSITY_CROSSOVER = 1.0 / 512


def resolve_auto_policy(n_nodes: int, n_records: int,
                        total_ids: int) -> str:
    """Pick a storage policy from the forest's shape.

    ``total_ids`` is the summed support of all nodes (the ids a
    ``"full"`` forest would store); ``total_ids / (n_nodes *
    n_records)`` is the mean tidset density. Dense or small shapes go
    ``"packed"`` (hardware popcounts over contiguous words); very
    sparse forests over wide record sets go ``"diffsets"``, whose
    per-id gather work shrinks with density while the packed sweep
    does not. Crossover constants come from the committed
    ``BENCH_kernels.json`` per-shape timings, and every policy is
    bit-identical, so the choice only ever affects speed.
    """
    if n_nodes <= 0 or n_records < AUTO_MIN_RECORDS:
        return "packed"
    density = total_ids / (n_nodes * n_records)
    if density < AUTO_DENSITY_CROSSOVER:
        return "diffsets"
    return "packed"


@dataclass(frozen=True)
class ForestStats:
    """Storage accounting for one forest (drives the Fig 4 ablation)."""

    policy: str
    n_nodes: int
    full_nodes: int
    diff_nodes: int
    stored_ids: int
    full_policy_ids: int

    @property
    def compression_ratio(self) -> float:
        """ids stored under ``full`` divided by ids actually stored."""
        if self.stored_ids == 0:
            return 1.0
        return self.full_policy_ids / self.stored_ids


class PatternForest:
    """Record-id storage for an enumeration tree of patterns.

    Parameters
    ----------
    patterns:
        DFS-ordered pattern forest (parents precede children, child
        tidsets subsets of their parent's): a raw
        :func:`repro.mining.closed.mine_closed` list or a
        :class:`~repro.mining.patterns.PatternSet` from any registered
        miner — all-frequent sets arrive as prefix trees that satisfy
        the same contract.
    n_records:
        Number of records in the mined dataset.
    policy:
        One of :data:`POLICY_CHOICES` (default
        :data:`DEFAULT_POLICY`). ``"auto"`` resolves through
        :func:`resolve_auto_policy` at construction; the requested
        string stays visible as ``requested_policy`` and the resolved
        one as ``policy``.
    """

    def __init__(self, patterns: Sequence[Pattern], n_records: int,
                 policy: str = DEFAULT_POLICY) -> None:
        if policy not in POLICY_CHOICES:
            raise MiningError(
                f"unknown storage policy {policy!r}; pick from "
                f"{POLICY_CHOICES}")
        for v, pattern in enumerate(patterns):
            if pattern.parent_id >= v:
                raise MiningError(
                    "patterns must be in DFS order (parent before child)")
        self.requested_policy = policy
        self.n_records = n_records
        self.n_nodes = len(patterns)
        self._supports = np.array([p.support for p in patterns],
                                  dtype=np.int64)
        self._parents = np.array([p.parent_id for p in patterns],
                                 dtype=np.int64)
        if policy == "auto":
            policy = resolve_auto_policy(
                self.n_nodes, n_records, int(self._supports.sum()))
        self.policy = policy
        self._tidsets: Optional[List[int]] = None
        self._matrix: Optional[BitMatrix] = None
        self._id_lists: Optional[List[np.ndarray]] = None
        self._is_diff: Optional[np.ndarray] = None
        full_ids = int(self._supports.sum())
        if policy == "packed":
            # Zero-copy adoption of the miners' packed tidsets: one
            # contiguous stack of already-packed uint64 rows (bigint
            # rows from plugins are converted, interop only).
            try:
                self._matrix = BitMatrix.from_tidsets(
                    [p.tidset for p in patterns], n_records)
            except ValueError as exc:
                raise MiningError(str(exc)) from exc
            stored = full_ids
            full_nodes, diff_nodes = self.n_nodes, 0
        elif policy == "bitset":
            # The bigint ablation arm materializes arbitrary-precision
            # ints from the packed rows (int() goes through
            # TidVector.__index__).
            self._tidsets = [int(p.tidset) for p in patterns]
            stored = full_ids
            full_nodes, diff_nodes = self.n_nodes, 0
        else:
            self._id_lists, self._is_diff = self._build_id_lists(
                patterns, policy)
            self._build_segments()
            stored = sum(len(ids) for ids in self._id_lists)
            diff_nodes = int(self._is_diff.sum())
            full_nodes = self.n_nodes - diff_nodes
        self.stats = ForestStats(
            policy=policy, n_nodes=self.n_nodes, full_nodes=full_nodes,
            diff_nodes=diff_nodes, stored_ids=stored,
            full_policy_ids=full_ids,
        )

    #: Unpacked-bit budget per decode block (bytes); keeps the blocked
    #: id-list decode cache-resident regardless of forest size.
    _DECODE_BLOCK_BYTES = 2 ** 25

    def _build_id_lists(self, patterns: Sequence[Pattern],
                        policy: str):
        """Materialize the stored id list of every node, vectorized.

        The stored rows (full tidsets, or parent-minus-child diffs
        where the paper's rule applies) are assembled word-wise over
        the whole forest at once — the diff rows through one
        ``a & ~b`` arena pass sized by the
        :func:`~repro.bitmat.andnot_counts` kernel — then decoded to
        ascending int32 ids block by block, replacing the historical
        per-node Python loop.
        """
        is_diff = np.zeros(len(patterns), dtype=bool)
        n = self.n_records
        if not patterns:
            return [], is_diff
        arena = np.stack([as_tidvector(p.tidset, n).words
                          for p in patterns])
        supports = self._supports
        parents = self._parents
        if policy == "diffsets":
            has_parent = parents >= 0
            # The paper's rule: a child keeping more than half of its
            # parent's records stores only the difference.
            is_diff[has_parent] = (
                2 * supports[has_parent]
                > supports[parents[has_parent]])
        stored = arena
        counts = supports.astype(np.int64, copy=True)
        diff_rows = np.flatnonzero(is_diff)
        if diff_rows.size:
            stored = arena.copy()
            stored[diff_rows] = (arena[parents[diff_rows]]
                                 & ~arena[diff_rows])
            counts[diff_rows] = andnot_counts(
                arena[parents[diff_rows]], arena[diff_rows])
        id_lists: List[np.ndarray] = []
        row_bytes = max(1, stored.shape[1] * 64)
        block = max(1, self._DECODE_BLOCK_BYTES // row_bytes)
        for start in range(0, len(patterns), block):
            chunk = stored[start:start + block]
            flags = np.unpackbits(chunk.view(np.uint8), axis=1,
                                  bitorder="little")[:, :n]
            # nonzero is row-major, so ids come out grouped by node in
            # ascending record order; the per-row bit counts are the
            # split boundaries.
            ids = np.nonzero(flags)[1].astype(np.int32)
            bounds = np.cumsum(counts[start:start + chunk.shape[0]])
            id_lists.extend(np.split(ids, bounds[:-1]))
        return id_lists, is_diff

    def _build_segments(self) -> None:
        """Concatenate the id lists for one-reduceat class counting.

        ``indicator[concat][starts[v]:starts[v]+lengths[v]].sum()`` is
        node ``v``'s stored-id count; ``np.add.reduceat`` computes all
        of them in one C pass instead of a per-node Python loop.
        """
        assert self._id_lists is not None and self._is_diff is not None
        lengths = np.fromiter((len(ids) for ids in self._id_lists),
                              dtype=np.int64, count=self.n_nodes)
        starts = (np.concatenate(([0], np.cumsum(lengths)[:-1]))
                  if self.n_nodes else np.empty(0, dtype=np.int64))
        # Only non-empty segments reach reduceat: their starts are
        # strictly increasing and in range, which sidesteps both
        # reduceat quirks (an empty segment yields the element at its
        # start instead of zero, and a trailing empty segment's start
        # falls off the array — clipping it would silently truncate
        # the previous segment's sum). Empty segments scatter to 0.
        self._nonempty = lengths > 0
        self._nonempty_starts = starts[self._nonempty].astype(np.intp)
        self._concat_ids = (np.concatenate(self._id_lists)
                            if self.n_nodes and int(lengths.sum())
                            else np.empty(0, dtype=np.int32))
        self._diff_order = np.flatnonzero(self._is_diff)

    def _stored_counts(self, indicator: np.ndarray) -> np.ndarray:
        """Per-node count of stored ids hitting ``indicator`` (int64).

        One fancy index plus one ``np.add.reduceat`` over the
        concatenated id lists of the non-empty segments, scattered
        back to node positions (empty segments count zero).
        """
        counts = np.zeros(self.n_nodes, dtype=np.int64)
        if self._concat_ids.size == 0:
            return counts
        values = indicator.astype(np.int64)[self._concat_ids]
        counts[self._nonempty] = np.add.reduceat(
            values, self._nonempty_starts)
        return counts

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def supports(self) -> np.ndarray:
        """Coverage of every node (int64 array, DFS order)."""
        return self._supports

    @property
    def matrix(self) -> Optional[BitMatrix]:
        """The packed kernel (``None`` unless ``policy == "packed"``)."""
        return self._matrix

    def class_supports(self, class_indicator: np.ndarray) -> np.ndarray:
        """``supp_c(X)`` for every node under one labelling.

        ``class_indicator`` is a boolean array of length ``n_records``
        marking the records of class ``c``. The labelling may be the
        original one or any permutation — item tidsets never change
        (Section 4.2.1), so only this argument varies across
        permutations.
        """
        indicator = np.asarray(class_indicator, dtype=bool)
        if indicator.shape != (self.n_records,):
            raise MiningError(
                f"class indicator must have shape ({self.n_records},)")
        if self.policy == "packed":
            assert self._matrix is not None
            return self._matrix.class_supports(indicator)
        if self.policy == "bitset":
            # Deferred so importing the forest does not pull in the
            # deprecated shim; only the bigint ablation arm needs it.
            from .. import bitset as bs
            class_bits = bs.from_numpy_bool(indicator)
            assert self._tidsets is not None
            return np.fromiter(
                (bs.popcount(t & class_bits) for t in self._tidsets),
                dtype=np.int64, count=self.n_nodes)
        assert self._is_diff is not None
        out = self._stored_counts(indicator)
        # Diffset nodes store the complement relative to their parent:
        # supp_c(v) = supp_c(parent) - |diff ∩ c|. Parents precede
        # children, so resolving in index order sees final parents;
        # only the diff nodes need the (short) Python walk.
        parents = self._parents
        for v in self._diff_order:
            out[v] = out[parents[v]] - out[v]
        return out

    def class_supports_batch(self, class_indicators: np.ndarray,
                             word_block: int = 0) -> np.ndarray:
        """``(B, n_nodes)`` class supports for ``B`` labellings at once.

        Row ``b`` equals ``class_supports(class_indicators[b])``. Under
        the ``"packed"`` policy the whole batch is a handful of
        C-level array operations (the batched permutation pass's hot
        kernel); the other policies answer row by row, so the ablation
        arms stay comparable through one entry point. ``word_block``
        (packed policy only) shards the pass by record range — exact
        int64 partials summed at the boundary, so results are
        bit-identical; see :meth:`repro.bitmat.BitMatrix.
        class_supports_batch`.
        """
        indicators = np.asarray(class_indicators, dtype=bool)
        if indicators.ndim != 2 \
                or indicators.shape[1] != self.n_records:
            raise MiningError(
                f"class indicators must have shape "
                f"(B, {self.n_records})")
        if self.policy == "packed":
            assert self._matrix is not None
            return self._matrix.class_supports_batch(
                indicators, word_block=word_block)
        if indicators.shape[0] == 0:
            return np.zeros((0, self.n_nodes), dtype=np.int64)
        return np.stack([self.class_supports(row)
                         for row in indicators])

    def class_supports_multi(self, class_indicators: np.ndarray,
                             word_block: int = 0) -> np.ndarray:
        """``(C, B, n_nodes)`` supports: all classes, all labellings.

        ``class_indicators[c, b]`` marks the records labelled class
        ``c`` under labelling ``b``; the result's ``[c, b]`` row equals
        ``class_supports(class_indicators[c, b])``. Under the
        ``"packed"`` policy the whole class-by-batch block is one
        kernel dispatch (:meth:`repro.bitmat.BitMatrix.
        class_supports_multi`) instead of one call per class — the
        multiclass permutation pass's entry point; other policies
        flatten through :meth:`class_supports_batch`. ``word_block``
        shards by record range exactly as in
        :meth:`class_supports_batch`.
        """
        indicators = np.asarray(class_indicators, dtype=bool)
        if indicators.ndim != 3 \
                or indicators.shape[2] != self.n_records:
            raise MiningError(
                f"class indicators must have shape "
                f"(C, B, {self.n_records})")
        if self.policy == "packed":
            assert self._matrix is not None
            return self._matrix.class_supports_multi(
                indicators, word_block=word_block)
        n_classes, n_batch = indicators.shape[:2]
        flat = indicators.reshape(n_classes * n_batch, self.n_records)
        return self.class_supports_batch(flat).reshape(
            n_classes, n_batch, self.n_nodes)

    def tidset(self, node_id: int) -> int:
        """Reconstruct the tidset of one node (any policy)."""
        from .. import bitset as bs
        if self.policy == "packed":
            assert self._matrix is not None
            return self._matrix.tidset(node_id)
        if self.policy == "bitset":
            assert self._tidsets is not None
            return self._tidsets[node_id]
        assert self._id_lists is not None and self._is_diff is not None
        if not self._is_diff[node_id]:
            return bs.bitset_from_indices(
                int(i) for i in self._id_lists[node_id])
        parent_bits = self.tidset(int(self._parents[node_id]))
        diff_bits = bs.bitset_from_indices(
            int(i) for i in self._id_lists[node_id])
        return parent_bits & ~diff_bits
