"""Record-id storage for pattern forests (Section 4.2.2 + packed kernel).

The permutation approach re-scores every rule on every permutation,
which needs ``supp_c(X)`` — the number of class-``c`` records containing
``X`` — for every mined pattern and every shuffled labelling. Storing
each pattern's full record-id list makes that a per-pattern scan;
Diffsets (Zaki & Gouda, SIGKDD 2003) exploit the enumeration tree: when
a child's support is more than half its parent's, storing only the
*difference* (records in the parent but not the child) is smaller, and
``supp_c(child) = supp_c(parent) - |diff ∩ class c|``.

:class:`PatternForest` implements four storage policies so the Figure 4
ablation can compare them:

* ``"packed"`` (default) — this library's fastest representation: all
  tidsets packed into one ``(n_nodes, ceil(n_records/64))`` uint64
  :class:`~repro.bitmat.BitMatrix`, class supports via hardware
  popcounts over the whole forest at once (and over whole *batches* of
  labellings at once — see :meth:`class_supports_batch`);
* ``"bitset"`` — the tidset as an arbitrary-precision integer, class
  supports via per-node bigint ``popcount`` (the historical substrate,
  kept as the Fig 4 bigint-baseline ablation arm and as the oracle the
  packed kernels are diffed against);
* ``"diffsets"`` — the paper's rule: full record-id list when
  ``supp(X) <= supp(parent)/2``, otherwise the diffset;
* ``"full"`` — every node stores its full record-id list.

All four count exact integers, so their results are bit-identical;
they differ only in storage footprint and wall-clock speed
(``docs/performance.md`` has measurements and guidance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..bitmat import BitMatrix
from ..errors import MiningError
from ..tidvector import as_tidvector
from .patterns import Pattern

__all__ = ["PatternForest", "ForestStats", "POLICIES", "DEFAULT_POLICY"]

POLICIES = ("full", "diffsets", "bitset", "packed")

#: The policy used when callers do not pick one.
DEFAULT_POLICY = "packed"


@dataclass(frozen=True)
class ForestStats:
    """Storage accounting for one forest (drives the Fig 4 ablation)."""

    policy: str
    n_nodes: int
    full_nodes: int
    diff_nodes: int
    stored_ids: int
    full_policy_ids: int

    @property
    def compression_ratio(self) -> float:
        """ids stored under ``full`` divided by ids actually stored."""
        if self.stored_ids == 0:
            return 1.0
        return self.full_policy_ids / self.stored_ids


class PatternForest:
    """Record-id storage for an enumeration tree of patterns.

    Parameters
    ----------
    patterns:
        DFS-ordered pattern forest (parents precede children, child
        tidsets subsets of their parent's): a raw
        :func:`repro.mining.closed.mine_closed` list or a
        :class:`~repro.mining.patterns.PatternSet` from any registered
        miner — all-frequent sets arrive as prefix trees that satisfy
        the same contract.
    n_records:
        Number of records in the mined dataset.
    policy:
        One of :data:`POLICIES` (default :data:`DEFAULT_POLICY`).
    """

    def __init__(self, patterns: Sequence[Pattern], n_records: int,
                 policy: str = DEFAULT_POLICY) -> None:
        if policy not in POLICIES:
            raise MiningError(
                f"unknown storage policy {policy!r}; pick from {POLICIES}")
        for v, pattern in enumerate(patterns):
            if pattern.parent_id >= v:
                raise MiningError(
                    "patterns must be in DFS order (parent before child)")
        self.policy = policy
        self.n_records = n_records
        self.n_nodes = len(patterns)
        self._supports = np.array([p.support for p in patterns],
                                  dtype=np.int64)
        self._parents = np.array([p.parent_id for p in patterns],
                                 dtype=np.int64)
        self._tidsets: Optional[List[int]] = None
        self._matrix: Optional[BitMatrix] = None
        self._id_lists: Optional[List[np.ndarray]] = None
        self._is_diff: Optional[np.ndarray] = None
        full_ids = int(self._supports.sum())
        if policy == "packed":
            # Zero-copy adoption of the miners' packed tidsets: one
            # contiguous stack of already-packed uint64 rows (bigint
            # rows from plugins are converted, interop only).
            try:
                self._matrix = BitMatrix.from_tidsets(
                    [p.tidset for p in patterns], n_records)
            except ValueError as exc:
                raise MiningError(str(exc)) from exc
            stored = full_ids
            full_nodes, diff_nodes = self.n_nodes, 0
        elif policy == "bitset":
            # The bigint ablation arm materializes arbitrary-precision
            # ints from the packed rows (int() goes through
            # TidVector.__index__).
            self._tidsets = [int(p.tidset) for p in patterns]
            stored = full_ids
            full_nodes, diff_nodes = self.n_nodes, 0
        else:
            self._id_lists, self._is_diff = self._build_id_lists(
                patterns, policy)
            self._build_segments()
            stored = sum(len(ids) for ids in self._id_lists)
            diff_nodes = int(self._is_diff.sum())
            full_nodes = self.n_nodes - diff_nodes
        self.stats = ForestStats(
            policy=policy, n_nodes=self.n_nodes, full_nodes=full_nodes,
            diff_nodes=diff_nodes, stored_ids=stored,
            full_policy_ids=full_ids,
        )

    def _build_id_lists(self, patterns: Sequence[Pattern],
                        policy: str):
        id_lists: List[np.ndarray] = []
        is_diff = np.zeros(len(patterns), dtype=bool)
        n = self.n_records
        for v, pattern in enumerate(patterns):
            parent_id = pattern.parent_id
            use_diff = False
            if policy == "diffsets" and parent_id >= 0:
                parent = patterns[parent_id]
                # The paper's rule: a child keeping more than half of
                # its parent's records stores only the difference.
                use_diff = pattern.support > parent.support / 2
            if use_diff:
                parent = patterns[parent_id]
                diff = as_tidvector(parent.tidset, n).andnot(
                    as_tidvector(pattern.tidset, n))
                id_lists.append(diff.indices())
                is_diff[v] = True
            else:
                id_lists.append(as_tidvector(pattern.tidset,
                                             n).indices())
        return id_lists, is_diff

    def _build_segments(self) -> None:
        """Concatenate the id lists for one-reduceat class counting.

        ``indicator[concat][starts[v]:starts[v]+lengths[v]].sum()`` is
        node ``v``'s stored-id count; ``np.add.reduceat`` computes all
        of them in one C pass instead of a per-node Python loop.
        """
        assert self._id_lists is not None and self._is_diff is not None
        lengths = np.fromiter((len(ids) for ids in self._id_lists),
                              dtype=np.int64, count=self.n_nodes)
        starts = (np.concatenate(([0], np.cumsum(lengths)[:-1]))
                  if self.n_nodes else np.empty(0, dtype=np.int64))
        # Only non-empty segments reach reduceat: their starts are
        # strictly increasing and in range, which sidesteps both
        # reduceat quirks (an empty segment yields the element at its
        # start instead of zero, and a trailing empty segment's start
        # falls off the array — clipping it would silently truncate
        # the previous segment's sum). Empty segments scatter to 0.
        self._nonempty = lengths > 0
        self._nonempty_starts = starts[self._nonempty].astype(np.intp)
        self._concat_ids = (np.concatenate(self._id_lists)
                            if self.n_nodes and int(lengths.sum())
                            else np.empty(0, dtype=np.int32))
        self._diff_order = np.flatnonzero(self._is_diff)

    def _stored_counts(self, indicator: np.ndarray) -> np.ndarray:
        """Per-node count of stored ids hitting ``indicator`` (int64).

        One fancy index plus one ``np.add.reduceat`` over the
        concatenated id lists of the non-empty segments, scattered
        back to node positions (empty segments count zero).
        """
        counts = np.zeros(self.n_nodes, dtype=np.int64)
        if self._concat_ids.size == 0:
            return counts
        values = indicator.astype(np.int64)[self._concat_ids]
        counts[self._nonempty] = np.add.reduceat(
            values, self._nonempty_starts)
        return counts

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def supports(self) -> np.ndarray:
        """Coverage of every node (int64 array, DFS order)."""
        return self._supports

    @property
    def matrix(self) -> Optional[BitMatrix]:
        """The packed kernel (``None`` unless ``policy == "packed"``)."""
        return self._matrix

    def class_supports(self, class_indicator: np.ndarray) -> np.ndarray:
        """``supp_c(X)`` for every node under one labelling.

        ``class_indicator`` is a boolean array of length ``n_records``
        marking the records of class ``c``. The labelling may be the
        original one or any permutation — item tidsets never change
        (Section 4.2.1), so only this argument varies across
        permutations.
        """
        indicator = np.asarray(class_indicator, dtype=bool)
        if indicator.shape != (self.n_records,):
            raise MiningError(
                f"class indicator must have shape ({self.n_records},)")
        if self.policy == "packed":
            assert self._matrix is not None
            return self._matrix.class_supports(indicator)
        if self.policy == "bitset":
            # Deferred so importing the forest does not pull in the
            # deprecated shim; only the bigint ablation arm needs it.
            from .. import bitset as bs
            class_bits = bs.from_numpy_bool(indicator)
            assert self._tidsets is not None
            return np.fromiter(
                (bs.popcount(t & class_bits) for t in self._tidsets),
                dtype=np.int64, count=self.n_nodes)
        assert self._is_diff is not None
        out = self._stored_counts(indicator)
        # Diffset nodes store the complement relative to their parent:
        # supp_c(v) = supp_c(parent) - |diff ∩ c|. Parents precede
        # children, so resolving in index order sees final parents;
        # only the diff nodes need the (short) Python walk.
        parents = self._parents
        for v in self._diff_order:
            out[v] = out[parents[v]] - out[v]
        return out

    def class_supports_batch(self, class_indicators: np.ndarray,
                             ) -> np.ndarray:
        """``(B, n_nodes)`` class supports for ``B`` labellings at once.

        Row ``b`` equals ``class_supports(class_indicators[b])``. Under
        the ``"packed"`` policy the whole batch is a handful of
        C-level array operations (the batched permutation pass's hot
        kernel); the other policies answer row by row, so the ablation
        arms stay comparable through one entry point.
        """
        indicators = np.asarray(class_indicators, dtype=bool)
        if indicators.ndim != 2 \
                or indicators.shape[1] != self.n_records:
            raise MiningError(
                f"class indicators must have shape "
                f"(B, {self.n_records})")
        if self.policy == "packed":
            assert self._matrix is not None
            return self._matrix.class_supports_batch(indicators)
        if indicators.shape[0] == 0:
            return np.zeros((0, self.n_nodes), dtype=np.int64)
        return np.stack([self.class_supports(row)
                         for row in indicators])

    def tidset(self, node_id: int) -> int:
        """Reconstruct the tidset of one node (any policy)."""
        from .. import bitset as bs
        if self.policy == "packed":
            assert self._matrix is not None
            return self._matrix.tidset(node_id)
        if self.policy == "bitset":
            assert self._tidsets is not None
            return self._tidsets[node_id]
        assert self._id_lists is not None and self._is_diff is not None
        if not self._is_diff[node_id]:
            return bs.bitset_from_indices(
                int(i) for i in self._id_lists[node_id])
        parent_bits = self.tidset(int(self._parents[node_id]))
        diff_bits = bs.bitset_from_indices(
            int(i) for i in self._id_lists[node_id])
        return parent_bits & ~diff_bits
