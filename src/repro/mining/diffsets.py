"""Diffsets storage for pattern record-id lists (Section 4.2.2).

The permutation approach re-scores every rule on every permutation,
which needs ``supp_c(X)`` — the number of class-``c`` records containing
``X`` — for every mined pattern and every shuffled labelling. Storing
each pattern's full record-id list makes that a per-pattern scan;
Diffsets (Zaki & Gouda, SIGKDD 2003) exploit the enumeration tree: when
a child's support is more than half its parent's, storing only the
*difference* (records in the parent but not the child) is smaller, and
``supp_c(child) = supp_c(parent) - |diff ∩ class c|``.

:class:`PatternForest` implements three storage policies so the Figure 4
ablation can compare them:

* ``"full"`` — every node stores its full record-id list;
* ``"diffsets"`` — the paper's rule: full list when
  ``supp(X) <= supp(parent)/2``, otherwise the diffset;
* ``"bitset"`` — this library's native representation: the tidset as an
  arbitrary-precision integer, with class supports via ``popcount``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .. import bitset as bs
from ..errors import MiningError
from .patterns import Pattern

__all__ = ["PatternForest", "ForestStats", "POLICIES"]

POLICIES = ("full", "diffsets", "bitset")


@dataclass(frozen=True)
class ForestStats:
    """Storage accounting for one forest (drives the Fig 4 ablation)."""

    policy: str
    n_nodes: int
    full_nodes: int
    diff_nodes: int
    stored_ids: int
    full_policy_ids: int

    @property
    def compression_ratio(self) -> float:
        """ids stored under ``full`` divided by ids actually stored."""
        if self.stored_ids == 0:
            return 1.0
        return self.full_policy_ids / self.stored_ids


class PatternForest:
    """Record-id storage for an enumeration tree of patterns.

    Parameters
    ----------
    patterns:
        DFS-ordered pattern forest (parents precede children, child
        tidsets subsets of their parent's): a raw
        :func:`repro.mining.closed.mine_closed` list or a
        :class:`~repro.mining.patterns.PatternSet` from any registered
        miner — all-frequent sets arrive as prefix trees that satisfy
        the same contract.
    n_records:
        Number of records in the mined dataset.
    policy:
        One of :data:`POLICIES`.
    """

    def __init__(self, patterns: Sequence[Pattern], n_records: int,
                 policy: str = "bitset") -> None:
        if policy not in POLICIES:
            raise MiningError(
                f"unknown storage policy {policy!r}; pick from {POLICIES}")
        for v, pattern in enumerate(patterns):
            if pattern.parent_id >= v:
                raise MiningError(
                    "patterns must be in DFS order (parent before child)")
        self.policy = policy
        self.n_records = n_records
        self.n_nodes = len(patterns)
        self._supports = np.array([p.support for p in patterns],
                                  dtype=np.int64)
        self._parents = np.array([p.parent_id for p in patterns],
                                 dtype=np.int64)
        self._tidsets: Optional[List[int]] = None
        self._id_lists: Optional[List[np.ndarray]] = None
        self._is_diff: Optional[np.ndarray] = None
        full_ids = int(self._supports.sum())
        if policy == "bitset":
            self._tidsets = [p.tidset for p in patterns]
            stored = full_ids
            full_nodes, diff_nodes = self.n_nodes, 0
        else:
            self._id_lists, self._is_diff = self._build_id_lists(
                patterns, policy)
            stored = sum(len(ids) for ids in self._id_lists)
            diff_nodes = int(self._is_diff.sum())
            full_nodes = self.n_nodes - diff_nodes
        self.stats = ForestStats(
            policy=policy, n_nodes=self.n_nodes, full_nodes=full_nodes,
            diff_nodes=diff_nodes, stored_ids=stored,
            full_policy_ids=full_ids,
        )

    def _build_id_lists(self, patterns: Sequence[Pattern],
                        policy: str):
        id_lists: List[np.ndarray] = []
        is_diff = np.zeros(len(patterns), dtype=bool)
        for v, pattern in enumerate(patterns):
            parent_id = pattern.parent_id
            use_diff = False
            if policy == "diffsets" and parent_id >= 0:
                parent = patterns[parent_id]
                # The paper's rule: a child keeping more than half of
                # its parent's records stores only the difference.
                use_diff = pattern.support > parent.support / 2
            if use_diff:
                parent = patterns[parent_id]
                diff_bits = parent.tidset & ~pattern.tidset
                id_lists.append(bs.to_numpy_indices(diff_bits,
                                                    self.n_records))
                is_diff[v] = True
            else:
                id_lists.append(bs.to_numpy_indices(pattern.tidset,
                                                    self.n_records))
        return id_lists, is_diff

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def supports(self) -> np.ndarray:
        """Coverage of every node (int64 array, DFS order)."""
        return self._supports

    def class_supports(self, class_indicator: np.ndarray) -> np.ndarray:
        """``supp_c(X)`` for every node under one labelling.

        ``class_indicator`` is a boolean array of length ``n_records``
        marking the records of class ``c``. The labelling may be the
        original one or any permutation — item tidsets never change
        (Section 4.2.1), so only this argument varies across
        permutations.
        """
        indicator = np.asarray(class_indicator, dtype=bool)
        if indicator.shape != (self.n_records,):
            raise MiningError(
                f"class indicator must have shape ({self.n_records},)")
        if self.policy == "bitset":
            class_bits = bs.from_numpy_bool(indicator)
            assert self._tidsets is not None
            return np.fromiter(
                (bs.popcount(t & class_bits) for t in self._tidsets),
                dtype=np.int64, count=self.n_nodes)
        assert self._id_lists is not None and self._is_diff is not None
        out = np.empty(self.n_nodes, dtype=np.int64)
        for v in range(self.n_nodes):
            ids = self._id_lists[v]
            count = int(indicator[ids].sum()) if len(ids) else 0
            if self._is_diff[v]:
                out[v] = out[self._parents[v]] - count
            else:
                out[v] = count
        return out

    def tidset(self, node_id: int) -> int:
        """Reconstruct the tidset of one node (any policy)."""
        if self.policy == "bitset":
            assert self._tidsets is not None
            return self._tidsets[node_id]
        assert self._id_lists is not None and self._is_diff is not None
        if not self._is_diff[node_id]:
            return bs.bitset_from_indices(
                int(i) for i in self._id_lists[node_id])
        parent_bits = self.tidset(int(self._parents[node_id]))
        diff_bits = bs.bitset_from_indices(
            int(i) for i in self._id_lists[node_id])
        return parent_bits & ~diff_bits
