"""The common pattern result model every miner adapts to.

Every registered miner (:mod:`repro.mining.registry`) returns one
:class:`PatternSet`: a DFS-ordered forest of :class:`Pattern` nodes
plus provenance (which miner, which options). Downstream consumers —
rule generation, the Section 7 representative reduction, the
:class:`~repro.mining.diffsets.PatternForest` storage policies and the
permutation engine built on it — all read the same five structural
facts off a node: dense ``node_id``, ``parent_id`` of an ancestor
emitted earlier, ``items``, ``tidset`` and ``support``. The model
therefore encodes the *contract* those consumers rely on:

* nodes are in DFS/topological order — a parent precedes its children
  (``parent_id < node_id``), so one forward pass can propagate
  per-node state;
* a child's tidset is a subset of its parent's, which is what makes
  the Diffsets storage policy's subtraction
  (``supp_c(child) = supp_c(parent) - |diff ∩ c|``) correct;
* ``node_id`` values are dense array positions, so forests can store
  per-node state in flat numpy arrays.

Closed miners emit this shape natively (the LCM enumeration tree).
All-frequent miners (Apriori, FP-growth) emit flat
:class:`~repro.mining.apriori.FrequentPattern` lists;
:func:`patternset_from_frequent` lifts those into a *prefix tree* —
each pattern's parent is the pattern minus its largest item, which by
anti-monotonicity is itself frequent, emitted earlier, and covers a
superset of the records — so every storage policy and every
correction works identically on all-frequent hypothesis sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from ..errors import MiningError
from ..jsonio import json_safe
from ..tidvector import TidVector, as_tidvector

__all__ = [
    "PATTERNSET_SCHEMA_VERSION",
    "Pattern",
    "PatternSet",
    "patternset_from_frequent",
    "patternset_from_tree",
]

#: Version stamp of the :meth:`PatternSet.to_json` document shape.
#: Bump on any change to the field layout so persisted forests (the
#: service's artifact store) cannot be misread by newer code.
PATTERNSET_SCHEMA_VERSION = 1


@dataclass
class Pattern:
    """One node of a pattern enumeration forest.

    Attributes
    ----------
    node_id:
        Dense index in emission order; parents precede children.
    parent_id:
        ``node_id`` of the tree parent (``-1`` for a root).
    items:
        Original catalog item ids of the pattern (frozen set).
    tidset:
        Packed record set (:class:`~repro.tidvector.TidVector`) of the
        records containing the pattern (a subset of the parent's
        tidset). Plugin miners may still supply bigint bitsets; every
        consumer coerces through
        :func:`~repro.tidvector.as_tidvector`.
    support:
        ``tidset.count()`` — the coverage of rules built on this
        pattern.
    depth:
        Distance from the root in the enumeration tree.
    """

    node_id: int
    parent_id: int
    items: frozenset
    tidset: TidVector
    support: int
    depth: int

    @property
    def length(self) -> int:
        """Number of items in the pattern."""
        return len(self.items)

    def to_json(self) -> Dict[str, object]:
        """Plain-JSON form of this node (items and tids sorted)."""
        if isinstance(self.tidset, TidVector):
            tid_list = [int(t) for t in self.tidset.indices()]
        else:  # bigint interop (plugin miners)
            bits = int(self.tidset)
            tid_list = []
            index = 0
            while bits:
                if bits & 1:
                    tid_list.append(index)
                bits >>= 1
                index += 1
        return {
            "node_id": self.node_id,
            "parent_id": self.parent_id,
            "items": sorted(int(i) for i in self.items),
            "tids": tid_list,
            "support": self.support,
            "depth": self.depth,
        }

    @classmethod
    def from_json(cls, payload: Mapping, n_records: int) -> "Pattern":
        """Rebuild a node from :meth:`to_json` output."""
        return cls(
            node_id=int(payload["node_id"]),
            parent_id=int(payload["parent_id"]),
            items=frozenset(int(i) for i in payload["items"]),
            tidset=TidVector.from_indices(
                (int(t) for t in payload["tids"]), n_records),
            support=int(payload["support"]),
            depth=int(payload["depth"]),
        )

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(id={self.node_id}, "
                f"items={sorted(self.items)}, support={self.support})")


@dataclass
class PatternSet:
    """What one mining run produced: a pattern forest plus provenance.

    A sequence of :class:`Pattern` nodes in DFS order (iterable,
    indexable, sized — drop-in wherever a pattern list was accepted:
    :func:`~repro.mining.rules.generate_rules`,
    :class:`~repro.mining.diffsets.PatternForest`,
    :func:`~repro.mining.representative.reduce_patterns`), carrying
    the mining parameters and the producing miner's identity so
    results remain auditable after the fact.

    Attributes
    ----------
    patterns:
        The forest nodes, DFS-ordered, ``node_id`` == position.
    n_records:
        Size of the mined dataset.
    min_sup:
        The support floor the run used.
    algorithm:
        Canonical name of the registered miner that produced the set
        (stamped by :meth:`repro.mining.registry.Miner.mine`; empty
        for hand-built sets).
    provenance:
        Free-form audit trail: miner capabilities, options, and
        anything a miner wants to hand downstream (e.g. the
        ``general-rules`` miner stores its scored
        :class:`~repro.mining.general.GeneralRuleSet` under
        ``"general_rules"``).
    """

    patterns: List[Pattern]
    n_records: int
    min_sup: int
    algorithm: str = ""
    provenance: Dict[str, object] = field(default_factory=dict)

    # -- sequence protocol: a PatternSet is its pattern list ----------

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self) -> Iterator[Pattern]:
        return iter(self.patterns)

    def __getitem__(self, index):
        return self.patterns[index]

    # -- conveniences -------------------------------------------------

    @property
    def n_patterns(self) -> int:
        """Number of nodes in the forest (roots included)."""
        return len(self.patterns)

    @property
    def n_hypotheses(self) -> int:
        """Rule-bearing patterns (non-empty ``items``): with two
        classes this is the multiple-testing denominator ``Nt``."""
        return sum(1 for pattern in self.patterns if pattern.items)

    def supports(self) -> List[int]:
        """Support of every node, in forest order."""
        return [pattern.support for pattern in self.patterns]

    def to_json(self) -> Dict[str, object]:
        """Plain-JSON document of the whole forest, versioned.

        Everything a consumer needs to rebuild the forest — nodes with
        their tidsets (as sorted record-id lists), the dataset size,
        the mining parameters and the producing miner — under a
        ``schema_version`` stamp. Provenance entries that are not
        JSON-serializable (e.g. the ``general-rules`` miner's scored
        rule object) are dropped; the structural payload always
        round-trips. Floats survive exactly (``json`` renders
        shortest-round-trip ``repr``), so re-rendered output is
        byte-identical to the original.
        """
        return {
            "schema_version": PATTERNSET_SCHEMA_VERSION,
            "n_records": self.n_records,
            "min_sup": self.min_sup,
            "algorithm": self.algorithm,
            "patterns": [pattern.to_json() for pattern in self.patterns],
            "provenance": json_safe(self.provenance),
        }

    @classmethod
    def from_json(cls, payload: Mapping) -> "PatternSet":
        """Rebuild a forest from :meth:`to_json` output.

        Raises :class:`MiningError` on a missing or unsupported
        ``schema_version`` — a persisted artifact from a different
        library version must fail loudly, not deserialize garbage.
        """
        version = payload.get("schema_version")
        if version != PATTERNSET_SCHEMA_VERSION:
            raise MiningError(
                f"cannot read PatternSet JSON with schema_version "
                f"{version!r}; this library writes/reads version "
                f"{PATTERNSET_SCHEMA_VERSION}")
        n_records = int(payload["n_records"])
        return cls(
            patterns=[Pattern.from_json(node, n_records)
                      for node in payload["patterns"]],
            n_records=n_records,
            min_sup=int(payload["min_sup"]),
            algorithm=str(payload.get("algorithm", "")),
            provenance=dict(payload.get("provenance") or {}),
        )

    def validate(self) -> "PatternSet":
        """Check the structural contract; return self when it holds.

        Verifies dense ids, topological parent order, and the
        child-tidset-is-a-subset invariant the Diffsets policy needs.
        Raises :class:`MiningError` on the first violation.
        """
        for position, pattern in enumerate(self.patterns):
            if pattern.node_id != position:
                raise MiningError(
                    f"pattern at position {position} has node_id "
                    f"{pattern.node_id}; ids must be dense positions")
            if pattern.parent_id >= position:
                raise MiningError(
                    f"pattern {position} names parent "
                    f"{pattern.parent_id}; parents must precede "
                    f"children")
            if pattern.parent_id >= 0:
                parent = self.patterns[pattern.parent_id]
                try:
                    child_tids = as_tidvector(pattern.tidset,
                                              self.n_records)
                    parent_tids = as_tidvector(parent.tidset,
                                               self.n_records)
                except ValueError as exc:
                    raise MiningError(
                        f"pattern {position}: {exc}") from exc
                if not child_tids.is_subset(parent_tids):
                    raise MiningError(
                        f"pattern {position}'s tidset is not a subset "
                        f"of its parent's")
        return self


def patternset_from_tree(
    patterns: Sequence[Pattern],
    n_records: int,
    min_sup: int,
    algorithm: str = "",
    provenance: Optional[Mapping[str, object]] = None,
) -> PatternSet:
    """Wrap an already tree-shaped pattern list (closed miners).

    The closed miner's DFS output satisfies the forest contract as-is;
    this only attaches the provenance envelope.
    """
    return PatternSet(patterns=list(patterns), n_records=n_records,
                      min_sup=min_sup, algorithm=algorithm,
                      provenance=dict(provenance or {}))


def patternset_from_frequent(
    patterns: Sequence,
    n_records: int,
    min_sup: int,
    algorithm: str = "",
    provenance: Optional[Mapping[str, object]] = None,
) -> PatternSet:
    """Lift a flat frequent-pattern list into the forest contract.

    Accepts anything with ``items`` / ``tidset`` / ``support`` (e.g.
    :class:`~repro.mining.apriori.FrequentPattern`). Nodes are ordered
    by (length, sorted items) — the canonical emission order both
    Apriori and FP-growth produce — under a synthetic empty root, and
    each pattern's parent is the pattern minus its largest item: a
    frequent (anti-monotonicity), previously emitted (shorter)
    sub-pattern covering a superset of the records. The result is a
    genuine enumeration tree, so the Diffsets storage policy and the
    permutation engine's class-support recursion apply unchanged to
    all-frequent hypothesis sets.
    """
    root = Pattern(node_id=0, parent_id=-1, items=frozenset(),
                   tidset=TidVector.universe(n_records),
                   support=n_records, depth=0)
    nodes: List[Pattern] = [root]
    node_of: Dict[frozenset, int] = {root.items: 0}
    ordered = sorted(patterns,
                     key=lambda p: (len(p.items), tuple(sorted(p.items))))
    for pattern in ordered:
        items = frozenset(pattern.items)
        if not items:
            continue  # an explicit empty pattern collapses into the root
        prefix = (items - {max(items)} if len(items) > 1
                  else frozenset())
        # A max_length-capped or otherwise pruned input may lack the
        # prefix; the root is always a valid (superset-tidset) parent.
        parent_id = node_of.get(prefix, 0)
        node = Pattern(node_id=len(nodes), parent_id=parent_id,
                       items=items, tidset=pattern.tidset,
                       support=pattern.support, depth=len(items))
        node_of[items] = node.node_id
        nodes.append(node)
    return PatternSet(patterns=nodes, n_records=n_records,
                      min_sup=min_sup, algorithm=algorithm,
                      provenance=dict(provenance or {}))
