"""Representative-pattern selection: the paper's Section 7 future work.

    "If the support of two patterns, X and X', is very close and X is a
    sub-pattern of X', then the two rules X => c and X' => c are
    essentially testing the same hypothesis. It is desirable to reduce
    the redundancy and retain a small number of representative patterns
    for testing. This way, the number of tests is reduced and the power
    of the correction approaches can be improved."

Closed patterns already remove *exact* duplicates (identical tidsets);
this module removes *near* duplicates. In the closed-pattern
enumeration tree a child's tidset is a subset of its parent's, so the
Jaccard similarity between a pattern and any ancestor is simply
``supp(descendant) / supp(ancestor)``. A single DFS pass therefore
clusters the tree greedily:

* the root's children start their own clusters;
* a node joins its parent's cluster when its support is within a
  factor ``1 - delta`` of its *parent's* support (``delta = 0`` keeps
  every closed pattern; larger ``delta`` merges more aggressively);
* the *representative* of a cluster is its shallowest member — the
  most general pattern, whose higher coverage gives the best attainable
  p-value for the shared hypothesis.

The merge test is per tree edge, so clusters are chains whose
*consecutive* supports are nearly identical; a member can drift up to
``(1 - delta)^depth`` below its representative over a long chain.
Testing the edge rather than the representative makes the reduction
**monotone in delta** (each edge merges independently, so raising
delta only coarsens the clustering) — the representative-relative
variant is not monotone, because a longer-lived high-support
representative can reject descendants that a fresher, smaller one
would have absorbed.

Testing only representatives shrinks the multiple-testing denominator
``Nt``; Bonferroni's per-test budget ``alpha / Nt`` grows accordingly,
which is exactly the power mechanism Section 7 anticipates. The
``test_ablation_representative`` bench measures both effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..data.dataset import Dataset
from ..errors import MiningError
from .closed import mine_closed
from .patterns import Pattern
from .rules import RuleSet, generate_rules

__all__ = ["RepresentativeSelection", "select_representatives",
           "reduce_patterns", "mine_representative_rules"]


@dataclass
class RepresentativeSelection:
    """Outcome of clustering a closed-pattern forest.

    Attributes
    ----------
    representatives:
        Cluster representatives in original DFS order (the root node is
        retained so downstream consumers still see a rooted forest).
    cluster_of:
        Maps every pattern's ``node_id`` to its representative's
        ``node_id``; representatives map to themselves.
    delta:
        The merge tolerance the selection was built with.
    n_input:
        Number of patterns before reduction.
    """

    representatives: List[Pattern]
    cluster_of: Dict[int, int]
    delta: float
    n_input: int
    _members: Dict[int, List[int]] = field(default_factory=dict, repr=False)

    @property
    def n_clusters(self) -> int:
        """Number of clusters (= number of representatives)."""
        return len(self.representatives)

    @property
    def reduction(self) -> float:
        """Fraction of patterns removed, in [0, 1)."""
        if self.n_input == 0:
            return 0.0
        return 1.0 - self.n_clusters / self.n_input

    def members(self, representative_id: int) -> List[int]:
        """Node ids absorbed by the given representative (itself
        included)."""
        return list(self._members.get(representative_id, []))


def select_representatives(patterns: Sequence[Pattern],
                           delta: float = 0.1,
                           ) -> RepresentativeSelection:
    """Greedily cluster a closed-pattern forest by support proximity.

    Parameters
    ----------
    patterns:
        A DFS-ordered forest as produced by
        :func:`~repro.mining.closed.mine_closed` (parents precede
        children; ``parent_id`` links are consistent).
    delta:
        Merge tolerance: node ``X`` joins its parent ``Y``'s cluster
        when ``supp(X) >= (1 - delta) * supp(Y)``. ``delta = 0``
        merges only exact support ties along tree edges — for closed
        patterns those cannot exist, so nothing merges.

    Notes
    -----
    Clusters follow tree edges, so two patterns land in one cluster
    only when they sit on one root-to-leaf chain — precisely the
    sub-pattern/super-pattern redundancy Section 7 describes. Sibling
    patterns with similar supports but different record sets are never
    merged (they test genuinely different hypotheses). The number of
    representatives is non-increasing in ``delta``.
    """
    if not 0.0 <= delta < 1.0:
        raise MiningError(f"delta must be in [0, 1), got {delta}")
    representatives: List[Pattern] = []
    cluster_of: Dict[int, int] = {}
    members: Dict[int, List[int]] = {}
    by_id: Dict[int, Pattern] = {}
    for pattern in patterns:
        by_id[pattern.node_id] = pattern
        if pattern.parent_id < 0:
            _start_cluster(pattern, representatives, cluster_of, members)
            continue
        parent = by_id[pattern.parent_id]
        if not parent.items:
            # Never absorb real patterns into the (empty) root cluster:
            # the root is not a testable rule.
            _start_cluster(pattern, representatives, cluster_of, members)
            continue
        if pattern.support >= (1.0 - delta) * parent.support:
            parent_rep_id = cluster_of[pattern.parent_id]
            cluster_of[pattern.node_id] = parent_rep_id
            members[parent_rep_id].append(pattern.node_id)
        else:
            _start_cluster(pattern, representatives, cluster_of, members)
    return RepresentativeSelection(
        representatives=representatives, cluster_of=cluster_of,
        delta=delta, n_input=len(by_id), _members=members)


def _start_cluster(pattern: Pattern,
                   representatives: List[Pattern],
                   cluster_of: Dict[int, int],
                   members: Dict[int, List[int]]) -> None:
    representatives.append(pattern)
    cluster_of[pattern.node_id] = pattern.node_id
    members[pattern.node_id] = [pattern.node_id]


def mine_representative_rules(
    dataset: Dataset,
    min_sup: int,
    delta: float = 0.1,
    min_conf: float = 0.0,
    max_length: Optional[int] = None,
    rhs_class: Optional[int] = None,
    scorer: str = "fisher",
    **kwargs,
) -> RuleSet:
    """Section 3 pipeline with Section 7's redundancy reduction.

    Mines closed patterns, keeps one representative per near-duplicate
    chain, and scores rules only on the representatives — so every
    downstream correction sees the reduced hypothesis count ``Nt``.
    The returned ruleset's ``patterns`` are the representatives (DFS
    order is preserved, and ``pattern_id`` values still index into the
    *original* forest's id space via each pattern's ``node_id``).
    """
    if min_sup < 1:
        raise MiningError(f"min_sup must be >= 1, got {min_sup}")
    patterns = mine_closed(dataset.item_tidsets, dataset.n_records,
                           min_sup, max_length=max_length)
    reduced = reduce_patterns(patterns, delta=delta)
    return generate_rules(dataset, reduced, min_sup, min_conf=min_conf,
                          rhs_class=rhs_class, scorer=scorer, **kwargs)


def reduce_patterns(patterns: Sequence[Pattern],
                    delta: float = 0.1) -> List[Pattern]:
    """Representative patterns with densified ids, ready for scoring.

    Rule generation indexes patterns by node_id through the forest,
    so the reduced pattern list is re-densified before use.
    """
    selection = select_representatives(patterns, delta=delta)
    return _reindex(selection)


def _reindex(selection: RepresentativeSelection) -> List[Pattern]:
    """Densify node ids after filtering, keeping parent links valid.

    A removed parent is replaced by its cluster representative — which
    is retained and is an ancestor, because clusters are
    tree-connected — so the reduced forest stays a forest.
    """
    new_id: Dict[int, int] = {}
    out: List[Pattern] = []
    cluster_of = selection.cluster_of
    for pattern in selection.representatives:
        new_id[pattern.node_id] = len(out)
        if pattern.parent_id >= 0:
            mapped_parent = new_id[cluster_of[pattern.parent_id]]
        else:
            mapped_parent = -1
        # Preserve the node class (ClosedPattern stays closed;
        # a prefix-tree Pattern stays a plain Pattern).
        out.append(pattern.__class__(
            node_id=len(out), parent_id=mapped_parent,
            items=pattern.items, tidset=pattern.tidset,
            support=pattern.support, depth=pattern.depth))
    return out
