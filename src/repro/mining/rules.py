"""Class association rule generation (Sections 2.1 and 3).

Rules have the form ``X => c`` with ``X`` a (closed) frequent pattern
and ``c`` a class label. Following Section 3:

* with exactly two classes, testing ``X => c`` is equivalent to testing
  ``X => not-c`` (the two-tailed p-value is identical), so **one rule
  per pattern** is generated — by default on the class the pattern is
  positively associated with, or on a fixed ``rhs_class`` when the
  caller wants a single reporting convention (Table 4 uses
  ``class=good``);
* with ``m > 2`` classes, **m rules per pattern** are generated.

Every rule carries coverage, support, confidence and its two-tailed
Fisher p-value, computed through the shared
:class:`~repro.stats.buffer_cache.BufferCache` so repeated coverages
cost one table lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..data.dataset import Dataset
from ..errors import MiningError
from ..stats.buffer_cache import BufferCache
from ..stats.chi2 import chi2_rule_p_value
from ..tidvector import as_tidvector
from .closed import mine_closed
from .patterns import Pattern

__all__ = ["ClassRule", "RuleSet", "generate_rules", "mine_class_rules"]


@dataclass
class ClassRule:
    """One class association rule ``X => c`` with its statistics.

    ``pattern_id`` indexes the pattern list of the owning
    :class:`RuleSet`; ``items`` are catalog item ids.
    """

    pattern_id: int
    items: frozenset
    class_index: int
    coverage: int
    support: int
    confidence: float
    p_value: float

    @property
    def length(self) -> int:
        """Number of items on the left-hand side."""
        return len(self.items)

    def lift(self, n: int, n_c: int) -> float:
        """Confidence over the class prior ``n_c / n``."""
        if n_c == 0:
            return float("inf") if self.confidence > 0 else 1.0
        return self.confidence / (n_c / n)

    def describe(self, dataset: Dataset) -> str:
        """Render the rule with item and class names."""
        lhs = dataset.catalog.describe_pattern(self.items)
        rhs = dataset.class_names[self.class_index]
        return (f"{lhs} => {rhs}  "
                f"(coverage={self.coverage}, support={self.support}, "
                f"confidence={self.confidence:.3f}, p={self.p_value:.3g})")

    def to_json(self) -> Dict[str, object]:
        """Plain-JSON form; floats round-trip exactly, items sorted."""
        return {
            "pattern_id": self.pattern_id,
            "items": sorted(int(i) for i in self.items),
            "class_index": self.class_index,
            "coverage": self.coverage,
            "support": self.support,
            "confidence": float(self.confidence),
            "p_value": float(self.p_value),
        }

    @classmethod
    def from_json(cls, payload) -> "ClassRule":
        """Rebuild a rule from :meth:`to_json` output."""
        return cls(
            pattern_id=int(payload["pattern_id"]),
            items=frozenset(int(i) for i in payload["items"]),
            class_index=int(payload["class_index"]),
            coverage=int(payload["coverage"]),
            support=int(payload["support"]),
            confidence=float(payload["confidence"]),
            p_value=float(payload["p_value"]),
        )


@dataclass
class RuleSet:
    """The outcome of one mining run: rules plus shared context.

    ``n_tests`` is the paper's ``Nt``: the number of hypotheses tested,
    i.e. ``len(rules)`` (one per pattern for two classes, ``m`` per
    pattern otherwise). Correction procedures consume this, not the
    pattern count.
    """

    dataset: Dataset
    patterns: List[Pattern]
    rules: List[ClassRule]
    min_sup: int
    scorer: str = "fisher"
    caches: Dict[int, BufferCache] = field(default_factory=dict, repr=False)

    @property
    def n_tests(self) -> int:
        """The multiple-testing denominator ``Nt``."""
        return len(self.rules)

    def p_values(self) -> List[float]:
        """P-values of all rules, in rule order."""
        return [rule.p_value for rule in self.rules]

    def sorted_by_p(self) -> List[ClassRule]:
        """Rules in ascending p-value order (stable)."""
        return sorted(self.rules, key=lambda r: r.p_value)

    def describe(self, limit: int = 20) -> str:
        """Multi-line listing of the most significant rules."""
        lines = [f"{len(self.rules)} rules (min_sup={self.min_sup}, "
                 f"scorer={self.scorer}) on {self.dataset.name}:"]
        for rule in self.sorted_by_p()[:limit]:
            lines.append("  " + rule.describe(self.dataset))
        if len(self.rules) > limit:
            lines.append(f"  ... and {len(self.rules) - limit} more")
        return "\n".join(lines)


def generate_rules(
    dataset: Dataset,
    patterns: Sequence[Pattern],
    min_sup: int,
    min_conf: float = 0.0,
    rhs_class: Optional[int] = None,
    scorer: str = "fisher",
    caches: Optional[Dict[int, BufferCache]] = None,
    static_budget_bytes: int = 16 * 1024 * 1024,
    use_static: bool = True,
    use_dynamic: bool = True,
) -> RuleSet:
    """Turn mined patterns into scored class association rules.

    Parameters
    ----------
    patterns:
        Any forest-ordered pattern sequence — a raw
        :func:`~repro.mining.closed.mine_closed` list or a
        :class:`~repro.mining.patterns.PatternSet` from any registered
        miner. Patterns with empty ``items`` (forest roots) bear no
        rule and are skipped.
    min_conf:
        The domain-significance filter; the paper's experiments set it
        to 0 so statistical control is exercised alone.
    rhs_class:
        For binary data, force every rule onto this class index (the
        paper's Table 4 reports rules as ``=> good``); ``None`` picks
        the positively associated class per pattern. Ignored when the
        dataset has more than two classes.
    scorer:
        ``"fisher"`` (exact, the paper's choice), ``"fisher-midp"``
        (Lancaster mid-p, less conservative) or ``"chi2"``.
    caches:
        Optional per-class :class:`BufferCache` map to share across
        calls (the permutation engine passes the same caches for every
        permutation).
    """
    if scorer not in ("fisher", "fisher-midp", "chi2"):
        raise MiningError(f"unknown scorer {scorer!r}")
    if not 0.0 <= min_conf <= 1.0:
        raise MiningError("min_conf must be within [0, 1]")
    if rhs_class is not None and not 0 <= rhs_class < dataset.n_classes:
        raise MiningError(f"rhs_class {rhs_class} out of range")
    n = dataset.n_records
    class_supports = [dataset.class_support(c)
                      for c in range(dataset.n_classes)]
    if caches is None:
        caches = {}
    for c in range(dataset.n_classes):
        if c not in caches:
            caches[c] = BufferCache(
                n, class_supports[c],
                static_budget_bytes=static_budget_bytes,
                min_sup=min_sup, use_static=use_static,
                use_dynamic=use_dynamic,
                midp=(scorer == "fisher-midp"))
    score = _make_scorer(scorer, caches, n, class_supports)
    rules: List[ClassRule] = []
    binary = dataset.n_classes == 2
    for pattern in patterns:
        if not pattern.items:
            continue  # the root (empty LHS) is not a rule
        coverage = pattern.support
        tids = as_tidvector(pattern.tidset, n)
        if binary:
            supp_c0 = tids.intersection_count(dataset.class_tidset(0))
            supports = (supp_c0, coverage - supp_c0)
            if rhs_class is not None:
                target = rhs_class
            else:
                target = _positively_associated_class(
                    supports, coverage, class_supports, n)
            candidates = [target]
        else:
            supports = tuple(
                tids.intersection_count(dataset.class_tidset(c))
                for c in range(dataset.n_classes))
            candidates = list(range(dataset.n_classes))
        for c in candidates:
            support = supports[c]
            confidence = support / coverage if coverage else 0.0
            if confidence < min_conf:
                continue
            rules.append(ClassRule(
                pattern_id=pattern.node_id,
                items=pattern.items,
                class_index=c,
                coverage=coverage,
                support=support,
                confidence=confidence,
                p_value=score(support, coverage, c),
            ))
    return RuleSet(dataset=dataset, patterns=list(patterns), rules=rules,
                   min_sup=min_sup, scorer=scorer, caches=caches)


def mine_class_rules(
    dataset: Dataset,
    min_sup: int,
    min_conf: float = 0.0,
    max_length: Optional[int] = None,
    rhs_class: Optional[int] = None,
    scorer: str = "fisher",
    **kwargs,
) -> RuleSet:
    """Mine closed patterns and score their class rules in one call.

    This is the Section 3 pipeline: closed frequent pattern mining with
    class-frequency counting, producing one hypothesis per pattern (two
    classes) or ``m`` per pattern (``m > 2`` classes).
    """
    if min_sup < 1:
        raise MiningError(f"min_sup must be >= 1, got {min_sup}")
    if min_sup > dataset.n_records:
        raise MiningError(
            f"min_sup={min_sup} exceeds dataset size {dataset.n_records}")
    patterns = mine_closed(dataset.item_tidsets, dataset.n_records,
                           min_sup, max_length=max_length)
    return generate_rules(dataset, patterns, min_sup, min_conf=min_conf,
                          rhs_class=rhs_class, scorer=scorer, **kwargs)


def _positively_associated_class(supports: Sequence[int], coverage: int,
                                 class_supports: Sequence[int],
                                 n: int) -> int:
    """Class with the largest lift within the pattern's records."""
    best_class = 0
    best_lift = float("-inf")
    for c, support in enumerate(supports):
        prior = class_supports[c] / n if n else 0.0
        confidence = support / coverage if coverage else 0.0
        lift = confidence / prior if prior > 0 else float("inf")
        if lift > best_lift:
            best_lift = lift
            best_class = c
    return best_class


def _make_scorer(scorer: str, caches: Dict[int, BufferCache], n: int,
                 class_supports: Sequence[int],
                 ) -> Callable[[int, int, int], float]:
    if scorer in ("fisher", "fisher-midp"):
        # Mid-p vs exact is decided by how the caches were built; the
        # lookup path is identical.
        def fisher_score(support: int, coverage: int, c: int) -> float:
            return caches[c].p_value(support, coverage)
        return fisher_score

    def chi2_score(support: int, coverage: int, c: int) -> float:
        return chi2_rule_p_value(support, n, class_supports[c], coverage)
    return chi2_score
