"""Mining substrate: vertical views, miners, the registry, rules.

Miners are pluggable: every algorithm is described by one
:class:`~repro.mining.registry.Miner` spec returning the common
:class:`~repro.mining.patterns.PatternSet` model, and consumers
resolve algorithms by name through :func:`resolve_miner` — see
``docs/mining.md``.
"""

from .apriori import FrequentPattern, mine_apriori
from .fpgrowth import FPNode, FPTree, mine_fpgrowth
from .general import (
    GeneralRule,
    GeneralRuleSet,
    mine_general_rules,
    rules_from_patterns,
)
from .closed import (
    ClosedPattern,
    iter_pattern_tree,
    mine_closed,
    mine_closed_from_view,
)
from .diffsets import (
    DEFAULT_POLICY,
    POLICIES,
    POLICY_CHOICES,
    ForestStats,
    PatternForest,
    resolve_auto_policy,
)
from .patterns import (
    Pattern,
    PatternSet,
    patternset_from_frequent,
    patternset_from_tree,
)
from .registry import (
    Miner,
    available_miners,
    get_miner,
    mine_patterns,
    miner_names,
    register_miner,
    resolve_miner,
    unregister_miner,
)
from .representative import (
    RepresentativeSelection,
    mine_representative_rules,
    select_representatives,
)
from .rules import ClassRule, RuleSet, generate_rules, mine_class_rules
from .tidsets import VerticalView, build_vertical_view

__all__ = [
    "FrequentPattern",
    "mine_apriori",
    "FPNode",
    "FPTree",
    "mine_fpgrowth",
    "Miner",
    "Pattern",
    "PatternSet",
    "available_miners",
    "get_miner",
    "mine_patterns",
    "miner_names",
    "patternset_from_frequent",
    "patternset_from_tree",
    "register_miner",
    "resolve_miner",
    "unregister_miner",
    "GeneralRule",
    "GeneralRuleSet",
    "mine_general_rules",
    "rules_from_patterns",
    "RepresentativeSelection",
    "mine_representative_rules",
    "select_representatives",
    "ClosedPattern",
    "iter_pattern_tree",
    "mine_closed",
    "mine_closed_from_view",
    "DEFAULT_POLICY",
    "POLICIES",
    "POLICY_CHOICES",
    "ForestStats",
    "PatternForest",
    "resolve_auto_policy",
    "ClassRule",
    "RuleSet",
    "generate_rules",
    "mine_class_rules",
    "VerticalView",
    "build_vertical_view",
]
