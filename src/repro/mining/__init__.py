"""Mining substrate: vertical views, closed patterns, diffsets, rules."""

from .apriori import FrequentPattern, mine_apriori
from .fpgrowth import FPNode, FPTree, mine_fpgrowth
from .general import (
    GeneralRule,
    GeneralRuleSet,
    mine_general_rules,
    rules_from_patterns,
)
from .closed import (
    ClosedPattern,
    iter_pattern_tree,
    mine_closed,
    mine_closed_from_view,
)
from .diffsets import POLICIES, ForestStats, PatternForest
from .representative import (
    RepresentativeSelection,
    mine_representative_rules,
    select_representatives,
)
from .rules import ClassRule, RuleSet, generate_rules, mine_class_rules
from .tidsets import VerticalView, build_vertical_view

__all__ = [
    "FrequentPattern",
    "mine_apriori",
    "FPNode",
    "FPTree",
    "mine_fpgrowth",
    "GeneralRule",
    "GeneralRuleSet",
    "mine_general_rules",
    "rules_from_patterns",
    "RepresentativeSelection",
    "mine_representative_rules",
    "select_representatives",
    "ClosedPattern",
    "iter_pattern_tree",
    "mine_closed",
    "mine_closed_from_view",
    "POLICIES",
    "ForestStats",
    "PatternForest",
    "ClassRule",
    "RuleSet",
    "generate_rules",
    "mine_class_rules",
    "VerticalView",
    "build_vertical_view",
]
