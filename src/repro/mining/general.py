"""General association rules ``X => Y`` with item consequents.

Section 2 of the paper scopes the study to *class* association rules
but notes that "the definitions and methods described in the paper can
be easily extended to other forms of association rules". This module
is that extension for the classic market-basket form (Agrawal et al.,
SIGMOD 1993): both sides of a rule are itemsets.

The statistical treatment carries over verbatim — a rule ``X => Y``
tests the independence of the indicator of ``X`` against the indicator
of ``Y``, a 2x2 table scored by the same two-tailed Fisher exact test
(``n`` records, margin ``supp(Y)`` in place of the class support,
margin ``supp(X)``, observed cell ``supp(X u Y)``).

:class:`GeneralRuleSet` is deliberately duck-type compatible with
:class:`~repro.mining.rules.RuleSet` where correction procedures are
concerned (``rules`` with ``p_value`` attributes, ``p_values()``,
``n_tests``), so the whole *direct-adjustment* catalogue applies
unchanged: Bonferroni, Holm, Hochberg, Šidák, BH, BY, Storey, BKY.
The permutation and holdout approaches are specific to class labels
(they shuffle or split the label column) and are not available for
general rules — re-sampling item columns would destroy the very
correlations being tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence

from ..errors import MiningError
from ..stats.fisher import fisher_two_tailed
from ..stats.logfact import default_buffer
from .apriori import FrequentPattern
from .fpgrowth import mine_fpgrowth

__all__ = ["GeneralRule", "GeneralRuleSet", "mine_general_rules",
           "rules_from_patterns"]


@dataclass
class GeneralRule:
    """One association rule ``X => Y`` over item ids, with statistics.

    ``coverage`` is ``supp(X)``, ``consequent_support`` is ``supp(Y)``
    and ``support`` is ``supp(X u Y)`` — the same vocabulary the class
    rules use, with the consequent margin taking the class margin's
    role in the Fisher table.
    """

    antecedent: frozenset
    consequent: frozenset
    coverage: int
    consequent_support: int
    support: int
    confidence: float
    p_value: float

    @property
    def length(self) -> int:
        """Number of items on the left-hand side."""
        return len(self.antecedent)

    @property
    def items(self) -> frozenset:
        """All items of the rule (``X u Y``)."""
        return self.antecedent | self.consequent

    def lift(self, n: int) -> float:
        """Confidence over the consequent's base rate."""
        if self.consequent_support == 0:
            return float("inf") if self.confidence > 0 else 1.0
        return self.confidence / (self.consequent_support / n)

    def describe(self, item_names: Optional[Sequence[str]] = None) -> str:
        """Render the rule, with item names when provided."""
        def label(item: int) -> str:
            if item_names is not None:
                return str(item_names[item])
            return str(item)

        lhs = "{" + ", ".join(sorted(label(i)
                                     for i in self.antecedent)) + "}"
        rhs = "{" + ", ".join(sorted(label(i)
                                     for i in self.consequent)) + "}"
        return (f"{lhs} => {rhs}  "
                f"(coverage={self.coverage}, support={self.support}, "
                f"confidence={self.confidence:.3f}, "
                f"p={self.p_value:.3g})")


@dataclass
class GeneralRuleSet:
    """The outcome of one general-rule mining run.

    Duck-type compatible with :class:`~repro.mining.rules.RuleSet` for
    every direct-adjustment correction: exposes ``rules``,
    ``p_values()`` and ``n_tests``.
    """

    rules: List[GeneralRule]
    n_records: int
    min_sup: int

    @property
    def n_tests(self) -> int:
        """The multiple-testing denominator ``Nt``."""
        return len(self.rules)

    def p_values(self) -> List[float]:
        """P-values of all rules, in rule order."""
        return [rule.p_value for rule in self.rules]

    def sorted_by_p(self) -> List[GeneralRule]:
        """Rules in ascending p-value order (stable)."""
        return sorted(self.rules, key=lambda r: r.p_value)

    def describe(self, limit: int = 20,
                 item_names: Optional[Sequence[str]] = None) -> str:
        """Multi-line listing of the most significant rules."""
        lines = [f"{len(self.rules)} general rules "
                 f"(min_sup={self.min_sup}, n={self.n_records}):"]
        for rule in self.sorted_by_p()[:limit]:
            lines.append("  " + rule.describe(item_names))
        if len(self.rules) > limit:
            lines.append(f"  ... and {len(self.rules) - limit} more")
        return "\n".join(lines)


def mine_general_rules(
    item_tidsets: Sequence[int],
    n_records: int,
    min_sup: int,
    min_conf: float = 0.0,
    max_length: Optional[int] = None,
    max_consequent: int = 1,
) -> GeneralRuleSet:
    """Mine and score all general association rules.

    Frequent patterns come from FP-growth; every frequent pattern
    ``Z`` with at least two items is split into ``Z \\ Y => Y`` for
    every consequent ``Y`` of size up to ``max_consequent``. Both
    sides of an emitted rule are frequent by anti-monotonicity.

    Parameters
    ----------
    min_conf:
        Domain-significance filter, exactly as for class rules. Note
        that filtering by confidence *before* correction changes the
        hypothesis count; the paper's experiments use 0.
    max_consequent:
        Cap on ``|Y|``. The default 1 matches the classic Agrawal
        formulation and keeps the hypothesis count linear in the
        pattern count rather than exponential.
    """
    if min_sup < 1:
        raise MiningError(f"min_sup must be >= 1, got {min_sup}")
    if not 0.0 <= min_conf <= 1.0:
        raise MiningError("min_conf must be within [0, 1]")
    if max_consequent < 1:
        raise MiningError("max_consequent must be >= 1")
    patterns = mine_fpgrowth(item_tidsets, n_records, min_sup,
                             max_length=max_length)
    return rules_from_patterns(patterns, n_records, min_sup,
                               min_conf=min_conf,
                               max_consequent=max_consequent)


def rules_from_patterns(
    patterns: Sequence[FrequentPattern],
    n_records: int,
    min_sup: int,
    min_conf: float = 0.0,
    max_consequent: int = 1,
) -> GeneralRuleSet:
    """Split pre-mined frequent patterns into scored rules.

    Exposed separately so callers who already hold a pattern set (for
    instance from :func:`~repro.mining.apriori.mine_apriori`) do not
    mine twice.
    """
    support_of: Dict[frozenset, int] = {p.items: p.support
                                        for p in patterns}
    logfact = default_buffer()
    # Fisher p-values repeat heavily across rules sharing margins;
    # memoise on the (support, supp_y, supp_x) triple.
    p_cache: Dict[tuple, float] = {}

    def p_value(support: int, supp_y: int, supp_x: int) -> float:
        key = (support, supp_y, supp_x)
        cached = p_cache.get(key)
        if cached is None:
            cached = fisher_two_tailed(support, n_records, supp_y,
                                       supp_x, logfact)
            p_cache[key] = cached
        return cached

    rules: List[GeneralRule] = []
    for pattern in patterns:
        if pattern.length < 2:
            continue
        items = sorted(pattern.items)
        for size in range(1, min(max_consequent, len(items) - 1) + 1):
            for consequent_items in combinations(items, size):
                consequent = frozenset(consequent_items)
                antecedent = pattern.items - consequent
                coverage = support_of[antecedent]
                consequent_support = support_of[consequent]
                confidence = (pattern.support / coverage
                              if coverage else 0.0)
                if confidence < min_conf:
                    continue
                rules.append(GeneralRule(
                    antecedent=antecedent,
                    consequent=consequent,
                    coverage=coverage,
                    consequent_support=consequent_support,
                    support=pattern.support,
                    confidence=confidence,
                    p_value=p_value(pattern.support,
                                    consequent_support, coverage),
                ))
    return GeneralRuleSet(rules=rules, n_records=n_records,
                          min_sup=min_sup)
