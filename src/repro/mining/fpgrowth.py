"""FP-growth: pattern-growth mining of all frequent patterns.

A second full-pattern miner (Han, Pei & Yin, SIGMOD 2000) alongside the
level-wise Apriori baseline. FP-growth compresses the database into a
prefix tree (the *FP-tree*) whose paths share common prefixes, then
recursively mines *conditional* trees — one per suffix item — without
candidate generation. On dense attribute-valued data the tree is far
smaller than the record list, which is why pattern-growth miners
superseded Apriori in practice.

The miner returns the same :class:`~repro.mining.apriori.FrequentPattern`
records as :func:`~repro.mining.apriori.mine_apriori` (including exact
tidsets, reconstructed from the vertical bitsets at emission time), so
the two serve as independent cross-check oracles for each other and for
the closed miner: three implementations, one answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import MiningError
from ..tidvector import TidVector, as_tidvector
from .apriori import FrequentPattern

__all__ = ["FPTree", "FPNode", "mine_fpgrowth"]


@dataclass
class FPNode:
    """One FP-tree node: an item with the count of paths through it."""

    item: int
    count: int = 0
    parent: Optional["FPNode"] = None
    children: Dict[int, "FPNode"] = field(default_factory=dict)
    #: Next node carrying the same item (the header-table chain).
    link: Optional["FPNode"] = None

    def __repr__(self) -> str:
        return f"FPNode(item={self.item}, count={self.count})"


class FPTree:
    """Prefix tree over transactions with per-item header chains.

    Items inside each transaction are sorted by *descending global
    frequency* (ties broken by item id) before insertion, the ordering
    that maximises prefix sharing. The header table threads all nodes
    of an item together so conditional pattern bases can be read off in
    one chain walk.
    """

    def __init__(self) -> None:
        self.root = FPNode(item=-1)
        self.headers: Dict[int, FPNode] = {}
        self._tails: Dict[int, FPNode] = {}
        self.item_counts: Dict[int, int] = {}

    def insert(self, items: Sequence[int], count: int = 1) -> None:
        """Insert one (ordered) transaction with multiplicity ``count``."""
        if count < 1:
            raise MiningError("transaction count must be >= 1")
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = FPNode(item=item, parent=node)
                node.children[item] = child
                self._append_to_chain(item, child)
            child.count += count
            node = child
        for item in items:
            self.item_counts[item] = self.item_counts.get(item, 0) + count

    def _append_to_chain(self, item: int, node: FPNode) -> None:
        if item not in self.headers:
            self.headers[item] = node
        else:
            self._tails[item].link = node
        self._tails[item] = node

    def nodes_of(self, item: int) -> List[FPNode]:
        """All nodes carrying ``item``, in insertion order."""
        out: List[FPNode] = []
        node = self.headers.get(item)
        while node is not None:
            out.append(node)
            node = node.link
        return out

    def prefix_paths(self, item: int) -> List[Tuple[List[int], int]]:
        """Conditional pattern base of ``item``.

        Each entry is ``(path items from root, count)`` where the path
        excludes ``item`` itself and the count is the item node's.
        """
        paths: List[Tuple[List[int], int]] = []
        for node in self.nodes_of(item):
            path: List[int] = []
            up = node.parent
            while up is not None and up.item != -1:
                path.append(up.item)
                up = up.parent
            path.reverse()
            paths.append((path, node.count))
        return paths

    @property
    def n_nodes(self) -> int:
        """Number of item nodes (root excluded)."""
        total = 0
        stack = list(self.root.children.values())
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.children.values())
        return total

    def is_single_path(self) -> bool:
        """True when the tree is one chain (enables the fast exit)."""
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return False
            node = next(iter(node.children.values()))
        return True


def mine_fpgrowth(
    item_tidsets: Sequence,
    n_records: int,
    min_sup: int,
    max_length: Optional[int] = None,
) -> List[FrequentPattern]:
    """Mine all frequent patterns by recursive pattern growth.

    Parameters mirror :func:`~repro.mining.apriori.mine_apriori`
    (packed :class:`~repro.tidvector.TidVector` tidsets, bigints
    accepted for interop); the result is the identical pattern set
    ordered by (length, items). Tidsets are attached by intersecting
    the packed vertical rows at emission, so downstream rule scoring
    sees no difference between the two miners.
    """
    if min_sup < 1:
        raise MiningError(f"min_sup must be >= 1, got {min_sup}")
    if n_records < 0:
        raise MiningError("n_records must be non-negative")
    if max_length is not None and max_length < 1:
        return []
    try:
        vectors = [as_tidvector(t, n_records) for t in item_tidsets]
    except ValueError as exc:
        raise MiningError(str(exc)) from exc
    supports = {item: tids.count()
                for item, tids in enumerate(vectors)}
    frequent = {item for item, supp in supports.items()
                if supp >= min_sup}
    # Descending frequency, item id as tie-break: the canonical FP order.
    rank = {item: position for position, item in enumerate(
        sorted(frequent, key=lambda i: (-supports[i], i)))}
    # Build transactions item-by-item from each tidset's set bits
    # (O(sum of supports)) instead of probing every item's bitset for
    # every record (O(n_records * n_items), ruinous on sparse data).
    # Visiting items in rank order leaves each transaction already
    # sorted by descending global frequency, and indices() yields
    # ascending record ids, so the insertion order — and therefore the
    # tree — is identical to the per-record construction.
    transactions: List[List[int]] = [[] for _ in range(n_records)]
    for item in sorted(frequent, key=lambda i: rank[i]):
        for record in vectors[item].indices():
            transactions[record].append(item)
    tree = FPTree()
    for transaction in transactions:
        if transaction:
            tree.insert(transaction)
    found: List[Tuple[int, ...]] = []
    _growth(tree, (), min_sup, max_length, found)
    found.sort(key=lambda items: (len(items), items))
    out: List[FrequentPattern] = []
    for items in found:
        tids = _intersect_tidsets(items, vectors, n_records)
        out.append(FrequentPattern(frozenset(items), tids,
                                   tids.count()))
    return out


def _growth(tree: FPTree, suffix: Tuple[int, ...], min_sup: int,
            max_length: Optional[int],
            out: List[Tuple[int, ...]]) -> None:
    """Emit every frequent extension of ``suffix`` found in ``tree``."""
    if max_length is not None and len(suffix) >= max_length:
        return
    # Least-frequent-first is the classical recursion order; any order
    # is correct, this one keeps conditional trees small.
    items = sorted(tree.item_counts,
                   key=lambda i: (tree.item_counts[i], -i))
    for item in items:
        support = tree.item_counts[item]
        if support < min_sup:
            continue
        extended = tuple(sorted(suffix + (item,)))
        out.append(extended)
        conditional = _conditional_tree(tree, item, min_sup)
        if conditional.item_counts:
            _growth(conditional, extended, min_sup, max_length, out)


def _conditional_tree(tree: FPTree, item: int, min_sup: int) -> FPTree:
    """Build the conditional FP-tree of ``item``.

    Prefix paths are filtered to items that remain frequent *within the
    pattern base* (conditional support), then reinserted in an order
    consistent with the parent tree (paths already share it).
    """
    paths = tree.prefix_paths(item)
    conditional_counts: Dict[int, int] = {}
    for path, count in paths:
        for path_item in path:
            conditional_counts[path_item] = (
                conditional_counts.get(path_item, 0) + count)
    keep = {i for i, c in conditional_counts.items() if c >= min_sup}
    conditional = FPTree()
    for path, count in paths:
        filtered = [i for i in path if i in keep]
        if filtered:
            conditional.insert(filtered, count)
    return conditional


def _intersect_tidsets(items: Sequence[int],
                       item_tidsets: Sequence[TidVector],
                       n_records: int) -> TidVector:
    tids = TidVector.universe(n_records)
    for item in items:
        tids &= item_tidsets[item]
    return tids
