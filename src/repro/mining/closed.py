"""Closed frequent pattern mining (Section 3 of the paper).

The paper mines *closed* frequent patterns as rule left-hand sides: a
closed pattern is the unique longest pattern among all patterns
occurring in the same set of records, so using closed patterns removes
rules that are exact duplicates (same coverage, same confidence, same
p-value) of another rule.

The miner is a depth-first walk of the set-enumeration tree (Rymon
1992) using LCM-style *prefix-preserving closure extension* (Uno et
al.), which enumerates every closed frequent pattern exactly once with
no global duplicate checking:

* the closure of a tidset ``T`` is the set of all frequent items whose
  tidset contains ``T``;
* a closed pattern ``P`` with core position ``i`` is extended by each
  item position ``j > i`` not already in ``P``; the closure ``Q`` of
  ``P + {j}`` is kept only when its members below position ``j`` match
  ``P``'s — otherwise ``Q`` is reachable from a lexicographically
  earlier branch and is pruned here.

The enumeration runs directly on the packed vertical view: tidset
intersections are word-wise uint64 ops and each closure check is one
vectorized ``tids & ~row`` pass over the whole item matrix
(:meth:`~repro.mining.tidsets.VerticalView.superset_positions`)
instead of a per-item Python scan.

Every emitted node records its tree parent, which the Diffsets storage
policy (Section 4.2.2) and the permutation engine rely on.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from ..errors import MiningError
from ..tidvector import TidVector
from .patterns import Pattern
from .tidsets import VerticalView, build_vertical_view

__all__ = ["ClosedPattern", "mine_closed", "mine_closed_from_view",
           "iter_pattern_tree"]


class ClosedPattern(Pattern):
    """One node of the closed-pattern enumeration tree.

    A :class:`~repro.mining.patterns.Pattern` whose ``items`` are
    additionally *closed*: the unique longest pattern among all
    patterns with the same tidset. Field semantics are inherited
    unchanged (dense DFS ``node_id``, ``parent_id`` of the tree
    parent, ``items``, ``tidset``, ``support``, ``depth``).
    """


def mine_closed(
    item_tidsets: Sequence,
    n_records: int,
    min_sup: int,
    max_length: Optional[int] = None,
    item_order: str = "support-ascending",
) -> List[ClosedPattern]:
    """Mine all closed frequent patterns from per-item tidsets.

    Parameters
    ----------
    item_tidsets:
        ``item_tidsets[i]`` is the packed record set
        (:class:`~repro.tidvector.TidVector`) of records containing
        item ``i``, as stored by :class:`repro.data.Dataset`; bigint
        bitsets are accepted for interop and coerced once.
    n_records:
        Number of records ``n``.
    min_sup:
        Minimum coverage; patterns below it are pruned (anti-monotone).
    max_length:
        Optional cap on pattern length; a closed pattern longer than
        the cap is not emitted and its branch is not explored.
    item_order:
        Mining order heuristic, see
        :func:`repro.mining.tidsets.build_vertical_view`.

    Returns
    -------
    list of :class:`ClosedPattern` in DFS order. The root node (the
    closure of the empty pattern — non-empty only when some item occurs
    in every record) is always first; rule generation skips patterns
    with no items.
    """
    view = build_vertical_view(item_tidsets, n_records, min_sup, item_order)
    return mine_closed_from_view(view, max_length=max_length)


def mine_closed_from_view(
    view: VerticalView,
    max_length: Optional[int] = None,
) -> List[ClosedPattern]:
    """Mine closed patterns from a prepared :class:`VerticalView`."""
    if max_length is not None and max_length < 0:
        raise MiningError("max_length must be non-negative")
    n = view.n_records
    min_sup = view.min_sup
    out: List[ClosedPattern] = []
    if n < min_sup:
        return out

    root_tids = TidVector.universe(n)
    root_positions = tuple(int(p)
                           for p in view.superset_positions(root_tids))
    if max_length is not None and len(root_positions) > max_length:
        return out
    root_items = frozenset(view.item_ids[p] for p in root_positions)
    out.append(ClosedPattern(
        node_id=0, parent_id=-1, items=root_items, tidset=root_tids,
        support=n, depth=0,
    ))

    # Iterative DFS. A stack entry describes a *not yet emitted* closed
    # pattern: (positions, tidset, core position, parent node id,
    # depth). Children are pushed in descending extension order so pops
    # explore ascending item positions, matching the recursive LCM.
    stack: List[Tuple[Tuple[int, ...], TidVector, int, int, int]] = []
    _push_children(stack, root_positions, root_tids, -1, 0, 0,
                   view, max_length)
    while stack:
        positions, tids, _core, parent_id, depth = stack.pop()
        node_id = len(out)
        items = frozenset(view.item_ids[p] for p in positions)
        out.append(ClosedPattern(
            node_id=node_id, parent_id=parent_id, items=items,
            tidset=tids, support=tids.count(), depth=depth,
        ))
        _push_children(stack, positions, tids, _core, node_id, depth,
                       view, max_length)
    return out


def _push_children(
    stack: List[Tuple[Tuple[int, ...], TidVector, int, int, int]],
    positions: Tuple[int, ...],
    tids: TidVector,
    core: int,
    node_id: int,
    depth: int,
    view: VerticalView,
    max_length: Optional[int],
) -> None:
    """Push every prefix-preserving closure extension of one node."""
    tidsets = view.tidsets
    m = view.n_items
    min_sup = view.min_sup
    member = set(positions)
    # One fused AND+popcount pass over the candidate block replaces the
    # per-candidate intersection_count loop; pruned branches never
    # allocate a tidset.
    counts = view.candidate_supports(tids, core + 1)
    for j in range(m - 1, core, -1):
        if j in member:
            continue
        if counts[j - core - 1] < min_sup:
            continue
        new_tids = tids & tidsets[j]
        closure = tuple(int(p)
                        for p in view.superset_positions(new_tids))
        if not _prefix_preserved(closure, positions, j):
            continue
        if max_length is not None and len(closure) > max_length:
            continue
        stack.append((closure, new_tids, j, node_id, depth + 1))


def _prefix_preserved(closure: Sequence[int], positions: Sequence[int],
                      j: int) -> bool:
    """LCM duplicate check: closure and parent agree below position j."""
    closure_prefix = [p for p in closure if p < j]
    parent_prefix = [p for p in positions if p < j]
    return closure_prefix == parent_prefix


def iter_pattern_tree(patterns: Sequence[ClosedPattern]
                      ) -> Iterator[Tuple[ClosedPattern, ClosedPattern]]:
    """Yield ``(parent, child)`` pairs of the enumeration tree."""
    for pattern in patterns:
        if pattern.parent_id >= 0:
            yield patterns[pattern.parent_id], pattern
