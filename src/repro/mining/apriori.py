"""Apriori: level-wise mining of *all* frequent patterns.

The paper's pipeline uses closed patterns; this classic horizontal
baseline (Agrawal et al., SIGMOD 1993) enumerates every frequent
pattern. It serves two purposes here:

* a cross-check oracle for the closed miner — every frequent pattern's
  support must equal the support of some closed superset, and the
  closed miner's output must be exactly the support-maximal patterns;
* a baseline for the "closed vs all patterns" hypothesis-count ablation
  (fewer hypotheses means less correction burden, Section 7).

Candidate generation is the standard join of two (k-1)-patterns that
share a (k-2)-prefix, followed by the subset-pruning step; support
counting runs word-wise on the packed vertical representation
(:class:`~repro.tidvector.TidVector`), so the implementation stays
compact without being a toy.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import MiningError
from ..tidvector import TidVector, as_tidvector

__all__ = ["FrequentPattern", "mine_apriori"]


@dataclass(frozen=True)
class FrequentPattern:
    """A frequent (not necessarily closed) pattern."""

    items: frozenset
    tidset: TidVector
    support: int

    @property
    def length(self) -> int:
        """Number of items in the pattern."""
        return len(self.items)


def mine_apriori(
    item_tidsets: Sequence,
    n_records: int,
    min_sup: int,
    max_length: Optional[int] = None,
) -> List[FrequentPattern]:
    """Mine all frequent patterns level-wise.

    ``item_tidsets`` entries may be packed
    :class:`~repro.tidvector.TidVector` values or bigint bitsets
    (interop; coerced once at entry). Returns patterns of length >= 1
    ordered by (length, sorted items). Exponential in the worst case —
    intended for modest inputs (tests, ablations), not for the full
    benchmark datasets.
    """
    if min_sup < 1:
        raise MiningError(f"min_sup must be >= 1, got {min_sup}")
    if max_length is not None and max_length < 1:
        return []
    try:
        vectors = [as_tidvector(t, n_records) for t in item_tidsets]
    except ValueError as exc:
        raise MiningError(str(exc)) from exc
    frequent_items: List[Tuple[int, TidVector, int]] = []
    for item_id, tids in enumerate(vectors):
        support = tids.count()
        if support >= min_sup:
            frequent_items.append((item_id, tids, support))
    frequent_items.sort(key=lambda t: t[0])
    out: List[FrequentPattern] = []
    level: Dict[Tuple[int, ...], TidVector] = {}
    for item_id, tids, support in frequent_items:
        key = (item_id,)
        level[key] = tids
        out.append(FrequentPattern(frozenset(key), tids, support))
    k = 1
    while level and (max_length is None or k < max_length):
        next_level: Dict[Tuple[int, ...], TidVector] = {}
        keys = sorted(level)
        current = set(keys)
        for a_index in range(len(keys)):
            a = keys[a_index]
            for b_index in range(a_index + 1, len(keys)):
                b = keys[b_index]
                if a[:-1] != b[:-1]:
                    # Sorted order guarantees no later key shares the
                    # prefix either.
                    break
                candidate = a + (b[-1],)
                if not _all_subsets_frequent(candidate, current):
                    continue
                tids = level[a] & level[b]
                support = tids.count()
                if support >= min_sup:
                    next_level[candidate] = tids
                    out.append(FrequentPattern(
                        frozenset(candidate), tids, support))
        level = next_level
        k += 1
    return out


def _all_subsets_frequent(candidate: Tuple[int, ...],
                          previous_level: set) -> bool:
    """Apriori pruning: every (k-1)-subset must be frequent."""
    return all(subset in previous_level
               for subset in combinations(candidate, len(candidate) - 1))
