"""Vertical data view: per-item tidsets filtered and ordered for mining.

Frequent pattern mining in this library is *vertical* (Zaki's Eclat
family): every item carries the packed record set of the records
containing it, and a pattern's tidset is the intersection of its
items' tidsets. This module prepares the vertical view a miner
consumes — infrequent items removed, remaining items ordered
(ascending support by default, which keeps the set-enumeration tree
small) — while remembering original item ids.

The view's tidsets are rows of one contiguous ``(m, n_words)`` uint64
``matrix``, so per-item operations are word-wise numpy ops and
whole-view scans (closure checks, support counting) are single
vectorized passes over the matrix — native-accelerated through the
fused kernels of :mod:`repro.bitmat` (:func:`~repro.bitmat.
superset_mask` for the closure check, the batched popcount kernel for
candidate support joins) with silent numpy fallbacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..bitmat import intersection_counts, superset_mask
from ..errors import MiningError
from ..tidvector import TidVector, arena_rows, as_tidvector, words_for

__all__ = ["VerticalView", "build_vertical_view"]


@dataclass
class VerticalView:
    """Frequent items with their tidsets, in mining order.

    ``item_ids[p]`` is the original catalog id of the item at mining
    position ``p``; ``tidsets[p]`` its packed record set (a view over
    row ``p`` of ``matrix``); ``supports[p]`` its support.
    ``order_of`` maps original id back to position.
    """

    n_records: int
    min_sup: int
    item_ids: List[int]
    tidsets: List[TidVector]
    supports: List[int]
    order_of: Dict[int, int]
    #: Packed ``(n_items, n_words)`` uint64 stack of the tidsets.
    matrix: np.ndarray

    @property
    def n_items(self) -> int:
        """Number of frequent items in the view."""
        return len(self.item_ids)

    def pattern_tidset(self, positions: Sequence[int]) -> TidVector:
        """Intersect the tidsets at the given mining positions."""
        positions = list(positions)
        if not positions:
            return TidVector.universe(self.n_records)
        words = self.matrix[positions[0]].copy()
        for p in positions[1:]:
            np.bitwise_and(words, self.matrix[p], out=words)
            if not words.any():
                break
        return TidVector(words, self.n_records)

    def superset_positions(self, tids: TidVector) -> np.ndarray:
        """Positions of every item whose tidset contains ``tids``.

        The closure primitive: one fused word-wise pass over the whole
        matrix (``tids & ~row == 0`` per row, the
        :func:`~repro.bitmat.superset_mask` kernel with early exit per
        row under the native suite), ascending order.
        """
        if self.matrix.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        return np.flatnonzero(superset_mask(self.matrix, tids.words))

    def candidate_supports(self, tids: TidVector,
                           start: int = 0) -> np.ndarray:
        """``|tids ∩ tidsets[p]|`` for every position ``p >= start``.

        The enumeration join: one batched hardware-popcount pass over
        the candidate block of the matrix (the same fused kernel the
        permutation pass counts with) instead of a per-candidate
        Python ``intersection_count`` loop. Entry ``i`` of the result
        is the support of extending by position ``start + i``.
        """
        return intersection_counts(self.matrix[start:], tids.words)


def build_vertical_view(
    item_tidsets: Sequence,
    n_records: int,
    min_sup: int,
    order: str = "support-ascending",
) -> VerticalView:
    """Filter items by ``min_sup`` and order them for mining.

    ``item_tidsets`` entries may be :class:`~repro.tidvector.TidVector`
    values (native) or bigint bitsets (interop; coerced here, the
    single entry point shared by all miners).

    Parameters
    ----------
    order:
        ``"support-ascending"`` (default; least frequent items first,
        the classic heuristic that minimizes tree width near the root),
        ``"support-descending"``, or ``"original"``.
    """
    if min_sup < 1:
        raise MiningError(f"min_sup must be >= 1, got {min_sup}")
    if n_records < 1:
        raise MiningError("n_records must be positive")
    try:
        vectors = [as_tidvector(t, n_records) for t in item_tidsets]
    except ValueError as exc:
        raise MiningError(str(exc)) from exc
    all_supports = [v.count() for v in vectors]
    frequent = [(item_id, all_supports[item_id])
                for item_id in range(len(vectors))
                if all_supports[item_id] >= min_sup]
    if order == "support-ascending":
        frequent.sort(key=lambda t: (t[1], t[0]))
    elif order == "support-descending":
        frequent.sort(key=lambda t: (-t[1], t[0]))
    elif order != "original":
        raise MiningError(f"unknown item order {order!r}")
    item_ids = [f[0] for f in frequent]
    supports = [f[1] for f in frequent]
    matrix = (np.stack([vectors[i].words for i in item_ids])
              if item_ids else
              np.zeros((0, words_for(n_records)), dtype=np.uint64))
    tidsets = arena_rows(matrix, n_records)
    order_of = {item_id: p for p, item_id in enumerate(item_ids)}
    return VerticalView(
        n_records=n_records,
        min_sup=min_sup,
        item_ids=item_ids,
        tidsets=tidsets,
        supports=supports,
        order_of=order_of,
        matrix=matrix,
    )
