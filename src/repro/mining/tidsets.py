"""Vertical data view: per-item tidsets filtered and ordered for mining.

Frequent pattern mining in this library is *vertical* (Zaki's Eclat
family): every item carries the bitset of records containing it, and a
pattern's tidset is the intersection of its items' tidsets. This module
prepares the vertical view a miner consumes — infrequent items removed,
remaining items ordered (ascending support by default, which keeps the
set-enumeration tree small) — while remembering original item ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import bitset as bs
from ..errors import MiningError

__all__ = ["VerticalView", "build_vertical_view"]


@dataclass
class VerticalView:
    """Frequent items with their tidsets, in mining order.

    ``item_ids[p]`` is the original catalog id of the item at mining
    position ``p``; ``tidsets[p]`` its bitset; ``supports[p]`` its
    support. ``order_of`` maps original id back to position.
    """

    n_records: int
    min_sup: int
    item_ids: List[int]
    tidsets: List[int]
    supports: List[int]
    order_of: Dict[int, int]

    @property
    def n_items(self) -> int:
        """Number of frequent items in the view."""
        return len(self.item_ids)

    def pattern_tidset(self, positions: Sequence[int]) -> int:
        """Intersect the tidsets at the given mining positions."""
        tids = bs.universe(self.n_records)
        for p in positions:
            tids &= self.tidsets[p]
        return tids


def build_vertical_view(
    item_tidsets: Sequence[int],
    n_records: int,
    min_sup: int,
    order: str = "support-ascending",
) -> VerticalView:
    """Filter items by ``min_sup`` and order them for mining.

    Parameters
    ----------
    order:
        ``"support-ascending"`` (default; least frequent items first,
        the classic heuristic that minimizes tree width near the root),
        ``"support-descending"``, or ``"original"``.
    """
    if min_sup < 1:
        raise MiningError(f"min_sup must be >= 1, got {min_sup}")
    if n_records < 1:
        raise MiningError("n_records must be positive")
    frequent: List[Tuple[int, int, int]] = []
    for item_id, tids in enumerate(item_tidsets):
        support = bs.popcount(tids)
        if support >= min_sup:
            frequent.append((item_id, tids, support))
    if order == "support-ascending":
        frequent.sort(key=lambda t: (t[2], t[0]))
    elif order == "support-descending":
        frequent.sort(key=lambda t: (-t[2], t[0]))
    elif order != "original":
        raise MiningError(f"unknown item order {order!r}")
    item_ids = [f[0] for f in frequent]
    tidsets = [f[1] for f in frequent]
    supports = [f[2] for f in frequent]
    order_of = {item_id: p for p, item_id in enumerate(item_ids)}
    return VerticalView(
        n_records=n_records,
        min_sup=min_sup,
        item_ids=item_ids,
        tidsets=tidsets,
        supports=supports,
        order_of=order_of,
    )
