"""The pluggable miner registry.

The mining layer is the other half of the paper's
mine-once-correct-many design: enumerate a hypothesis set once, then
hand it to any number of correction procedures. This registry makes
that half pluggable the same way :mod:`repro.corrections.registry`
made the corrections pluggable — every miner the library ships is
described by one :class:`Miner` spec (canonical name, aliases,
capability tags, a uniform ``mine`` entry point returning a
:class:`~repro.mining.patterns.PatternSet`), and downstream code (the
pipeline, the experiment runner, the holdout split, the CLI)
enumerates and resolves miners exclusively through it:

>>> from repro.mining.registry import Miner, register_miner
>>> from repro.mining.patterns import patternset_from_frequent
>>> def mine_pairs(item_tidsets, n_records, min_sup, max_length,
...                **opts):                          # doctest: +SKIP
...     from repro.mining import mine_apriori
...     pairs = [p for p in mine_apriori(item_tidsets, n_records,
...                                      min_sup, max_length=2)
...              if p.length == 2]
...     return patternset_from_frequent(pairs, n_records, min_sup)
>>> register_miner(Miner(                            # doctest: +SKIP
...     name="pairs-only", capabilities=("all-frequent",),
...     mine_fn=mine_pairs))

Name resolution accepts the canonical identifier (``"fpgrowth"``),
any registered alias (``"fp-growth"``), and case-insensitive variants
of both; unknown names get the full valid list plus a did-you-mean
suggestion — the same ergonomics as the correction registry, so
``--algorithm`` behaves exactly like ``--correction`` at the CLI.

Capability tags are how consumers state requirements without naming
implementations: ``"closed"`` (one pattern per distinct tidset),
``"all-frequent"`` (the complete frequent set — what the Section 7
closed-vs-all hypothesis-count ablation compares against),
``"representative"`` (Section 7 redundancy reduction applied),
``"emits-rules"`` (the miner also scores non-class rules and ships
them in the pattern set's provenance). Out-of-tree miners may add
their own tags.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import MiningError
from .apriori import mine_apriori
from .closed import mine_closed
from .fpgrowth import mine_fpgrowth
from .general import rules_from_patterns
from .patterns import (
    PatternSet,
    patternset_from_frequent,
    patternset_from_tree,
)
from .representative import reduce_patterns

__all__ = [
    "Miner",
    "available_miners",
    "get_miner",
    "mine_patterns",
    "miner_names",
    "register_miner",
    "resolve_miner",
    "unregister_miner",
]

#: Signature of a miner's mine callable:
#: ``mine_fn(item_tidsets, n_records, min_sup, max_length, **opts)``.
MineFn = Callable[..., PatternSet]


@dataclass(frozen=True)
class Miner:
    """One registered pattern miner.

    Attributes
    ----------
    name:
        Canonical identifier (``"closed"``), the key the public API
        uses.
    mine_fn:
        ``mine_fn(item_tidsets, n_records, min_sup, max_length,
        **opts) -> PatternSet``. Call through :meth:`mine`, which
        unpacks a dataset view and stamps provenance.
    aliases:
        Additional resolvable spellings (all names resolve
        case-insensitively on top of these).
    capabilities:
        Capability tags (``"closed"``, ``"all-frequent"``,
        ``"representative"``, ``"emits-rules"``, or custom); consumers
        gate on tags, never on names.
    validate_output:
        Run :meth:`PatternSet.validate` on every :meth:`mine` result
        (default on). A contract-violating forest would otherwise
        flow into the Diffsets recursion and silently corrupt
        permutation p-values; validation turns that into an immediate
        :class:`MiningError`. The built-ins turn it off — their
        adapters guarantee the contract (property-tested) and the
        check is pure overhead on the hot path.
    description:
        One-line summary for listings.
    """

    name: str
    mine_fn: MineFn
    aliases: Tuple[str, ...] = ()
    capabilities: Tuple[str, ...] = ()
    validate_output: bool = True
    description: str = ""

    def mine(self, dataset_view, min_sup: int,
             max_length: Optional[int] = None, **opts) -> PatternSet:
        """Mine ``dataset_view`` and return a provenance-stamped
        :class:`PatternSet`.

        ``dataset_view`` is anything exposing ``item_tidsets`` and
        ``n_records`` — a :class:`~repro.data.dataset.Dataset`, either
        half of a holdout split, or a purpose-built view.
        """
        item_tidsets = getattr(dataset_view, "item_tidsets", None)
        n_records = getattr(dataset_view, "n_records", None)
        if item_tidsets is None or n_records is None:
            raise MiningError(
                f"miner {self.name!r} needs a dataset view exposing "
                f"item_tidsets and n_records; got "
                f"{type(dataset_view).__name__}")
        pattern_set = self.mine_fn(item_tidsets, n_records, min_sup,
                                   max_length, **opts)
        if self.validate_output:
            pattern_set.validate()
        pattern_set.algorithm = self.name
        pattern_set.provenance.setdefault("capabilities",
                                          self.capabilities)
        if max_length is not None:
            pattern_set.provenance.setdefault("max_length", max_length)
        if opts:
            pattern_set.provenance.setdefault("options", dict(opts))
        return pattern_set

    def has_capability(self, tag: str) -> bool:
        """Whether this miner advertises the capability ``tag``."""
        return tag in self.capabilities

    def all_names(self) -> Tuple[str, ...]:
        """Every spelling this miner answers to."""
        return (self.name,) + tuple(self.aliases)


_REGISTRY: Dict[str, Miner] = {}
# Lookup table: lower-cased spelling -> canonical name.
_INDEX: Dict[str, str] = {}


def register_miner(spec: Miner, overwrite: bool = False) -> Miner:
    """Add a miner to the registry and return it.

    Every spelling in ``spec.all_names()`` becomes resolvable
    (case-insensitively). Registering a name or alias that collides
    with an existing registration raises :class:`MiningError` unless
    ``overwrite=True``, in which case the previous owner of the
    canonical name is replaced wholesale.
    """
    if not spec.name:
        raise MiningError("miner name must be non-empty")
    if not callable(spec.mine_fn):
        raise MiningError(
            f"miner {spec.name!r} needs a callable mine_fn")
    # Collision check BEFORE any mutation, so a rejected overwrite
    # leaves the previous registration fully intact. Spellings owned
    # by the spec being replaced don't count as collisions; only a
    # *canonical*-name match is a replacement target (an alias clash
    # is a collision — deleting the alias's owner wholesale would be
    # far more than the caller asked for).
    replaced = None
    if overwrite:
        hit = _INDEX.get(spec.name.lower())
        if hit is not None and hit.lower() == spec.name.lower():
            replaced = _REGISTRY[hit]
    taken = [spelling for spelling in spec.all_names()
             if spelling.lower() in _INDEX
             and _INDEX[spelling.lower()] != getattr(replaced, "name",
                                                     None)]
    if taken:
        raise MiningError(
            f"cannot register miner {spec.name!r}: "
            f"name(s) {sorted(set(taken))} already registered")
    if replaced is not None:
        unregister_miner(replaced.name)
    _REGISTRY[spec.name] = spec
    for spelling in spec.all_names():
        _INDEX[spelling.lower()] = spec.name
    return spec


def unregister_miner(name: str) -> None:
    """Remove a miner (by any of its spellings) from the registry."""
    canonical = _INDEX.get(name.lower())
    if canonical is None:
        raise MiningError(f"unknown miner {name!r}")
    spec = _REGISTRY.pop(canonical)
    for spelling in spec.all_names():
        _INDEX.pop(spelling.lower(), None)


def resolve_miner(name: str) -> Miner:
    """Resolve any accepted spelling to its registered miner.

    Raises :class:`MiningError` listing the valid names (canonical
    names and aliases) and a did-you-mean suggestion for near-miss
    spellings.
    """
    if not isinstance(name, str):
        raise MiningError(
            f"miner name must be a string, got {type(name).__name__}")
    canonical = _INDEX.get(name.lower())
    if canonical is None:
        raise MiningError(_unknown_message(name))
    return _REGISTRY[canonical]


def get_miner(name: str) -> Miner:
    """Alias of :func:`resolve_miner`, mirroring
    :func:`repro.corrections.registry.get_correction`."""
    return resolve_miner(name)


def available_miners() -> List[Miner]:
    """All registered miners, in registration order."""
    return list(_REGISTRY.values())


def miner_names() -> List[str]:
    """Canonical names of all registered miners, sorted."""
    return sorted(_REGISTRY)


def mine_patterns(dataset_view, min_sup: int,
                  algorithm: str = "closed",
                  max_length: Optional[int] = None,
                  **opts) -> PatternSet:
    """Mine ``dataset_view`` with the named registered miner."""
    return resolve_miner(algorithm).mine(dataset_view, min_sup,
                                         max_length=max_length, **opts)


def _accepted_spellings() -> List[str]:
    seen: List[str] = []
    for spec in _REGISTRY.values():
        for spelling in spec.all_names():
            if spelling not in seen:
                seen.append(spelling)
    return seen


def _unknown_message(name: str) -> str:
    spellings = _accepted_spellings()
    message = (f"unknown miner {name!r}; valid algorithms: "
               f"{sorted(spellings, key=str.lower)}")
    close = difflib.get_close_matches(
        name.lower(), [s.lower() for s in spellings], n=1, cutoff=0.6)
    if close:
        # Report the original casing of the matched spelling.
        original = next(s for s in spellings if s.lower() == close[0])
        message += f" — did you mean {original!r}?"
    return message


# ----------------------------------------------------------------------
# built-in miners
# ----------------------------------------------------------------------


def _mine_closed_set(item_tidsets, n_records, min_sup, max_length,
                     item_order: str = "support-ascending") -> PatternSet:
    patterns = mine_closed(item_tidsets, n_records, min_sup,
                           max_length=max_length, item_order=item_order)
    return patternset_from_tree(patterns, n_records, min_sup)


def _mine_apriori_set(item_tidsets, n_records, min_sup,
                      max_length) -> PatternSet:
    patterns = mine_apriori(item_tidsets, n_records, min_sup,
                            max_length=max_length)
    return patternset_from_frequent(patterns, n_records, min_sup)


def _mine_fpgrowth_set(item_tidsets, n_records, min_sup,
                       max_length) -> PatternSet:
    patterns = mine_fpgrowth(item_tidsets, n_records, min_sup,
                             max_length=max_length)
    return patternset_from_frequent(patterns, n_records, min_sup)


def _mine_representative_set(item_tidsets, n_records, min_sup,
                             max_length, delta: float = 0.1,
                             ) -> PatternSet:
    patterns = mine_closed(item_tidsets, n_records, min_sup,
                           max_length=max_length)
    reduced = reduce_patterns(patterns, delta=delta)
    return patternset_from_tree(
        reduced, n_records, min_sup,
        provenance={"delta": delta, "n_closed": len(patterns)})


def _mine_general_set(item_tidsets, n_records, min_sup, max_length,
                      min_conf: float = 0.0,
                      max_consequent: int = 1) -> PatternSet:
    frequent = mine_fpgrowth(item_tidsets, n_records, min_sup,
                             max_length=max_length)
    pattern_set = patternset_from_frequent(frequent, n_records, min_sup)
    pattern_set.provenance["general_rules"] = rules_from_patterns(
        frequent, n_records, min_sup, min_conf=min_conf,
        max_consequent=max_consequent)
    return pattern_set


register_miner(Miner(
    name="closed",
    mine_fn=_mine_closed_set,
    aliases=("lcm",),
    capabilities=("closed",),
    validate_output=False,
    description="LCM-style closed frequent patterns (Section 3; the "
                "paper's hypothesis set and the pipeline default)"))

register_miner(Miner(
    name="apriori",
    mine_fn=_mine_apriori_set,
    aliases=("levelwise", "all"),
    capabilities=("all-frequent",),
    validate_output=False,
    description="level-wise all-frequent baseline (the 'all patterns' "
                "arm of the Section 7 hypothesis-count ablation)"))

register_miner(Miner(
    name="fpgrowth",
    mine_fn=_mine_fpgrowth_set,
    aliases=("fp-growth", "fp"),
    capabilities=("all-frequent",),
    validate_output=False,
    description="pattern-growth all-frequent miner (same pattern set "
                "as apriori, FP-tree enumeration)"))

register_miner(Miner(
    name="representative",
    mine_fn=_mine_representative_set,
    aliases=("reduced",),
    capabilities=("closed", "representative"),
    validate_output=False,
    description="closed patterns with the Section 7 near-duplicate "
                "chain reduction (opts: delta, default 0.1)"))

register_miner(Miner(
    name="general-rules",
    mine_fn=_mine_general_set,
    aliases=("general", "market-basket"),
    capabilities=("all-frequent", "emits-rules"),
    validate_output=False,
    description="FP-growth patterns plus scored X => Y association "
                "rules in provenance['general_rules'] (opts: "
                "min_conf, max_consequent)"))
