"""Plain-text reporting: tables, series and the paper's histograms.

The paper presents results as gnuplot figures and LaTeX tables; the
benches reproduce each as aligned ASCII. This module holds the shared
formatting helpers plus Table 3's abbreviation glossary, the p-value
CDF used by Figures 3 and 15, and the confidence-by-p-value binning of
Table 4.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..mining.rules import ClassRule

__all__ = [
    "ABBREVIATIONS",
    "format_table",
    "format_series",
    "pvalue_cdf",
    "default_pvalue_grid",
    "confidence_pvalue_bins",
    "format_binned_table",
]

#: Table 3 of the paper.
ABBREVIATIONS: Dict[str, str] = {
    "BC": "Bonferroni correction",
    "BH": "Benjamini and Hochberg's method",
    "Perm_FWER": "Controlling FWER using permutation test",
    "Perm_FDR": "Controlling FDR using permutation test",
    "HD": "The holdout method on two sub-datasets",
    "HD_BC": "Holdout with Bonferroni correction",
    "HD_BH": "Holdout with Benjamini and Hochberg's method",
    "RH": "The holdout method using random partitioning",
    "RH_BC": "Random holdout with Bonferroni correction",
    "RH_BH": "Random holdout with Benjamini and Hochberg's method",
}

#: Extension methods beyond Table 3 (same key convention).
EXTENSION_ABBREVIATIONS: Dict[str, str] = {
    "BY": "Benjamini and Yekutieli's method (FDR under dependence)",
    "LAMP": "Testability-pruned Bonferroni (Terada et al.)",
    "Layered": "Layered critical values (Webb 2008)",
    "Holm": "Holm's step-down procedure",
    "Hochberg": "Hochberg's step-up procedure",
    "Sidak": "Sidak single-step correction",
    "Storey": "Storey's q-value adaptive FDR",
    "BKY": "Benjamini-Krieger-Yekutieli two-stage BH",
    "Perm_FWER_SD": "Westfall-Young step-down minP permutation test",
    "wBC": "Coverage-weighted Bonferroni (Genovese et al.)",
    "wBH": "Coverage-weighted Benjamini-Hochberg",
}


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    materialized = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(x_name: str, x_values: Sequence[object],
                  series: Dict[str, Sequence[float]],
                  title: Optional[str] = None) -> str:
    """Render one figure panel as gnuplot-style columns.

    First column is the sweep variable; one column per named series —
    the same rows the paper's plots are drawn from.
    """
    headers = [x_name] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else "")
        rows.append(row)
    return format_table(headers, rows, title=title)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if 0 < abs(value) < 1e-3 or abs(value) >= 1e6:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def default_pvalue_grid(lowest_exponent: int = -12,
                        per_decade: int = 2) -> List[float]:
    """Log-spaced thresholds from ``10^lowest_exponent`` to 1.

    Matches the x-axis of Figures 3 and 15.
    """
    grid = []
    steps = -lowest_exponent * per_decade
    for i in range(steps + 1):
        grid.append(10.0 ** (lowest_exponent + i / per_decade))
    return grid


def pvalue_cdf(p_values: Sequence[float],
               grid: Optional[Sequence[float]] = None,
               normalized: bool = False) -> List[Tuple[float, float]]:
    """Number (or fraction) of p-values at or below each grid point."""
    thresholds = list(grid) if grid is not None else default_pvalue_grid()
    ordered = sorted(p_values)
    out = []
    index = 0
    for threshold in thresholds:
        while index < len(ordered) and ordered[index] <= threshold:
            index += 1
        count = float(index)
        if normalized and ordered:
            count /= len(ordered)
        out.append((threshold, count))
    return out


#: Table 4's confidence bins (left-closed, right-open except the last).
DEFAULT_CONFIDENCE_BINS = ((0.75, 0.85), (0.85, 0.90), (0.90, 0.95),
                           (0.95, 1.0 + 1e-12))

#: Table 4's p-value bins, top to bottom (left-open, right-closed).
DEFAULT_PVALUE_BINS = (
    (0.05, 1.0), (0.01, 0.05), (0.001, 0.01), (1e-4, 1e-3),
    (1e-5, 1e-4), (1e-6, 1e-5), (1e-7, 1e-6), (1e-8, 1e-7), (0.0, 1e-8),
)


def confidence_pvalue_bins(
    rules: Sequence[ClassRule],
    confidence_bins: Sequence[Tuple[float, float]]
    = DEFAULT_CONFIDENCE_BINS,
    pvalue_bins: Sequence[Tuple[float, float]] = DEFAULT_PVALUE_BINS,
) -> List[List[int]]:
    """Count rules per (p-value bin, confidence bin): Table 4's matrix.

    Rules whose confidence falls below every confidence bin are not
    counted (Table 4 starts at confidence 0.75).
    """
    matrix = [[0] * len(confidence_bins) for _ in pvalue_bins]
    for rule in rules:
        column = None
        for j, (c_low, c_high) in enumerate(confidence_bins):
            if c_low <= rule.confidence < c_high:
                column = j
                break
        if column is None:
            continue
        for i, (p_low, p_high) in enumerate(pvalue_bins):
            if p_low < rule.p_value <= p_high or (
                    p_low == 0.0 and rule.p_value == 0.0):
                matrix[i][column] += 1
                break
    return matrix


def format_binned_table(
    matrix: Sequence[Sequence[int]],
    confidence_bins: Sequence[Tuple[float, float]]
    = DEFAULT_CONFIDENCE_BINS,
    pvalue_bins: Sequence[Tuple[float, float]] = DEFAULT_PVALUE_BINS,
    title: Optional[str] = None,
) -> str:
    """Render the Table 4 matrix with the paper's bin labels."""
    headers = ["p-value / conf"] + [
        _confidence_label(low, high) for low, high in confidence_bins
    ]
    rows = []
    for (p_low, p_high), counts in zip(pvalue_bins, matrix):
        rows.append([_pvalue_label(p_low, p_high)] + list(counts))
    return format_table(headers, rows, title=title)


def _confidence_label(low: float, high: float) -> str:
    if high > 1.0:
        return f"[{low:g}, 1]"
    return f"[{low:g}, {high:g})"


def _pvalue_label(low: float, high: float) -> str:
    def fmt(v: float) -> str:
        if v == 0:
            return "0"
        exponent = math.log10(v)
        if exponent == int(exponent) and v < 0.001:
            return f"10^{int(exponent)}"
        return f"{v:g}"
    return f"({fmt(low)}, {fmt(high)}]"


def significant_rule_counts(results: Dict[str, int]) -> str:
    """Small helper for the Figure 14/16 panels."""
    return format_table(["method", "#significant"],
                        sorted(results.items()))
