"""Exporting mined rules to CSV for downstream analysis.

A mining run's end product is a rule list someone will inspect in a
spreadsheet, join against domain metadata, or feed to a follow-up
study (the FDR workflow the paper recommends). This module renders
:class:`~repro.mining.rules.ClassRule` collections to CSV with the
statistics the paper reports — coverage, support, confidence, p-value
— plus any requested interestingness measures.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Sequence

from ..data.dataset import Dataset
from ..errors import EvaluationError
from ..interest.measures import ALL_MEASURES, ContingencyTable
from ..mining.rules import ClassRule

__all__ = ["rules_to_csv", "rule_rows"]

_BASE_HEADER = ["rule", "class", "length", "coverage", "support",
                "confidence", "p_value"]


def rule_rows(rules: Sequence[ClassRule], dataset: Dataset,
              measures: Sequence[str] = ()) -> List[List[object]]:
    """Row form of a rule list (header excluded), sorted by p-value.

    ``measures`` names columns from
    :data:`~repro.interest.measures.ALL_MEASURES` to append.
    """
    unknown = [m for m in measures if m not in ALL_MEASURES]
    if unknown:
        raise EvaluationError(
            f"unknown measures {unknown}; "
            f"choose from {sorted(ALL_MEASURES)}")
    rows: List[List[object]] = []
    for rule in sorted(rules, key=lambda r: r.p_value):
        row: List[object] = [
            dataset.catalog.describe_pattern(rule.items),
            dataset.class_names[rule.class_index],
            rule.length,
            rule.coverage,
            rule.support,
            round(rule.confidence, 6),
            rule.p_value,
        ]
        if measures:
            table = ContingencyTable.from_rule(rule, dataset)
            row.extend(ALL_MEASURES[m](table) for m in measures)
        rows.append(row)
    return rows


def rules_to_csv(rules: Sequence[ClassRule], dataset: Dataset, path,
                 measures: Sequence[str] = (),
                 threshold: Optional[float] = None) -> int:
    """Write rules to ``path`` as CSV; returns the number written.

    Parameters
    ----------
    measures:
        Interestingness measure columns to append (names from
        :data:`~repro.interest.measures.ALL_MEASURES`).
    threshold:
        Optional raw-p filter (e.g. a correction's decision threshold)
        applied before writing.
    """
    selected = list(rules)
    if threshold is not None:
        selected = [r for r in selected if r.p_value <= threshold]
    header = _BASE_HEADER + list(measures)
    rows = rule_rows(selected, dataset, measures)
    with Path(path).open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return len(rows)
