"""Evaluation framework: ground truth, metrics, runner, reporting."""

from .ground_truth import (
    ClassifiedRule,
    RuleStatus,
    adjusted_p_value,
    classify_rules,
    matches_embedded,
    restrict_embedded,
)
from .metrics import (
    AggregateMetrics,
    DatasetOutcome,
    aggregate,
    evaluate_result,
)
from .export import rule_rows, rules_to_csv
from .reporting import (
    ABBREVIATIONS,
    EXTENSION_ABBREVIATIONS,
    confidence_pvalue_bins,
    default_pvalue_grid,
    format_binned_table,
    format_series,
    format_table,
    pvalue_cdf,
)
from .runner import (
    FDR_METHODS,
    FWER_METHODS,
    METHOD_KEYS,
    ExperimentResult,
    ExperimentRunner,
    ReplicateRecord,
)

__all__ = [
    "ClassifiedRule",
    "RuleStatus",
    "adjusted_p_value",
    "classify_rules",
    "matches_embedded",
    "restrict_embedded",
    "AggregateMetrics",
    "DatasetOutcome",
    "aggregate",
    "evaluate_result",
    "ABBREVIATIONS",
    "EXTENSION_ABBREVIATIONS",
    "rule_rows",
    "rules_to_csv",
    "confidence_pvalue_bins",
    "default_pvalue_grid",
    "format_binned_table",
    "format_series",
    "format_table",
    "pvalue_cdf",
    "FDR_METHODS",
    "FWER_METHODS",
    "METHOD_KEYS",
    "ExperimentResult",
    "ExperimentRunner",
    "ReplicateRecord",
]
