"""Replicated-experiment driver for the Section 5 studies.

The paper evaluates every correction approach on 100 datasets per
parameter setting and reports averaged power / FWER / FDR. This module
packages that loop: generate a synthetic dataset (paired construction
by default, so the structured holdout split is fair), mine once, apply
every requested method — sharing the permutation pass between
``Perm_FWER``/``Perm_FDR`` and the holdout split between ``*_BC`` /
``*_BH`` — classify each method's output against the planted ground
truth, and aggregate.

Methods are resolved through the correction registry
(:mod:`repro.corrections.registry`), so any accepted spelling works:
the Table 3 abbreviations (``"No correction"``, ``"BC"``, ``"BH"``,
``"Perm_FWER"``, ``"Perm_FDR"``, ``"HD_BC"``, ``"HD_BH"``, ``"RH_BC"``,
``"RH_BH"``, plus the extension procedures ``"Layered"``, ``"BY"``,
``"LAMP"``, ``"Holm"``, ``"Hochberg"``, ``"Sidak"``, ``"Storey"``,
``"BKY"`` and ``"Perm_FWER_SD"``), the canonical identifiers
(``"bh"``), and registered aliases — including corrections plugged in
by downstream code via
:func:`repro.corrections.register_correction`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..corrections.base import CorrectionResult
from ..corrections.holdout import HoldoutRun
from ..corrections.registry import (
    PipelineContext,
    ResolvedCorrection,
    resolve_correction,
)
from ..data.dataset import Dataset
from ..data.synthetic import (
    EmbeddedRule,
    GeneratorConfig,
    SyntheticData,
    generate,
    generate_paired,
)
from ..errors import CorrectionError, EvaluationError, MiningError
from ..mining.registry import resolve_miner
from ..mining.rules import RuleSet, generate_rules
from ..parallel import get_executor
from .ground_truth import restrict_embedded
from .metrics import AggregateMetrics, DatasetOutcome, aggregate, \
    evaluate_result

__all__ = ["ExperimentRunner", "ExperimentResult", "ReplicateRecord",
           "METHOD_KEYS", "FWER_METHODS", "FDR_METHODS"]

#: The Table 3 method spellings, kept as the documented default
#: vocabulary; the runner accepts any spelling the registry resolves.
METHOD_KEYS = (
    "No correction",
    "BC",
    "BH",
    "Perm_FWER",
    "Perm_FDR",
    "HD_BC",
    "HD_BH",
    "RH_BC",
    "RH_BH",
    "Layered",
    "BY",
    "LAMP",
    "Holm",
    "Hochberg",
    "Sidak",
    "Storey",
    "BKY",
    "Perm_FWER_SD",
)

#: The paper's own nine methods (Table 3) — the runner default.
PAPER_METHODS = METHOD_KEYS[:9]

#: The method panels the FWER-controlling figures (8, 12) plot.
FWER_METHODS = ("No correction", "BC", "Perm_FWER", "HD_BC", "RH_BC")
#: The method panels the FDR-controlling figures (10, 13) plot.
FDR_METHODS = ("No correction", "BH", "Perm_FDR", "HD_BH", "RH_BH")


@dataclass
class ReplicateRecord:
    """Everything measured on one replicate dataset."""

    seed: int
    outcomes: Dict[str, DatasetOutcome]
    n_rules_tested: int
    tested_counts: Dict[str, int] = field(default_factory=dict)


@dataclass
class ExperimentResult:
    """Aggregated outcome of one experimental cell.

    ``mean_tested`` holds the Figure 6(b)/7/11 series: mean number of
    rules tested on the whole dataset, on each holdout exploratory
    half, and the candidate counts reaching each evaluation half.
    """

    config: GeneratorConfig
    min_sup: int
    alpha: float
    n_replicates: int
    aggregates: Dict[str, AggregateMetrics]
    mean_tested: Dict[str, float]
    replicates: List[ReplicateRecord] = field(default_factory=list,
                                              repr=False)

    def series(self, metric: str,
               methods: Sequence[str]) -> Dict[str, float]:
        """Extract one metric for a panel of methods."""
        out = {}
        for method in methods:
            agg = self.aggregates.get(method)
            if agg is None:
                continue
            out[method] = getattr(agg, metric)
        return out


class ExperimentRunner:
    """Drives replicated synthetic-data experiments.

    Parameters
    ----------
    methods:
        Method names to run (defaults to the paper's nine), resolved
        through the correction registry — Table 3 abbreviations,
        canonical names and aliases are all accepted. Results are
        keyed by the names exactly as given.
    alpha:
        Error level; the paper controls FWER and FDR at 5%.
    n_permutations:
        Permutation count for ``Perm_*``; the paper uses 1000 — scale
        down for quick runs.
    paired:
        Generate datasets with :func:`generate_paired` so the
        structured holdout split contains every embedded rule in both
        halves (the paper's construction).
    max_length:
        Optional pattern-length cap passed to the miner.
    algorithm:
        The registered miner (:mod:`repro.mining.registry`)
        enumerating each replicate's hypothesis set, in any accepted
        spelling (default ``"closed"``). Holdout methods mine their
        exploratory halves with the same algorithm, so the ablation
        grid (e.g. closed vs ``"fpgrowth"`` hypothesis counts) spans
        the whole method panel.
    n_jobs / backend:
        Fan the replicate grid (dataset × correction cells) out across
        workers (``-1`` = all cores; ``"serial"``, ``"threads"`` or
        ``"processes"``). Replicate seeds are drawn from the master
        seed *before* dispatch, and records are assembled in replicate
        order, so aggregates are identical at any worker count. Under
        ``"processes"`` each worker resolves the methods against its
        own registry — out-of-tree corrections must be registered at
        import time (e.g. via ``REPRO_PLUGINS``) to be visible there.
    """

    def __init__(self, methods: Sequence[str] = PAPER_METHODS,
                 alpha: float = 0.05, n_permutations: int = 1000,
                 paired: bool = True,
                 max_length: Optional[int] = None,
                 min_conf: float = 0.0,
                 algorithm: str = "closed",
                 n_jobs: int = 1,
                 backend: str = "serial") -> None:
        resolved: Dict[str, ResolvedCorrection] = {}
        for method in methods:
            try:
                resolved[method] = resolve_correction(method)
            except CorrectionError as exc:
                raise EvaluationError(str(exc)) from exc
        try:
            resolve_miner(algorithm)  # fail fast on typos
        except MiningError as exc:
            raise EvaluationError(str(exc)) from exc
        self.methods = tuple(methods)
        self._resolved = resolved
        self.alpha = alpha
        self.n_permutations = n_permutations
        self.paired = paired
        self.max_length = max_length
        self.min_conf = min_conf
        self.algorithm = algorithm
        executor = get_executor(backend, n_jobs)  # validates both
        self.n_jobs = executor.n_jobs
        self.backend = executor.backend

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, config: GeneratorConfig, min_sup: int,
            n_replicates: int = 100, seed: int = 0) -> ExperimentResult:
        """Run every method on ``n_replicates`` generated datasets."""
        if n_replicates < 1:
            raise EvaluationError("n_replicates must be >= 1")
        # Replicate seeds are drawn serially up front, so the grid is
        # fixed before any fan-out and results cannot depend on the
        # worker count or completion order.
        master = np.random.default_rng(seed)
        seeds = [int(s) for s in
                 master.integers(0, 1 << 48, size=n_replicates)]
        executor = get_executor(self.backend, self.n_jobs)
        if executor.backend == "processes":
            # ResolvedCorrection specs hold lambdas (unpicklable);
            # ship the plain configuration and let each worker
            # re-resolve the methods against its own registry.
            state = (self.methods, self.alpha, self.n_permutations,
                     self.paired, self.max_length, self.min_conf,
                     self.algorithm)
            records = executor.map_shards(
                _replicate_worker,
                [(state, config, min_sup, s) for s in seeds])
        else:
            records = executor.map_shards(
                lambda s: self.run_replicate(config, min_sup, s), seeds)
        aggregates = {
            method: aggregate([r.outcomes[method] for r in records])
            for method in self.methods
        }
        mean_tested = _mean_tested(records)
        return ExperimentResult(
            config=config, min_sup=min_sup, alpha=self.alpha,
            n_replicates=n_replicates, aggregates=aggregates,
            mean_tested=mean_tested, replicates=records,
        )

    def run_replicate(self, config: GeneratorConfig, min_sup: int,
                      seed: int) -> ReplicateRecord:
        """Generate one dataset and evaluate every method on it."""
        data = (generate_paired(config, seed=seed) if self.paired
                else generate(config, seed=seed))
        dataset = data.dataset
        if min_sup > dataset.n_records:
            raise MiningError(
                f"min_sup={min_sup} exceeds dataset size "
                f"{dataset.n_records}")
        # Resolved per replicate, not stored: process workers rebuild
        # the runner and must resolve against their own registry.
        patterns = resolve_miner(self.algorithm).mine(
            dataset, min_sup, max_length=self.max_length)
        ruleset = generate_rules(dataset, patterns, min_sup,
                                 min_conf=self.min_conf)
        ctx = PipelineContext(
            dataset=dataset, min_sup=min_sup, alpha=self.alpha,
            min_conf=self.min_conf, max_length=self.max_length,
            algorithm=self.algorithm,
            n_permutations=self.n_permutations,
            permutation_seed=seed ^ 0x5EED,
            holdout_seed=seed ^ 0xA5A5,
            holdout_boundary=data.half_boundary)
        outcomes: Dict[str, DatasetOutcome] = {}
        tested_counts: Dict[str, int] = {"whole dataset": ruleset.n_tests}
        classification_caches: Dict[int, object] = {}
        for method in self.methods:
            result, decision_dataset, embedded = self._apply_resolved(
                self._resolved[method], data, ruleset, ctx,
                tested_counts)
            caches = (classification_caches
                      if decision_dataset is dataset else None)
            outcomes[method] = evaluate_result(result, embedded,
                                               decision_dataset,
                                               caches=caches)
        return ReplicateRecord(seed=seed, outcomes=outcomes,
                               n_rules_tested=ruleset.n_tests,
                               tested_counts=tested_counts)

    # ------------------------------------------------------------------
    # registry-driven application
    # ------------------------------------------------------------------

    def _apply_resolved(
        self,
        resolved: ResolvedCorrection,
        data: SyntheticData,
        ruleset: RuleSet,
        ctx: PipelineContext,
        tested_counts: Dict[str, int],
    ) -> Tuple[CorrectionResult, Dataset, List[EmbeddedRule]]:
        """Apply one registry-resolved method, sharing ctx state.

        Holdout methods decide on the evaluation half, so the ground
        truth is restricted to the rules embedded there; everything
        else decides on the whole dataset.
        """
        result = resolved.apply(ruleset, self.alpha, ctx)
        if not resolved.spec.needs_holdout:
            return result, data.dataset, data.embedded_rules
        split = resolved.context(ctx).holdout_split
        run = ctx.shared.get(f"holdout:{split}:{self.alpha:g}")
        if not isinstance(run, HoldoutRun):
            # An out-of-tree holdout correction that manages its own
            # split (never calls ctx.holdout_run) leaves no shared run
            # behind; evaluate it against the whole dataset's truth.
            return result, data.dataset, data.embedded_rules
        prefix = "HD" if split == "structured" else "RH"
        tested_counts.setdefault(f"{prefix}_exploratory",
                                 run.exploratory_rules.n_tests)
        tested_counts.setdefault(f"{prefix}_evaluation",
                                 len(run.candidates))
        eval_embedded = restrict_embedded(data.embedded_rules,
                                          run.evaluation)
        return result, run.evaluation, eval_embedded


def _replicate_worker(payload) -> ReplicateRecord:
    """Evaluate one replicate in a worker process.

    Rebuilds a single-use runner from the plain configuration (the
    parent's resolved specs hold lambdas, which do not pickle) with
    parallelism disabled — the grid fan-out is the one and only pool.
    """
    (methods, alpha, n_permutations, paired, max_length,
     min_conf, algorithm), config, min_sup, seed = payload
    runner = ExperimentRunner(
        methods=methods, alpha=alpha, n_permutations=n_permutations,
        paired=paired, max_length=max_length, min_conf=min_conf,
        algorithm=algorithm)
    return runner.run_replicate(config, min_sup, seed)


def _mean_tested(records: List[ReplicateRecord]) -> Dict[str, float]:
    keys: List[str] = []
    for record in records:
        for key in record.tested_counts:
            if key not in keys:
                keys.append(key)
    return {
        key: (sum(r.tested_counts.get(key, 0) for r in records)
              / len(records))
        for key in keys
    }
