"""Replicated-experiment driver for the Section 5 studies.

The paper evaluates every correction approach on 100 datasets per
parameter setting and reports averaged power / FWER / FDR. This module
packages that loop: generate a synthetic dataset (paired construction
by default, so the structured holdout split is fair), mine once, apply
every requested method — sharing the permutation pass between
``Perm_FWER``/``Perm_FDR`` and the holdout split between ``*_BC`` /
``*_BH`` — classify each method's output against the planted ground
truth, and aggregate.

Method keys follow Table 3: ``"No correction"``, ``"BC"``, ``"BH"``,
``"Perm_FWER"``, ``"Perm_FDR"``, ``"HD_BC"``, ``"HD_BH"``, ``"RH_BC"``,
``"RH_BH"`` — plus the extension procedures ``"Layered"``, ``"BY"``,
``"LAMP"``, ``"Holm"``, ``"Hochberg"``, ``"Sidak"``, ``"Storey"``,
``"BKY"`` and ``"Perm_FWER_SD"``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..corrections.base import CorrectionResult
from ..corrections.direct import (
    benjamini_hochberg,
    bonferroni,
    no_correction,
)
from ..corrections.holdout import HoldoutRun
from ..corrections.layered import layered_critical_values
from ..corrections.permutation import PermutationEngine
from ..data.dataset import Dataset
from ..data.synthetic import (
    EmbeddedRule,
    GeneratorConfig,
    SyntheticData,
    generate,
    generate_paired,
)
from ..errors import EvaluationError
from ..mining.rules import RuleSet, mine_class_rules
from .ground_truth import restrict_embedded
from .metrics import AggregateMetrics, DatasetOutcome, aggregate, \
    evaluate_result

__all__ = ["ExperimentRunner", "ExperimentResult", "ReplicateRecord",
           "METHOD_KEYS", "FWER_METHODS", "FDR_METHODS"]

METHOD_KEYS = (
    "No correction",
    "BC",
    "BH",
    "Perm_FWER",
    "Perm_FDR",
    "HD_BC",
    "HD_BH",
    "RH_BC",
    "RH_BH",
    "Layered",
    "BY",
    "LAMP",
    "Holm",
    "Hochberg",
    "Sidak",
    "Storey",
    "BKY",
    "Perm_FWER_SD",
)

#: The paper's own nine methods (Table 3) — the runner default.
PAPER_METHODS = METHOD_KEYS[:9]

#: The method panels the FWER-controlling figures (8, 12) plot.
FWER_METHODS = ("No correction", "BC", "Perm_FWER", "HD_BC", "RH_BC")
#: The method panels the FDR-controlling figures (10, 13) plot.
FDR_METHODS = ("No correction", "BH", "Perm_FDR", "HD_BH", "RH_BH")


@dataclass
class ReplicateRecord:
    """Everything measured on one replicate dataset."""

    seed: int
    outcomes: Dict[str, DatasetOutcome]
    n_rules_tested: int
    tested_counts: Dict[str, int] = field(default_factory=dict)


@dataclass
class ExperimentResult:
    """Aggregated outcome of one experimental cell.

    ``mean_tested`` holds the Figure 6(b)/7/11 series: mean number of
    rules tested on the whole dataset, on each holdout exploratory
    half, and the candidate counts reaching each evaluation half.
    """

    config: GeneratorConfig
    min_sup: int
    alpha: float
    n_replicates: int
    aggregates: Dict[str, AggregateMetrics]
    mean_tested: Dict[str, float]
    replicates: List[ReplicateRecord] = field(default_factory=list,
                                              repr=False)

    def series(self, metric: str,
               methods: Sequence[str]) -> Dict[str, float]:
        """Extract one metric for a panel of methods."""
        out = {}
        for method in methods:
            agg = self.aggregates.get(method)
            if agg is None:
                continue
            out[method] = getattr(agg, metric)
        return out


class ExperimentRunner:
    """Drives replicated synthetic-data experiments.

    Parameters
    ----------
    methods:
        Method keys to run (defaults to the paper's nine).
    alpha:
        Error level; the paper controls FWER and FDR at 5%.
    n_permutations:
        Permutation count for ``Perm_*``; the paper uses 1000 — scale
        down for quick runs.
    paired:
        Generate datasets with :func:`generate_paired` so the
        structured holdout split contains every embedded rule in both
        halves (the paper's construction).
    max_length:
        Optional pattern-length cap passed to the miner.
    """

    def __init__(self, methods: Sequence[str] = PAPER_METHODS,
                 alpha: float = 0.05, n_permutations: int = 1000,
                 paired: bool = True,
                 max_length: Optional[int] = None,
                 min_conf: float = 0.0) -> None:
        unknown = [m for m in methods if m not in METHOD_KEYS]
        if unknown:
            raise EvaluationError(f"unknown methods {unknown}; "
                                  f"valid keys: {METHOD_KEYS}")
        self.methods = tuple(methods)
        self.alpha = alpha
        self.n_permutations = n_permutations
        self.paired = paired
        self.max_length = max_length
        self.min_conf = min_conf

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, config: GeneratorConfig, min_sup: int,
            n_replicates: int = 100, seed: int = 0) -> ExperimentResult:
        """Run every method on ``n_replicates`` generated datasets."""
        if n_replicates < 1:
            raise EvaluationError("n_replicates must be >= 1")
        master = random.Random(seed)
        records: List[ReplicateRecord] = []
        for _ in range(n_replicates):
            replicate_seed = master.getrandbits(48)
            records.append(self.run_replicate(config, min_sup,
                                              replicate_seed))
        aggregates = {
            method: aggregate([r.outcomes[method] for r in records])
            for method in self.methods
        }
        mean_tested = _mean_tested(records)
        return ExperimentResult(
            config=config, min_sup=min_sup, alpha=self.alpha,
            n_replicates=n_replicates, aggregates=aggregates,
            mean_tested=mean_tested, replicates=records,
        )

    def run_replicate(self, config: GeneratorConfig, min_sup: int,
                      seed: int) -> ReplicateRecord:
        """Generate one dataset and evaluate every method on it."""
        data = (generate_paired(config, seed=seed) if self.paired
                else generate(config, seed=seed))
        dataset = data.dataset
        ruleset = mine_class_rules(dataset, min_sup,
                                   min_conf=self.min_conf,
                                   max_length=self.max_length)
        shared: Dict[str, object] = {}
        outcomes: Dict[str, DatasetOutcome] = {}
        tested_counts: Dict[str, int] = {"whole dataset": ruleset.n_tests}
        classification_caches: Dict[int, object] = {}
        for method in self.methods:
            result, decision_dataset, embedded = self._apply(
                method, data, ruleset, min_sup, seed, shared,
                tested_counts)
            caches = (classification_caches
                      if decision_dataset is dataset else None)
            outcomes[method] = evaluate_result(result, embedded,
                                               decision_dataset,
                                               caches=caches)
        return ReplicateRecord(seed=seed, outcomes=outcomes,
                               n_rules_tested=ruleset.n_tests,
                               tested_counts=tested_counts)

    # ------------------------------------------------------------------
    # method dispatch
    # ------------------------------------------------------------------

    def _apply(
        self,
        method: str,
        data: SyntheticData,
        ruleset: RuleSet,
        min_sup: int,
        seed: int,
        shared: Dict[str, object],
        tested_counts: Dict[str, int],
    ) -> Tuple[CorrectionResult, Dataset, List[EmbeddedRule]]:
        dataset = data.dataset
        embedded = data.embedded_rules
        if method == "No correction":
            return no_correction(ruleset, self.alpha), dataset, embedded
        if method == "BC":
            return bonferroni(ruleset, self.alpha), dataset, embedded
        if method == "BH":
            return benjamini_hochberg(ruleset, self.alpha), dataset, \
                embedded
        if method == "Layered":
            return layered_critical_values(ruleset, self.alpha), dataset, \
                embedded
        if method == "BY":
            from ..corrections.by import benjamini_yekutieli
            return benjamini_yekutieli(ruleset, self.alpha), dataset, \
                embedded
        if method == "LAMP":
            from ..corrections.lamp import lamp_bonferroni
            return lamp_bonferroni(ruleset, self.alpha), dataset, embedded
        if method in ("Holm", "Hochberg", "Sidak"):
            from ..corrections.stepwise import hochberg, holm, sidak
            procedure = {"Holm": holm, "Hochberg": hochberg,
                         "Sidak": sidak}[method]
            return procedure(ruleset, self.alpha), dataset, embedded
        if method == "Storey":
            from ..corrections.storey import storey_fdr
            return storey_fdr(ruleset, self.alpha), dataset, embedded
        if method == "BKY":
            from ..corrections.storey import two_stage_bh
            return two_stage_bh(ruleset, self.alpha), dataset, embedded
        if method in ("Perm_FWER", "Perm_FDR", "Perm_FWER_SD"):
            engine = shared.get("engine")
            if engine is None:
                engine = PermutationEngine(
                    ruleset, n_permutations=self.n_permutations,
                    seed=seed ^ 0x5EED)
                shared["engine"] = engine
            assert isinstance(engine, PermutationEngine)
            if method == "Perm_FWER":
                result = engine.fwer(self.alpha)
            elif method == "Perm_FWER_SD":
                result = engine.fwer_stepdown(self.alpha)
            else:
                result = engine.fdr(self.alpha)
            return result, dataset, embedded
        if method in ("HD_BC", "HD_BH", "RH_BC", "RH_BH"):
            split = "structured" if method.startswith("HD") else "random"
            run = shared.get(split)
            if run is None:
                run = HoldoutRun(
                    dataset, min_sup, alpha=self.alpha, split=split,
                    boundary=(data.half_boundary
                              if split == "structured" else None),
                    seed=seed ^ 0xA5A5,
                    min_conf=self.min_conf,
                    max_length=self.max_length)
                shared[split] = run
                prefix = "HD" if split == "structured" else "RH"
                tested_counts[f"{prefix}_exploratory"] = \
                    run.exploratory_rules.n_tests
                tested_counts[f"{prefix}_evaluation"] = \
                    len(run.candidates)
            assert isinstance(run, HoldoutRun)
            result = (run.bonferroni() if method.endswith("BC")
                      else run.benjamini_hochberg())
            eval_embedded = restrict_embedded(embedded, run.evaluation)
            return result, run.evaluation, eval_embedded
        raise EvaluationError(f"unhandled method {method!r}")


def _mean_tested(records: List[ReplicateRecord]) -> Dict[str, float]:
    keys: List[str] = []
    for record in records:
        for key in record.tested_counts:
            if key not in keys:
                keys.append(key)
    return {
        key: (sum(r.tested_counts.get(key, 0) for r in records)
              / len(records))
        for key in keys
    }
