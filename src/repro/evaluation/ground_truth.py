"""Ground-truth classification of significant rules (Section 5.2).

Embedding one rule ``Rt : Xt => ct`` in a synthetic dataset makes many
*other* rules genuinely low-p: sub- and super-patterns of ``Xt`` share
records with it, so their class distribution really is distorted. The
paper therefore refuses to count such by-products as false positives.
A significant rule ``R : X => c`` (with ``R != Rt``) is a **false
positive** iff

* ``T(Xt) ∩ T(X) = ∅`` — it shares no records with the planted rule,
  so the planted rule cannot explain it; or
* the overlap is non-empty but ``p(R | ¬Rt) <= alpha`` — even after
  discounting the planted rule's effect, ``R`` would still have been
  declared significant, so its significance is *not* explained by
  ``Rt``.

``p(R|¬Rt)`` re-scores ``R`` with its support adjusted to what it would
have been were the overlap's class distribution at the background rate:

    supp(R|¬Rt) = supp(X ∪ Xt) * n_c / n + (supp(R) - supp(X ∪ Xt ∪ c))

(The paper states the formula for ``c = ct``; we use ``R``'s own class
``c`` throughout, which coincides with the paper's form whenever the
by-product shares the planted rule's class and generalizes it
otherwise.)

With several embedded rules the definition generalizes conservatively:
``R`` is a true positive when it matches *some* embedded rule, and is
excused (a by-product) when *some* embedded rule both overlaps it and
explains its significance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..data.dataset import Dataset
from ..data.synthetic import EmbeddedRule
from ..errors import EvaluationError
from ..mining.rules import ClassRule
from ..stats.buffer_cache import BufferCache

__all__ = [
    "RuleStatus",
    "ClassifiedRule",
    "classify_rules",
    "matches_embedded",
    "adjusted_p_value",
]


class RuleStatus:
    """Classification outcomes for a significant rule."""

    TRUE_POSITIVE = "true_positive"
    FALSE_POSITIVE = "false_positive"
    BYPRODUCT = "byproduct"


@dataclass
class ClassifiedRule:
    """One significant rule with its ground-truth verdict.

    ``adjusted_p`` is the smallest excusal p-value ``p(R|¬Rt)`` over
    overlapping embedded rules (``None`` when no embedded rule
    overlaps).
    """

    rule: ClassRule
    status: str
    adjusted_p: Optional[float] = None


def matches_embedded(rule: ClassRule, embedded: EmbeddedRule,
                     dataset: Dataset, rule_tidset: Optional[int] = None,
                     ) -> bool:
    """Is this mined rule *the* embedded rule?

    Closed mining reports the closure of ``Xt``, which occurs in exactly
    the same records, so identity is tidset equality plus the embedded
    class on the right-hand side.
    """
    if rule.class_index != embedded.class_index:
        return False
    tids = (dataset.pattern_tidset(rule.items)
            if rule_tidset is None else rule_tidset)
    return tids == dataset.pattern_tidset(embedded.item_ids)


def adjusted_p_value(rule: ClassRule, embedded: EmbeddedRule,
                     dataset: Dataset, cache: BufferCache,
                     rule_tidset: Optional[int] = None) -> Optional[float]:
    """``p(R|¬Rt)``: the rule's p-value discounting the embedded rule.

    Returns ``None`` when the rule and the embedded rule share no
    records (the adjustment is undefined; the rule is a false positive
    by the first condition).
    """
    tids_x = (dataset.pattern_tidset(rule.items)
              if rule_tidset is None else rule_tidset)
    tids_t = dataset.pattern_tidset(embedded.item_ids)
    overlap = tids_x & tids_t
    if not overlap:
        return None
    n = dataset.n_records
    n_c = dataset.class_support(rule.class_index)
    class_bits = dataset.class_tidset(rule.class_index)
    overlap_size = overlap.count()
    observed_overlap_c = overlap.intersection_count(class_bits)
    expected_overlap_c = overlap_size * n_c / n
    adjusted_support = expected_overlap_c + (rule.support
                                             - observed_overlap_c)
    supp_x = tids_x.count()
    # The adjusted support is fractional; evaluate the exact test at the
    # nearest reachable integer support.
    buffer = cache.buffer_for(supp_x)
    k = round(adjusted_support)
    k = min(max(k, buffer.low), buffer.high)
    return buffer.p_value(k)


def classify_rules(
    significant: Sequence[ClassRule],
    embedded: Sequence[EmbeddedRule],
    dataset: Dataset,
    threshold: float,
    caches: Optional[Dict[int, BufferCache]] = None,
) -> List[ClassifiedRule]:
    """Classify every significant rule as TP, FP or by-product.

    Parameters
    ----------
    threshold:
        The correcting method's raw-p cut-off (``alpha`` in the
        Section 5.2 definition) used to judge whether an adjusted
        p-value still clears significance.
    caches:
        Optional per-class :class:`BufferCache` map to reuse across
        calls; one is created per referenced class otherwise.
    """
    if threshold < 0:
        raise EvaluationError("threshold must be non-negative")
    if caches is None:
        caches = {}
    out: List[ClassifiedRule] = []
    embedded_tidsets = [dataset.pattern_tidset(e.item_ids)
                        for e in embedded]
    for rule in significant:
        tids_x = dataset.pattern_tidset(rule.items)
        verdict = _classify_one(rule, tids_x, embedded, embedded_tidsets,
                                dataset, threshold, caches)
        out.append(verdict)
    return out


def _classify_one(
    rule: ClassRule,
    tids_x: int,
    embedded: Sequence[EmbeddedRule],
    embedded_tidsets: Sequence[int],
    dataset: Dataset,
    threshold: float,
    caches: Dict[int, BufferCache],
) -> ClassifiedRule:
    if not embedded:
        # Pure-noise dataset: everything significant is a false
        # positive (Section 5.4's random-data experiment).
        return ClassifiedRule(rule, RuleStatus.FALSE_POSITIVE)
    for e, tids_t in zip(embedded, embedded_tidsets):
        if (rule.class_index == e.class_index and tids_x == tids_t):
            return ClassifiedRule(rule, RuleStatus.TRUE_POSITIVE)
    cache = _cache_for(rule.class_index, dataset, caches)
    best_adjusted: Optional[float] = None
    for e, tids_t in zip(embedded, embedded_tidsets):
        if tids_x & tids_t == 0:
            continue
        adjusted = adjusted_p_value(rule, e, dataset, cache,
                                    rule_tidset=tids_x)
        if adjusted is None:
            continue
        if best_adjusted is None or adjusted > best_adjusted:
            # Keep the *most excusing* adjustment: if any embedded rule
            # explains the significance away, the rule is a by-product.
            best_adjusted = adjusted
    if best_adjusted is None:
        return ClassifiedRule(rule, RuleStatus.FALSE_POSITIVE)
    if best_adjusted > threshold:
        return ClassifiedRule(rule, RuleStatus.BYPRODUCT, best_adjusted)
    return ClassifiedRule(rule, RuleStatus.FALSE_POSITIVE, best_adjusted)


def _cache_for(class_index: int, dataset: Dataset,
               caches: Dict[int, BufferCache]) -> BufferCache:
    cache = caches.get(class_index)
    if cache is None:
        cache = BufferCache(dataset.n_records,
                            dataset.class_support(class_index), min_sup=1)
        caches[class_index] = cache
    return cache


def restrict_embedded(embedded: Iterable[EmbeddedRule],
                      dataset: Dataset) -> List[EmbeddedRule]:
    """Re-derive embedded-rule ground truth on a subset dataset.

    Holdout decisions are made on the evaluation half, so the
    false-positive analysis there needs the embedded rules' tidsets *on
    that half*. Item ids are shared between a dataset and its subsets
    (the catalog is common), so only the tidset needs recomputing.
    """
    out = []
    for e in embedded:
        tids = dataset.pattern_tidset(e.item_ids)
        out.append(EmbeddedRule(
            pairs=e.pairs,
            class_index=e.class_index,
            class_name=e.class_name,
            target_coverage=e.target_coverage,
            target_confidence=e.target_confidence,
            record_ids=[],
            item_ids=e.item_ids,
            tidset=tids,
        ))
    return out
