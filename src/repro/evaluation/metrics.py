"""Power / FWER / FDR metrics (Section 5.2).

On a single dataset:

* **FWER indicator** — 1 when at least one false positive was reported;
* **FDR** — the proportion of false positives among all reported
  significant rules (0 when nothing was reported);
* **power** — the proportion of embedded rules detected.

Across the replicate datasets of one experimental cell the paper
averages: FWER is the fraction of datasets with at least one false
positive, FDR and power are means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..corrections.base import CorrectionResult
from ..data.dataset import Dataset
from ..data.synthetic import EmbeddedRule
from ..errors import EvaluationError
from ..stats.buffer_cache import BufferCache
from .ground_truth import ClassifiedRule, RuleStatus, classify_rules

__all__ = ["DatasetOutcome", "AggregateMetrics", "evaluate_result",
           "aggregate"]


@dataclass
class DatasetOutcome:
    """Ground-truth accounting of one method on one dataset."""

    method: str
    n_significant: int
    n_true_positives: int
    n_false_positives: int
    n_byproducts: int
    n_embedded: int
    n_detected: int
    threshold: float
    classified: List[ClassifiedRule] = field(default_factory=list,
                                             repr=False)

    @property
    def fwer_indicator(self) -> int:
        """1 when this dataset produced at least one false positive."""
        return 1 if self.n_false_positives > 0 else 0

    @property
    def fdr(self) -> float:
        """False positives over reported rules (0 when none reported)."""
        if self.n_significant == 0:
            return 0.0
        return self.n_false_positives / self.n_significant

    @property
    def power(self) -> float:
        """Detected embedded rules over embedded rules (0 when none)."""
        if self.n_embedded == 0:
            return 0.0
        return self.n_detected / self.n_embedded


def evaluate_result(
    result: CorrectionResult,
    embedded: Sequence[EmbeddedRule],
    dataset: Dataset,
    caches: Optional[Dict[int, BufferCache]] = None,
) -> DatasetOutcome:
    """Classify a correction result's output against the ground truth.

    ``dataset`` must be the dataset on which the significance decisions
    were made (the full dataset for direct/permutation methods, the
    evaluation half for holdout) and ``embedded`` the ground truth
    re-derived on that same dataset.
    """
    classified = classify_rules(result.significant, embedded, dataset,
                                result.threshold, caches=caches)
    n_tp = sum(1 for c in classified
               if c.status == RuleStatus.TRUE_POSITIVE)
    n_fp = sum(1 for c in classified
               if c.status == RuleStatus.FALSE_POSITIVE)
    n_by = sum(1 for c in classified if c.status == RuleStatus.BYPRODUCT)
    detected = _count_detected(classified, embedded, dataset)
    return DatasetOutcome(
        method=result.method,
        n_significant=len(result.significant),
        n_true_positives=n_tp,
        n_false_positives=n_fp,
        n_byproducts=n_by,
        n_embedded=len(embedded),
        n_detected=detected,
        threshold=result.threshold,
        classified=classified,
    )


def _count_detected(classified: Sequence[ClassifiedRule],
                    embedded: Sequence[EmbeddedRule],
                    dataset: Dataset) -> int:
    """Embedded rules matched by at least one true-positive rule."""
    if not embedded:
        return 0
    embedded_tidsets = [dataset.pattern_tidset(e.item_ids)
                        for e in embedded]
    detected = [False] * len(embedded)
    for c in classified:
        if c.status != RuleStatus.TRUE_POSITIVE:
            continue
        tids = dataset.pattern_tidset(c.rule.items)
        for i, (e, tids_t) in enumerate(zip(embedded, embedded_tidsets)):
            if (not detected[i] and c.rule.class_index == e.class_index
                    and tids == tids_t):
                detected[i] = True
    return sum(detected)


@dataclass
class AggregateMetrics:
    """Averages over the replicate datasets of one experimental cell."""

    method: str
    n_datasets: int
    power: float
    fwer: float
    fdr: float
    avg_false_positives: float
    avg_significant: float

    def row(self) -> List[object]:
        """Row form for the reporting tables."""
        return [self.method, self.n_datasets, round(self.power, 4),
                round(self.fwer, 4), round(self.fdr, 4),
                round(self.avg_false_positives, 4),
                round(self.avg_significant, 2)]


def aggregate(outcomes: Sequence[DatasetOutcome]) -> AggregateMetrics:
    """Average per-dataset outcomes the way Section 5.2 prescribes."""
    if not outcomes:
        raise EvaluationError("no outcomes to aggregate")
    methods = {o.method for o in outcomes}
    if len(methods) != 1:
        raise EvaluationError(
            f"cannot aggregate across methods {sorted(methods)}")
    n = len(outcomes)
    return AggregateMetrics(
        method=outcomes[0].method,
        n_datasets=n,
        power=sum(o.power for o in outcomes) / n,
        fwer=sum(o.fwer_indicator for o in outcomes) / n,
        fdr=sum(o.fdr for o in outcomes) / n,
        avg_false_positives=sum(o.n_false_positives
                                for o in outcomes) / n,
        avg_significant=sum(o.n_significant for o in outcomes) / n,
    )
