"""Statistical significance of pattern *frequencies*.

The paper's related work (Section 6) contrasts its rule-association
question with an older one: is the *support* of a frequent itemset
itself surprising? Two methods from that line are implemented here,
both against the item-independence null model (items occur
independently with their observed marginal frequencies):

* :mod:`~repro.frequency.resampling` — Megiddo & Srikant [13]:
  generate frequency-preserving random datasets, score patterns with
  the exact binomial upper-tail test, and calibrate a cut-off p-value
  from the false discoveries observed on the random data.
* :mod:`~repro.frequency.kirsch` — Kirsch et al. [10]: find a support
  threshold ``s*`` above which the *count* of frequent itemsets is
  itself statistically surprising, giving the flagged family a small
  false discovery rate.

Both operate on plain tidset lists (no class labels), so they apply to
market-basket transactions as well as attribute-value data.
"""

from .kirsch import SupportThresholdResult, find_support_threshold
from .nullmodel import (
    NullModel,
    item_frequencies,
    pattern_null_probability,
)
from .resampling import (
    CalibrationResult,
    ScoredPattern,
    calibrate_cutoff,
    score_patterns,
    significant_frequent_patterns,
)

__all__ = [
    "NullModel",
    "item_frequencies",
    "pattern_null_probability",
    "CalibrationResult",
    "ScoredPattern",
    "calibrate_cutoff",
    "score_patterns",
    "significant_frequent_patterns",
    "SupportThresholdResult",
    "find_support_threshold",
]
