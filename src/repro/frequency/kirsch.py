"""Kirsch et al.'s significant support threshold ``s*`` (PODS 2009,
ref [10]).

The question inverts the paper's: not "is this rule's class association
real?" but "is the sheer *number* of frequent itemsets at support ``s``
more than randomness would produce?". The procedure:

1. fix an itemset size ``k`` and a grid of candidate thresholds
   ``s in [min_sup, s_max]``;
2. under the item-independence null, the count ``Q_k(s)`` of k-itemsets
   with support at least ``s`` is approximately Poisson; its mean is
   estimated here by Monte Carlo over frequency-preserving random
   datasets (the original derives it analytically for their model —
   the Monte Carlo version keeps the method honest on any marginals).
   The estimate is regularized by two pseudo-events so a run of
   all-zero samples cannot report an exactly-zero mean and make any
   observed count look infinitely surprising;
3. each candidate ``s`` is tested with the Poisson upper tail
   ``P(Poisson(lambda(s)) >= Q_obs(s))``, Bonferroni-corrected over
   the grid (their union bound over candidate thresholds); candidates
   whose observed count falls below ``min_observed`` are ineligible —
   the practical stand-in for the original's Poisson-validity
   condition on ``s_min``;
4. ``s*`` is the smallest passing candidate — smallest because every
   itemset with support above a passing threshold is flagged, so the
   smallest passing ``s`` flags the largest family;
5. the flagged family's FDR is bounded by
   ``lambda(s*) / Q_obs(s*)`` — the expected null count over the
   observed count.

A ``None`` threshold (nothing passes) is a legitimate outcome on
structureless data, and exactly what the random-dataset test expects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import StatsError
from ..mining.apriori import mine_apriori
from ..stats.poisson import poisson_test_upper
from .nullmodel import NullModel

__all__ = ["SupportThresholdResult", "find_support_threshold"]


@dataclass
class SupportThresholdResult:
    """Outcome of the support-threshold search.

    ``candidates`` maps each candidate ``s`` to the triple
    ``(observed count, null mean, Bonferroni-adjusted p-value)`` so
    callers can render the full decision table.
    """

    k: int
    alpha: float
    threshold: Optional[int]
    observed_count: int
    null_mean: float
    fdr_bound: float
    n_null_samples: int
    candidates: Dict[int, tuple] = field(default_factory=dict,
                                         repr=False)

    @property
    def found(self) -> bool:
        """True when some candidate threshold passed the test."""
        return self.threshold is not None

    def describe(self) -> str:
        """Human-readable decision table."""
        lines = [f"k={self.k}, alpha={self.alpha:g}, "
                 f"{self.n_null_samples} null samples"]
        lines.append(f"{'s':>6s} {'observed':>9s} {'null mean':>10s} "
                     f"{'adj p':>10s}")
        for s in sorted(self.candidates):
            observed, mean, adj_p = self.candidates[s]
            marker = "  <- s*" if s == self.threshold else ""
            lines.append(f"{s:>6d} {observed:>9d} {mean:>10.2f} "
                         f"{adj_p:>10.3g}{marker}")
        if self.found:
            lines.append(
                f"s* = {self.threshold}: {self.observed_count} itemsets "
                f"flagged, FDR <= {self.fdr_bound:.3g}")
        else:
            lines.append("no candidate threshold is significant")
        return "\n".join(lines)


def find_support_threshold(
    item_tidsets: Sequence[int],
    n_records: int,
    k: int,
    min_sup: int,
    alpha: float = 0.05,
    n_null_samples: int = 20,
    n_candidates: int = 10,
    min_observed: int = 5,
    seed: Optional[int] = None,
) -> SupportThresholdResult:
    """Search for the significant support threshold ``s*``.

    Parameters
    ----------
    k:
        Itemset size under test (the method is per-size, as in the
        original).
    min_sup:
        Lower end of the candidate grid, and the mining threshold for
        both the observed and the null datasets.
    n_null_samples:
        Random datasets used to estimate the null mean of each count.
    n_candidates:
        Grid size; candidates are spaced evenly between ``min_sup``
        and the largest observed k-itemset support.
    min_observed:
        Smallest observed count a candidate may flag. Counts below
        this sit where the Poisson approximation (and the Monte-Carlo
        mean estimate) are least trustworthy.
    """
    if k < 1:
        raise StatsError(f"itemset size k must be >= 1, got {k}")
    if not 0.0 < alpha < 1.0:
        raise StatsError(f"alpha must be in (0, 1), got {alpha}")
    if n_null_samples < 1:
        raise StatsError("need at least one null sample")
    if n_candidates < 1:
        raise StatsError("need at least one candidate threshold")

    observed_supports = _k_itemset_supports(item_tidsets, n_records,
                                            k, min_sup)
    grid = _candidate_grid(observed_supports, min_sup, n_candidates)

    null = NullModel(item_tidsets, n_records)
    rng = random.Random(seed)
    null_counts: Dict[int, List[int]] = {s: [] for s in grid}
    for __ in range(n_null_samples):
        sampled = null.sample_tidsets(rng)
        supports = _k_itemset_supports(sampled, n_records, k, min_sup)
        for s in grid:
            null_counts[s].append(sum(1 for v in supports if v >= s))

    candidates: Dict[int, tuple] = {}
    threshold: Optional[int] = None
    for s in grid:
        observed = sum(1 for v in observed_supports if v >= s)
        # Two pseudo-events keep the Monte-Carlo mean away from an
        # exact zero, which would score any observed count as p=0.
        mean = (sum(null_counts[s]) + 2) / n_null_samples
        raw_p = poisson_test_upper(observed, mean) if observed else 1.0
        adj_p = min(1.0, raw_p * len(grid))
        candidates[s] = (observed, mean, adj_p)
        if adj_p <= alpha and observed >= min_observed:
            if threshold is None or s < threshold:
                threshold = s

    if threshold is None:
        return SupportThresholdResult(
            k=k, alpha=alpha, threshold=None, observed_count=0,
            null_mean=0.0, fdr_bound=1.0,
            n_null_samples=n_null_samples, candidates=candidates)
    observed, mean, __ = candidates[threshold]
    return SupportThresholdResult(
        k=k, alpha=alpha, threshold=threshold,
        observed_count=observed, null_mean=mean,
        fdr_bound=min(1.0, mean / observed),
        n_null_samples=n_null_samples, candidates=candidates)


def _k_itemset_supports(item_tidsets: Sequence[int], n_records: int,
                        k: int, min_sup: int) -> List[int]:
    """Supports of all size-k itemsets with support >= min_sup."""
    patterns = mine_apriori(item_tidsets, n_records, min_sup,
                            max_length=k)
    return [p.support for p in patterns if len(p.items) == k]


def _candidate_grid(observed_supports: Sequence[int], min_sup: int,
                    n_candidates: int) -> List[int]:
    """Evenly spaced candidate thresholds over the observed range."""
    top = max(observed_supports, default=min_sup)
    if top <= min_sup or n_candidates == 1:
        return [min_sup]
    step = (top - min_sup) / (n_candidates - 1)
    grid = sorted({min_sup + round(i * step)
                   for i in range(n_candidates)})
    return grid
