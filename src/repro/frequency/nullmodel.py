"""The item-independence null model for pattern frequencies.

Both frequency-significance methods share one null hypothesis: every
item occurs independently, with the marginal frequency observed in the
real data. Under it the support of pattern ``X`` is
``Binomial(n, prod_i f_i)``. :class:`NullModel` packages the observed
marginals, exact binomial scoring of a pattern's support, and the
sampler that materializes frequency-preserving random datasets
(Megiddo & Srikant's resampling step — their samples "preserve the
frequency of single items but make all occurrences independent").
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence

from ..errors import StatsError
from ..stats.binomial import binomial_test_upper
from ..stats.logfact import LogFactorialBuffer
from ..tidvector import TidVector, as_tidvector

__all__ = ["NullModel", "item_frequencies", "pattern_null_probability"]


def item_frequencies(item_tidsets: Sequence,
                     n_records: int) -> List[float]:
    """Observed marginal frequency of every item."""
    if n_records <= 0:
        raise StatsError(f"n_records must be positive, got {n_records}")
    return [as_tidvector(tids, n_records).count() / n_records
            for tids in item_tidsets]


def pattern_null_probability(frequencies: Sequence[float],
                             items: Iterable[int]) -> float:
    """``prod_i f_i``: a record's chance of containing ``X`` under
    independence."""
    probability = 1.0
    for item in items:
        probability *= frequencies[item]
    return probability


class NullModel:
    """Item-independence null for a fixed transactional dataset.

    Parameters
    ----------
    item_tidsets:
        Columnar layout of the observed data (one bitset per item).
    n_records:
        Number of records the tidsets index into.
    """

    def __init__(self, item_tidsets: Sequence[int],
                 n_records: int) -> None:
        self.n_records = n_records
        self.frequencies = item_frequencies(item_tidsets, n_records)
        self._buffer = LogFactorialBuffer(n_records + 1)

    @property
    def n_items(self) -> int:
        """Number of items the model covers."""
        return len(self.frequencies)

    def pattern_probability(self, items: Iterable[int]) -> float:
        """Null probability that one record contains the pattern."""
        return pattern_null_probability(self.frequencies, items)

    def p_value(self, support: int, items: Iterable[int]) -> float:
        """Exact binomial upper-tail p-value of a pattern's support.

        The probability, under independence, of the pattern occurring
        in ``support`` or more of the ``n`` records.
        """
        p0 = self.pattern_probability(items)
        return binomial_test_upper(support, self.n_records, p0,
                                   buffer=self._buffer)

    def expected_support(self, items: Iterable[int]) -> float:
        """Null-mean support ``n * prod_i f_i`` of a pattern."""
        return self.n_records * self.pattern_probability(items)

    def sample_tidsets(self, rng: random.Random) -> List[TidVector]:
        """Draw one frequency-preserving independent dataset.

        Item ``i`` enters each record independently with probability
        ``f_i``; the returned packed tidsets have the observed data's
        shape and (in expectation) its marginals, but no item
        interactions. The RNG draw sequence matches the historical
        bigint sampler exactly (one uniform per record for fractional
        frequencies), so seeded runs reproduce.
        """
        n = self.n_records
        tidsets: List[TidVector] = []
        for frequency in self.frequencies:
            if frequency >= 1.0:
                tidsets.append(TidVector.universe(n))
            elif frequency > 0.0:
                flags = [rng.random() < frequency for _ in range(n)]
                tidsets.append(TidVector.from_bool(flags))
            else:
                tidsets.append(TidVector.empty(n))
        return tidsets
