"""Megiddo & Srikant's resampling calibration (SIGKDD 1998, ref [13]).

The method asks: at which p-value cut-off do frequency-significant
patterns start to appear in data that has *no* structure? It generates
``n_resamples`` random datasets from the item-independence null, mines
each with the same ``min_sup``, scores every mined pattern with the
exact binomial upper-tail test, and picks the largest cut-off at which
the *average* number of null patterns passing stays below a false-
positive budget (default: one per dataset, their "small number of
false discoveries" criterion).

Section 6 notes the original used only 9 resamples, "which may be too
small to find a proper cut-off threshold" — ``n_resamples`` is a
parameter here precisely so the ablation bench can quantify that
criticism.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import StatsError
from ..mining.apriori import mine_apriori
from .nullmodel import NullModel

__all__ = [
    "ScoredPattern",
    "CalibrationResult",
    "score_patterns",
    "calibrate_cutoff",
    "significant_frequent_patterns",
]


@dataclass(frozen=True)
class ScoredPattern:
    """A frequent pattern with its frequency-significance score."""

    items: frozenset
    support: int
    expected_support: float
    p_value: float

    @property
    def length(self) -> int:
        """Number of items in the pattern."""
        return len(self.items)

    @property
    def lift(self) -> float:
        """Observed over null-expected support."""
        if self.expected_support == 0.0:
            return float("inf") if self.support else 1.0
        return self.support / self.expected_support


@dataclass
class CalibrationResult:
    """Outcome of the resampling calibration.

    ``threshold`` is the calibrated raw-p cut-off; ``null_p_values``
    holds, per resample, the sorted p-values of the patterns mined on
    that random dataset (kept for diagnostics and the ablation bench).
    """

    threshold: float
    n_resamples: int
    false_positive_budget: float
    null_p_values: List[List[float]] = field(repr=False)

    @property
    def mean_null_patterns(self) -> float:
        """Average number of patterns mined per random dataset."""
        if not self.null_p_values:
            return 0.0
        return (sum(len(ps) for ps in self.null_p_values)
                / len(self.null_p_values))

    def expected_false_positives(self, threshold: float) -> float:
        """Average count of null patterns at or below ``threshold``."""
        if not self.null_p_values:
            return 0.0
        passing = sum(
            sum(1 for p in ps if p <= threshold)
            for ps in self.null_p_values)
        return passing / len(self.null_p_values)


def score_patterns(item_tidsets: Sequence[int], n_records: int,
                   min_sup: int,
                   null: Optional[NullModel] = None,
                   max_length: Optional[int] = None,
                   ) -> List[ScoredPattern]:
    """Mine all frequent patterns and score each against the null.

    Single items are excluded: their observed frequency *is* the null
    frequency, so their test is vacuous (p = ~0.5 noise) and counting
    them would only dilute the calibration.
    """
    null = null or NullModel(item_tidsets, n_records)
    patterns = mine_apriori(item_tidsets, n_records, min_sup,
                            max_length=max_length)
    scored = []
    for pattern in patterns:
        if len(pattern.items) < 2:
            continue
        scored.append(ScoredPattern(
            items=pattern.items,
            support=pattern.support,
            expected_support=null.expected_support(pattern.items),
            p_value=null.p_value(pattern.support, pattern.items),
        ))
    return scored


def calibrate_cutoff(item_tidsets: Sequence[int], n_records: int,
                     min_sup: int,
                     n_resamples: int = 9,
                     false_positive_budget: float = 1.0,
                     max_length: Optional[int] = None,
                     seed: Optional[int] = None) -> CalibrationResult:
    """Find the largest cut-off meeting the false-positive budget.

    Parameters
    ----------
    n_resamples:
        Random datasets to mine; Megiddo & Srikant used 9.
    false_positive_budget:
        Acceptable *expected* number of null patterns passing the
        cut-off (per dataset). 1.0 reproduces the original's "roughly
        one false discovery"; smaller values are stricter.
    """
    if n_resamples < 1:
        raise StatsError(
            f"need at least one resample, got {n_resamples}")
    if false_positive_budget <= 0.0:
        raise StatsError("false_positive_budget must be positive")
    null = NullModel(item_tidsets, n_records)
    rng = random.Random(seed)
    null_p_values: List[List[float]] = []
    for __ in range(n_resamples):
        sampled = null.sample_tidsets(rng)
        sampled_null = NullModel(sampled, n_records)
        scored = score_patterns(sampled, n_records, min_sup,
                                null=sampled_null,
                                max_length=max_length)
        null_p_values.append(sorted(s.p_value for s in scored))
    pooled = sorted(p for ps in null_p_values for p in ps)
    # The largest threshold admitting at most budget*n_resamples pooled
    # null p-values; when ties straddle the budget, one ulp below the
    # tied value (possibly negative, admitting nothing — the honest
    # answer when even the smallest null p busts the budget).
    allowed = int(false_positive_budget * n_resamples)
    if len(pooled) <= allowed:
        threshold = 1.0
    else:
        excess = pooled[allowed]
        if allowed and pooled[allowed - 1] < excess:
            threshold = pooled[allowed - 1]
        else:
            threshold = math.nextafter(excess, -1.0)
    return CalibrationResult(
        threshold=threshold,
        n_resamples=n_resamples,
        false_positive_budget=false_positive_budget,
        null_p_values=null_p_values,
    )


def significant_frequent_patterns(
    item_tidsets: Sequence[int], n_records: int, min_sup: int,
    n_resamples: int = 9,
    false_positive_budget: float = 1.0,
    max_length: Optional[int] = None,
    seed: Optional[int] = None,
) -> List[ScoredPattern]:
    """The full Megiddo–Srikant pipeline: score, calibrate, filter.

    Returns the patterns whose binomial p-value clears the resampling-
    calibrated cut-off, sorted by p-value.
    """
    calibration = calibrate_cutoff(
        item_tidsets, n_records, min_sup, n_resamples=n_resamples,
        false_positive_budget=false_positive_budget,
        max_length=max_length, seed=seed)
    scored = score_patterns(item_tidsets, n_records, min_sup,
                            max_length=max_length)
    significant = [s for s in scored
                   if s.p_value <= calibration.threshold]
    significant.sort(key=lambda s: (s.p_value, -s.support))
    return significant
