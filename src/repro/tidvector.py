"""Packed record sets: the library's native tidset representation.

A *tidset* — the set of record ids containing an item, a pattern or a
class label — is stored as a :class:`TidVector`: ``ceil(n / 64)``
little-endian ``uint64`` words (record ``i`` is bit ``i % 64`` of word
``i // 64``), usually a row view into a shared ``(n_sets, n_words)``
arena built once at ingest. Every layer of the library — ingest,
mining, rule scoring, the permutation/holdout corrections, the
classifiers — consumes this one representation, so the packed
:class:`~repro.bitmat.BitMatrix` kernels adopt mined tidsets without
any per-row conversion and set algebra runs as word-wise numpy
operations (``bitwise_and`` / ``bitwise_or`` / ``bitwise_count``, the
POPCNT instruction on x86) instead of bigint arithmetic.

The word layout is byte-identical to :func:`repro.bitset.to_uint64_words`
of the historical bigint bitsets, so the two representations describe
identical sets and convert losslessly (:meth:`TidVector.from_bigint` /
:meth:`TidVector.to_bigint`). For interop with out-of-tree plugins and
with the bigint property-test oracles, a :class:`TidVector` also quacks
like the bigint it replaces: ``&``, ``|``, ``==`` accept ints,
``bit_count()`` matches ``int.bit_count``, and ``__index__`` lets
``bin()``/``int()`` observe the underlying set.

All operations treat a TidVector as immutable and return new vectors;
row views never write through to their arena.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

__all__ = [
    "TidVector",
    "as_tidvector",
    "as_tidvectors",
    "pack_id_lists",
    "pack_pairs",
    "pack_bool_matrix",
    "unpack_arena",
    "arena_rows",
    "stack_tidvectors",
    "words_for",
]

#: Above this many cells a scatter into a dense bool matrix would
#: out-weigh its packbits savings; the reduceat path takes over.
_BOOL_SCATTER_BUDGET = 256 * 1024 * 1024

_UINT64 = np.dtype("<u8")
_ONE = np.uint64(1)


def words_for(n: int) -> int:
    """Number of uint64 words needed to hold ``n`` record bits."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return (n + 63) // 64


def _tail_mask(n: int, n_words: int) -> Optional[np.ndarray]:
    """Word array masking bits ``>= n`` (None when none exist)."""
    tail = n % 64
    if n_words == 0 or tail == 0:
        return None
    mask = np.full(n_words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
    mask[-1] = np.uint64((1 << tail) - 1)
    return mask


class TidVector:
    """A fixed-width packed set of record ids in ``[0, n)``.

    Parameters
    ----------
    words:
        1-D uint64 array of length ``words_for(n)``; bits at or above
        ``n`` must be zero (builders guarantee this).
    n:
        The universe size (number of records).
    """

    __slots__ = ("words", "n")

    def __init__(self, words: np.ndarray, n: int) -> None:
        words = np.asarray(words, dtype=np.uint64)
        if words.ndim != 1 or words.shape[0] != words_for(n):
            raise ValueError(
                f"need {words_for(n)} words for {n} records, got shape "
                f"{words.shape}")
        self.words = words
        self.n = n

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, n: int) -> "TidVector":
        """The empty set over ``n`` records."""
        return cls(np.zeros(words_for(n), dtype=np.uint64), n)

    @classmethod
    def universe(cls, n: int) -> "TidVector":
        """The set of every record id in ``[0, n)``."""
        n_words = words_for(n)
        words = np.full(n_words, np.uint64(0xFFFFFFFFFFFFFFFF),
                        dtype=np.uint64)
        mask = _tail_mask(n, n_words)
        if mask is not None:
            words &= mask
        return cls(words, n)

    @classmethod
    def from_indices(cls, indices: Iterable[int], n: int) -> "TidVector":
        """Build from an iterable of record ids (validated in range)."""
        ids = np.fromiter(indices, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= n):
            bad = int(ids.min() if ids.min() < 0 else ids.max())
            raise ValueError(f"record id {bad} out of range [0, {n})")
        words = np.zeros(words_for(n), dtype=np.uint64)
        if ids.size:
            np.bitwise_or.at(words, ids >> 6,
                             _ONE << (ids & 63).astype(np.uint64))
        return cls(words, n)

    @classmethod
    def from_bool(cls, flags) -> "TidVector":
        """Build from a boolean indicator array of length ``n``."""
        flags = np.ascontiguousarray(flags, dtype=bool)
        if flags.ndim != 1:
            raise ValueError("indicator must be one-dimensional")
        n = flags.shape[0]
        n_words = words_for(n)
        packed = np.packbits(flags, bitorder="little")
        padded = np.zeros(n_words * 8, dtype=np.uint8)
        padded[:packed.shape[0]] = packed
        return cls(padded.view(_UINT64).astype(np.uint64, copy=False), n)

    @classmethod
    def from_bigint(cls, bits: int, n: int) -> "TidVector":
        """Pack a bigint bitset (interop with :mod:`repro.bitset`)."""
        bits = int(bits)
        if bits < 0:
            raise ValueError("bitsets are non-negative")
        if bits >> n:
            raise ValueError(f"bitset references records >= {n}")
        raw = bits.to_bytes(words_for(n) * 8, "little")
        words = np.frombuffer(raw, dtype=_UINT64)
        return cls(words.astype(np.uint64, copy=False), n)

    def copy(self) -> "TidVector":
        """An owned copy (detached from any shared arena)."""
        return TidVector(self.words.copy(), self.n)

    # ------------------------------------------------------------------
    # set algebra (word-wise numpy ops; always allocate a new vector)
    # ------------------------------------------------------------------

    def _coerced(self, other) -> "TidVector":
        if isinstance(other, TidVector):
            if other.n != self.n:
                raise ValueError(
                    f"universe mismatch: {self.n} vs {other.n} records")
            return other
        if isinstance(other, (int, np.integer)):
            # Bigint interop: bits outside the universe are masked off,
            # so expressions like ``tids & ~universe`` (two's-complement
            # ints carry infinitely many high bits) keep their set
            # meaning within [0, n).
            return TidVector.from_bigint(
                int(other) & ((1 << self.n) - 1), self.n)
        return NotImplemented  # type: ignore[return-value]

    def __and__(self, other) -> "TidVector":
        other = self._coerced(other)
        if other is NotImplemented:
            return NotImplemented
        return TidVector(self.words & other.words, self.n)

    __rand__ = __and__

    def __or__(self, other) -> "TidVector":
        other = self._coerced(other)
        if other is NotImplemented:
            return NotImplemented
        return TidVector(self.words | other.words, self.n)

    __ror__ = __or__

    def andnot(self, other) -> "TidVector":
        """Set difference ``self \\ other`` (the bigint ``a & ~b``)."""
        other = self._coerced(other)
        return TidVector(self.words & ~other.words, self.n)

    def complement(self) -> "TidVector":
        """All records not in this set."""
        words = ~self.words
        mask = _tail_mask(self.n, self.words.shape[0])
        if mask is not None:
            words &= mask
        return TidVector(words, self.n)

    #: ``~tids`` is the complement *within the universe* — combined
    #: with ``&`` this matches the bigint ``a & ~b`` subset idiom.
    __invert__ = complement

    def without_indices(self, indices: Iterable[int]) -> "TidVector":
        """Copy with the given record ids cleared."""
        ids = np.fromiter(indices, dtype=np.int64)
        words = self.words.copy()
        if ids.size:
            np.bitwise_and.at(words, ids >> 6,
                              ~(_ONE << (ids & 63).astype(np.uint64)))
        return TidVector(words, self.n)

    # ------------------------------------------------------------------
    # counting and predicates
    # ------------------------------------------------------------------

    def count(self) -> int:
        """Cardinality of the set (hardware popcount)."""
        return int(np.bitwise_count(self.words).sum())

    #: Bigint-compatible spelling (``int.bit_count``), so the interop
    #: shim :func:`repro.bitset.popcount` accepts either representation.
    bit_count = count

    def intersection_count(self, other) -> int:
        """``|self ∩ other|`` without materializing the intersection."""
        other = self._coerced(other)
        return int(np.bitwise_count(self.words & other.words).sum())

    def andnot_count(self, other) -> int:
        """``|self \\ other|`` without materializing the difference."""
        other = self._coerced(other)
        return int(np.bitwise_count(self.words & ~other.words).sum())

    def is_subset(self, other) -> bool:
        """True when every record of ``self`` is also in ``other``."""
        other = self._coerced(other)
        return not np.any(self.words & ~other.words)

    def intersects(self, other) -> bool:
        """True when the two sets share at least one record."""
        other = self._coerced(other)
        return bool(np.any(self.words & other.words))

    def __bool__(self) -> bool:
        return bool(np.any(self.words))

    def __eq__(self, other) -> bool:
        if isinstance(other, TidVector):
            return self.n == other.n and bool(
                np.array_equal(self.words, other.words))
        if isinstance(other, (int, np.integer)):
            return self.to_bigint() == int(other)
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((self.n, self.words.tobytes()))

    # ------------------------------------------------------------------
    # enumeration and conversion
    # ------------------------------------------------------------------

    def indices(self) -> np.ndarray:
        """Record ids of the set bits, ascending, as int32."""
        flags = np.unpackbits(self.words.view(np.uint8),
                              bitorder="little")[:self.n]
        return np.nonzero(flags)[0].astype(np.int32)

    def iter_indices(self) -> Iterator[int]:
        """Yield the record ids of the set bits in ascending order."""
        for i in self.indices():
            yield int(i)

    def to_bool(self) -> np.ndarray:
        """Boolean indicator array of length ``n``."""
        return np.unpackbits(self.words.view(np.uint8),
                             bitorder="little")[:self.n].astype(bool)

    def to_bigint(self) -> int:
        """The equivalent bigint bitset (interop / oracle checks)."""
        return int.from_bytes(
            np.ascontiguousarray(self.words).astype(_UINT64,
                                                    copy=False).tobytes(),
            "little")

    def __index__(self) -> int:
        # Lets bigint-era call sites (``bin(tids)``, ``int(tids)``,
        # format strings) observe the set without an explicit convert.
        return self.to_bigint()

    def __rshift__(self, k: int) -> int:
        # Bigint-compatible probing (``tids >> r & 1``).
        return self.to_bigint() >> int(k)

    def __repr__(self) -> str:
        return f"TidVector(n={self.n}, count={self.count()})"


TidsetLike = Union[TidVector, int]


def as_tidvector(value: TidsetLike, n: int) -> TidVector:
    """Coerce a tidset in either representation to a :class:`TidVector`.

    Accepts a TidVector (checked against ``n``) or a bigint bitset
    (plugin/oracle interop). This is the single normalization point
    every mining and scoring entry path funnels through.
    """
    if isinstance(value, TidVector):
        if value.n != n:
            raise ValueError(
                f"TidVector over {value.n} records used where {n} "
                f"records are expected")
        return value
    return TidVector.from_bigint(int(value), n)


def as_tidvectors(values: Sequence[TidsetLike], n: int) -> List[TidVector]:
    """Coerce a whole sequence of tidsets (see :func:`as_tidvector`)."""
    return [as_tidvector(value, n) for value in values]


def pack_bool_matrix(flags: np.ndarray) -> np.ndarray:
    """Pack a ``(k, n)`` bool matrix into a ``(k, n_words)`` arena."""
    flags = np.ascontiguousarray(flags, dtype=bool)
    if flags.ndim != 2:
        raise ValueError("flags must be two-dimensional")
    n = flags.shape[1]
    n_words = words_for(n)
    packed = np.packbits(flags, axis=1, bitorder="little")
    padded = np.zeros((flags.shape[0], n_words * 8), dtype=np.uint8)
    padded[:, :packed.shape[1]] = packed
    return padded.view(_UINT64).astype(np.uint64, copy=False)


def unpack_arena(arena: np.ndarray, n: int) -> np.ndarray:
    """Unpack a ``(k, n_words)`` arena into a ``(k, n)`` bool matrix."""
    if arena.shape[0] == 0:
        return np.zeros((0, n), dtype=bool)
    bits = np.unpackbits(arena.view(np.uint8), axis=1, bitorder="little")
    return bits[:, :n].astype(bool)


def _pack_cells(rows: np.ndarray, record_ids: np.ndarray,
                n_sets: int, n: int) -> np.ndarray:
    """OR ``(row, record)`` pairs into a ``(n_sets, n_words)`` arena.

    Pairs are turned into ``(word, bit)`` coordinates and merged per
    destination word with one ``bitwise_or.reduceat`` pass (``ufunc.at``
    is an order of magnitude slower on repeated indices); already-sorted
    input — the common case, ids accumulated set by set in ascending
    record order — skips the sort entirely. Small-enough shapes take an
    even simpler route: scatter into a dense bool matrix and
    ``packbits`` it.
    """
    n_words = words_for(n)
    if n_sets * max(n, 1) <= _BOOL_SCATTER_BUDGET:
        flags = np.zeros((n_sets, n), dtype=bool)
        flags[rows, record_ids] = True
        return pack_bool_matrix(flags)
    arena = np.zeros((n_sets, n_words), dtype=np.uint64)
    cell = rows * n_words + (record_ids >> 6)
    values = _ONE << (record_ids & 63).astype(np.uint64)
    if cell.size > 1 and np.any(cell[1:] < cell[:-1]):
        order = np.argsort(cell, kind="stable")
        cell = cell[order]
        values = values[order]
    starts = np.flatnonzero(np.concatenate(
        ([True], cell[1:] != cell[:-1])))
    merged = np.bitwise_or.reduceat(values, starts)
    arena.reshape(-1)[cell[starts]] = merged
    return arena


def pack_pairs(set_ids, record_ids, n_sets: int, n: int) -> np.ndarray:
    """Pack parallel ``(set_id, record_id)`` arrays into an arena.

    The vectorized ingest kernel behind ``Dataset.from_records``: all
    cells of a tokenized dataset land in the packed arena through a
    handful of C-level array ops, with no per-cell Python arithmetic
    and no intermediate bigints. Pairs may repeat; out-of-range ids
    raise.
    """
    set_ids = np.asarray(set_ids, dtype=np.int64)
    record_ids = np.asarray(record_ids, dtype=np.int64)
    if set_ids.shape != record_ids.shape or set_ids.ndim != 1:
        raise ValueError("set_ids and record_ids must be parallel "
                         "1-D arrays")
    if set_ids.size == 0:
        return np.zeros((n_sets, words_for(n)), dtype=np.uint64)
    if set_ids.min() < 0 or set_ids.max() >= n_sets:
        raise ValueError("set id out of range")
    if record_ids.min() < 0 or record_ids.max() >= n:
        bad = int(record_ids.min() if record_ids.min() < 0
                  else record_ids.max())
        raise ValueError(f"record id {bad} out of range [0, {n})")
    return _pack_cells(set_ids, record_ids, n_sets, n)


def pack_id_lists(id_lists: Sequence[Sequence[int]], n: int) -> np.ndarray:
    """Pack per-set record-id lists into a ``(n_sets, n_words)`` arena.

    Convenience wrapper over :func:`pack_pairs` for ragged inputs
    (transactions, per-item accumulation lists).
    """
    n_sets = len(id_lists)
    lengths = np.fromiter((len(ids) for ids in id_lists),
                          dtype=np.int64, count=n_sets)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros((n_sets, words_for(n)), dtype=np.uint64)
    flat = np.empty(total, dtype=np.int64)
    offset = 0
    for ids in id_lists:
        k = len(ids)
        if k:
            flat[offset:offset + k] = ids
            offset += k
    rows = np.repeat(np.arange(n_sets, dtype=np.int64), lengths)
    return pack_pairs(rows, flat, n_sets, n)


def arena_rows(arena: np.ndarray, n: int) -> List[TidVector]:
    """Wrap each row of a packed arena as a :class:`TidVector` view.

    Rows share the arena's memory; TidVector ops never write through,
    so the views are safe to hand out.
    """
    return [TidVector(arena[i], n) for i in range(arena.shape[0])]


def _shared_arena_view(vectors: Sequence[TidVector]) -> Optional[np.ndarray]:
    """A zero-copy ``(len, n_words)`` view when the vectors are
    consecutive rows of one contiguous 2-D arena, else ``None``.

    This is the common adoption shape — ``arena_rows`` hands out row
    views in order, and consumers immediately want the arena back —
    so detecting it turns the stack into a slice of the original
    arena instead of a fresh copy.
    """
    first = vectors[0].words
    base = first.base
    if base is None or first.ndim != 1 or first.dtype != np.uint64 \
            or not first.flags.c_contiguous:
        return None
    n_words = first.shape[0]
    if n_words == 0:
        return None
    # Numpy collapses view chains to the ultimate owning buffer, so the
    # arena itself may be a view and ``base`` 1-D: verify sharing and
    # adjacency by address, not by shape.
    origin = first.__array_interface__["data"][0]
    stride = n_words * first.itemsize
    for i, vector in enumerate(vectors):
        words = vector.words
        if words.base is not base or words.ndim != 1 \
                or words.shape[0] != n_words \
                or words.dtype != np.uint64 \
                or not words.flags.c_contiguous:
            return None
        if words.__array_interface__["data"][0] != origin + i * stride:
            return None
    # Every row is a live view of ``base`` and the rows are exactly
    # consecutive, so the strided window stays within the buffer.
    return np.lib.stride_tricks.as_strided(
        first, shape=(len(vectors), n_words),
        strides=(stride, first.itemsize))


def stack_tidvectors(vectors: Sequence[TidVector],
                     n: Optional[int] = None) -> np.ndarray:
    """Stack vectors into a ``(len, n_words)`` uint64 matrix.

    The adoption path from mined tidsets to the packed
    :class:`~repro.bitmat.BitMatrix` kernels: one contiguous copy of
    already-packed words, no bigint round-trip. ``n`` is required only
    for an empty sequence.

    When the vectors are already consecutive row views over one shared
    contiguous arena (the :func:`arena_rows` round trip), the original
    arena slice is returned as a zero-copy view instead of a fresh
    allocation — TidVector ops never write through their words, so the
    view is as safe as a copy and keeps whole-arena adoption free even
    for memory-mapped arenas.
    """
    if not vectors:
        if n is None:
            raise ValueError("n is required to stack zero vectors")
        return np.zeros((0, words_for(n)), dtype=np.uint64)
    width = vectors[0].n
    for vector in vectors:
        if vector.n != width:
            raise ValueError(
                f"cannot stack TidVectors over {vector.n} and {width} "
                f"records")
    if n is not None and n != width:
        raise ValueError(
            f"TidVectors cover {width} records, expected {n}")
    shared = _shared_arena_view(vectors)
    if shared is not None:
        return shared
    return np.stack([vector.words for vector in vectors])
