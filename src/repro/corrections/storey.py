"""Adaptive FDR control: Storey's q-values and two-stage BH.

Benjamini–Hochberg controls FDR at ``alpha * pi0`` where ``pi0`` is the
(unknown) fraction of true null hypotheses. In rule mining, ``pi0`` is
usually close to 1 on random data but can be well below 1 on real
datasets, where a large share of rules reflect genuine structure
(Figure 15 shows >80% of adult/mushroom rules below 1e-12). Adaptive
procedures estimate ``pi0`` and spend the reclaimed budget on extra
power:

* :func:`estimate_pi0` — Storey's fixed-``lambda`` estimator
  ``pi0 = #{p > lambda} / ((1 - lambda) * Nt)``, clamped to (0, 1].
* :func:`q_values` — Storey's q-value transform: ``q_(i) = min_{j>=i}
  pi0 * Nt * p_(j) / j``, the minimal FDR at which rule ``i`` would be
  declared significant.
* :func:`storey_fdr` — declare significant every rule with
  ``q <= alpha``. With ``pi0 = 1`` this is exactly BH.
* :func:`two_stage_bh` — the Benjamini–Krieger–Yekutieli (2006)
  two-stage procedure: a first BH pass at ``alpha / (1 + alpha)``
  estimates the null count as ``Nt - r1``; a second pass re-runs BH at
  the inflated level. Provably controls FDR at ``alpha`` under
  independence without a tuning parameter.

These are extensions beyond the paper's Section 4.1; they answer its
closing observation that the direct adjustment approach "inflates the
number of false negatives unnecessarily" with the standard remedies
from the FDR literature.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import CorrectionError
from ..mining.rules import RuleSet
from .base import (
    FDR,
    CorrectionResult,
    bh_step_up,
    select_by_threshold,
    validate_alpha,
)

__all__ = ["estimate_pi0", "q_values", "storey_fdr", "two_stage_bh"]


def estimate_pi0(p_values: Sequence[float], lam: float = 0.5) -> float:
    """Storey's estimate of the true-null fraction ``pi0``.

    P-values of true nulls are (approximately) uniform, so the density
    above ``lam`` is almost entirely null mass: ``pi0 ~= #{p > lam} /
    ((1 - lam) * Nt)``. The estimate is clamped to ``(0, 1]`` — values
    above 1 (possible by chance) must not *reduce* power below BH, and
    0 would declare everything significant.

    ``lam`` trades bias (low ``lam`` inflates ``pi0`` when alternatives
    leak above it) against variance (high ``lam`` leaves few p-values
    to count). Storey's software defaults to a smoother over a grid;
    for rule mining the fixed default 0.5 is robust because real rule
    p-values are extremely small and barely contaminate (0.5, 1].
    """
    if not 0.0 < lam < 1.0:
        raise CorrectionError(f"lambda must be in (0, 1), got {lam}")
    m = len(p_values)
    if m == 0:
        return 1.0
    above = sum(1 for p in p_values if p > lam)
    pi0 = above / ((1.0 - lam) * m)
    return min(1.0, max(pi0, 1.0 / m))


def q_values(p_values: Sequence[float], pi0: float = None,
             lam: float = 0.5) -> List[float]:
    """The q-value of every p-value, in input order.

    ``q(p_(i)) = min_{j >= i} pi0 * Nt * p_(j) / j`` — the smallest FDR
    level at which hypothesis ``i`` enters the rejection set. The
    trailing-minimum pass enforces monotonicity (a smaller p-value can
    never have a larger q-value).
    """
    if pi0 is None:
        pi0 = estimate_pi0(p_values, lam)
    if not 0.0 < pi0 <= 1.0:
        raise CorrectionError(f"pi0 must be in (0, 1], got {pi0}")
    m = len(p_values)
    if m == 0:
        return []
    order = sorted(range(m), key=lambda i: p_values[i])
    out = [0.0] * m
    running = 1.0
    for rank in range(m, 0, -1):
        index = order[rank - 1]
        running = min(running, pi0 * m * p_values[index] / rank)
        out[index] = running
    return out


def storey_fdr(ruleset: RuleSet, alpha: float = 0.05,
               lam: float = 0.5) -> CorrectionResult:
    """Storey's adaptive FDR: declare rules with ``q <= alpha``.

    Equivalent to BH run at the inflated level ``alpha / pi0``; with
    ``pi0`` estimated at 1 the two procedures coincide exactly.
    """
    validate_alpha(alpha)
    raw = ruleset.p_values()
    pi0 = estimate_pi0(raw, lam)
    qs = q_values(raw, pi0=pi0)
    threshold = 0.0
    for p, q in zip(raw, qs):
        if q <= alpha:
            threshold = max(threshold, p)
    significant = select_by_threshold(ruleset.rules, threshold)
    return CorrectionResult(
        method="Storey", control=FDR, alpha=alpha, threshold=threshold,
        significant=significant, n_tests=ruleset.n_tests,
        details={"pi0": pi0, "lambda": lam},
    )


def two_stage_bh(ruleset: RuleSet, alpha: float = 0.05) -> CorrectionResult:
    """Benjamini–Krieger–Yekutieli two-stage adaptive BH.

    Stage 1 runs BH at ``alpha' = alpha / (1 + alpha)`` and counts its
    rejections ``r1``. ``r1 = 0`` stops (nothing significant);
    ``r1 = Nt`` rejects everything. Otherwise stage 2 re-runs BH at
    ``alpha' * Nt / (Nt - r1)``, treating ``Nt - r1`` as the estimated
    null count.
    """
    validate_alpha(alpha)
    raw = ruleset.p_values()
    n_tests = ruleset.n_tests
    alpha_prime = alpha / (1.0 + alpha)
    stage1_cut = bh_step_up(raw, alpha_prime)
    r1 = sum(1 for p in raw if p <= stage1_cut)
    if r1 == 0:
        threshold = 0.0
    elif r1 == n_tests:
        threshold = max(raw) if raw else 0.0
    else:
        threshold = bh_step_up(
            raw, alpha_prime * n_tests / (n_tests - r1))
    significant = select_by_threshold(ruleset.rules, threshold)
    return CorrectionResult(
        method="BKY", control=FDR, alpha=alpha, threshold=threshold,
        significant=significant, n_tests=n_tests,
        details={"stage1_rejections": r1,
                 "stage1_threshold": stage1_cut},
    )


from .registry import Correction, register_correction  # noqa: E402

register_correction(Correction(
    name="storey", abbreviation="Storey", family=FDR,
    apply_fn=lambda ruleset, alpha, ctx: storey_fdr(ruleset, alpha),
    aliases=("q-value", "qvalue"), direct=True,
    description="Storey q-values: adaptive FDR via pi0 estimation"))

register_correction(Correction(
    name="bky", abbreviation="BKY", family=FDR,
    apply_fn=lambda ruleset, alpha, ctx: two_stage_bh(ruleset, alpha),
    aliases=("two-stage-bh",), direct=True,
    description="Benjamini-Krieger-Yekutieli two-stage adaptive BH"))
