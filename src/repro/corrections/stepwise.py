"""Stepwise FWER procedures: Holm, Hochberg and Šidák.

The paper's direct adjustment arm uses single-step Bonferroni (FWER)
and Benjamini–Hochberg (FDR). The classical multiple-testing literature
offers strictly more powerful FWER procedures at no extra modelling
cost, and they slot into the same pipeline — each consumes a scored
:class:`~repro.mining.rules.RuleSet` and returns a
:class:`~repro.corrections.base.CorrectionResult`:

* :func:`holm` — Holm's step-down procedure (Holm 1979). Sort p-values
  ascending and accept while ``p_(i) <= alpha / (Nt - i + 1)``; stop at
  the first failure. Uniformly more powerful than Bonferroni and valid
  under *arbitrary* dependence, so it is a free upgrade for the paper's
  "BC" arm.
* :func:`hochberg` — Hochberg's step-up procedure (Hochberg 1988).
  Find the *largest* ``i`` with ``p_(i) <= alpha / (Nt - i + 1)`` and
  accept everything up to it. Rejects a superset of Holm's hypotheses
  but requires non-negative dependence (the same MTP2-style condition
  BH needs), which rule p-values on overlapping patterns plausibly
  satisfy.
* :func:`sidak` — the Šidák single-step correction,
  ``1 - (1 - alpha)^(1/Nt)``. Exact under independence, marginally
  less conservative than Bonferroni, and the correction Abdi's
  encyclopedia entry (the paper's reference [1]) pairs with Bonferroni.

All three keep Bonferroni's semantics otherwise: ``n_tests`` is the
ruleset's hypothesis count ``Nt``, and the reported ``threshold`` is the
raw-p cut-off the decision is equivalent to.
"""

from __future__ import annotations

import math

from ..mining.rules import RuleSet
from .base import (
    FWER,
    CorrectionResult,
    select_by_threshold,
    validate_alpha,
)

__all__ = ["holm", "hochberg", "sidak"]


def holm(ruleset: RuleSet, alpha: float = 0.05) -> CorrectionResult:
    """Holm's step-down procedure: FWER <= alpha under any dependence.

    Accepts the ``k`` smallest p-values where ``k`` is the largest
    prefix satisfying ``p_(i) <= alpha / (Nt - i + 1)`` for every
    ``i <= k``. With ``k = 0`` nothing is significant. The first step
    uses ``alpha / Nt``, so Holm always rejects at least what
    Bonferroni rejects.
    """
    validate_alpha(alpha)
    n_tests = ruleset.n_tests
    ordered = sorted(ruleset.p_values())
    threshold = 0.0
    for i, p in enumerate(ordered, start=1):
        # Cross-multiplied ``p > alpha / (n - i + 1)``; see bh_step_up.
        if p * (n_tests - i + 1) > alpha:
            break
        threshold = p
    significant = select_by_threshold(ruleset.rules, threshold)
    return CorrectionResult(
        method="Holm", control=FWER, alpha=alpha, threshold=threshold,
        significant=significant, n_tests=n_tests,
    )


def hochberg(ruleset: RuleSet, alpha: float = 0.05) -> CorrectionResult:
    """Hochberg's step-up procedure: FWER <= alpha under non-negative
    dependence.

    Scans p-values from the largest down and accepts everything at or
    below the first ``p_(i)`` satisfying ``p_(i) <= alpha /
    (Nt - i + 1)``. The acceptance set always contains Holm's.
    """
    validate_alpha(alpha)
    n_tests = ruleset.n_tests
    ordered = sorted(ruleset.p_values())
    threshold = 0.0
    for i in range(len(ordered), 0, -1):
        # Cross-multiplied ``p <= alpha / (n - i + 1)``; see bh_step_up.
        if ordered[i - 1] * (n_tests - i + 1) <= alpha:
            threshold = ordered[i - 1]
            break
    significant = select_by_threshold(ruleset.rules, threshold)
    return CorrectionResult(
        method="Hochberg", control=FWER, alpha=alpha, threshold=threshold,
        significant=significant, n_tests=n_tests,
    )


def sidak(ruleset: RuleSet, alpha: float = 0.05) -> CorrectionResult:
    """Šidák single-step correction: ``p <= 1 - (1 - alpha)^(1/Nt)``.

    Exact FWER control when the tests are independent; slightly more
    powerful than Bonferroni (``1 - (1-a)^(1/n) >= a/n``) but can be
    anti-conservative under negative dependence, which is why the
    paper's experiments stick to Bonferroni.
    """
    validate_alpha(alpha)
    n_tests = ruleset.n_tests
    threshold = sidak_threshold(alpha, n_tests)
    significant = select_by_threshold(ruleset.rules, threshold)
    return CorrectionResult(
        method="Sidak", control=FWER, alpha=alpha, threshold=threshold,
        significant=significant, n_tests=n_tests,
    )


def sidak_threshold(alpha: float, n_tests: int) -> float:
    """The per-test Šidák level ``1 - (1 - alpha)^(1/n)`` (0 if n=0).

    Computed as ``-expm1(log1p(-alpha) / n)`` so tiny levels at large
    ``n`` do not underflow to 0 prematurely.
    """
    validate_alpha(alpha)
    if n_tests <= 0:
        return 0.0
    if n_tests == 1:
        # expm1/log1p round-trip can lose the last ulp; the exact value is alpha.
        return alpha
    return -math.expm1(math.log1p(-alpha) / n_tests)


from .registry import Correction, register_correction  # noqa: E402

register_correction(Correction(
    name="holm", abbreviation="Holm", family=FWER,
    apply_fn=lambda ruleset, alpha, ctx: holm(ruleset, alpha),
    direct=True,
    description="Holm step-down FWER; Bonferroni's free upgrade"))

register_correction(Correction(
    name="hochberg", abbreviation="Hochberg", family=FWER,
    apply_fn=lambda ruleset, alpha, ctx: hochberg(ruleset, alpha),
    direct=True,
    description="Hochberg step-up FWER under non-negative dependence"))

register_correction(Correction(
    name="sidak", abbreviation="Sidak", family=FWER,
    apply_fn=lambda ruleset, alpha, ctx: sidak(ruleset, alpha),
    direct=True,
    description="Sidak single-step: p <= 1 - (1-alpha)^(1/Nt)"))
