"""The direct adjustment approach (Section 4.1) and the no-correction
baseline.

* :func:`no_correction` — raw ``p <= alpha``; the paper's "No
  correction" arm, included to show how many spurious rules survive
  without any adjustment.
* :func:`bonferroni` — controls FWER at ``alpha`` by accepting only
  ``p <= alpha / Nt`` where ``Nt`` is the number of rules tested
  (``m * N_FP`` for ``m > 2`` classes, ``N_FP`` for two classes —
  :class:`~repro.mining.rules.RuleSet` already counts hypotheses that
  way).
* :func:`benjamini_hochberg` — controls FDR at ``alpha`` with the
  step-up procedure: sort p-values ascending, find the largest ``k``
  with ``p_k <= k * alpha / Nt``, accept the first ``k``.
"""

from __future__ import annotations

from .base import (
    FDR,
    FWER,
    NONE,
    CorrectionResult,
    bh_step_up,
    select_by_threshold,
    validate_alpha,
)
from .registry import Correction, register_correction
from ..mining.rules import RuleSet

__all__ = ["no_correction", "bonferroni", "benjamini_hochberg"]


def no_correction(ruleset: RuleSet, alpha: float = 0.05,
                  ) -> CorrectionResult:
    """Declare every rule with raw ``p <= alpha`` significant."""
    validate_alpha(alpha)
    significant = select_by_threshold(ruleset.rules, alpha)
    return CorrectionResult(
        method="No correction", control=NONE, alpha=alpha, threshold=alpha,
        significant=significant, n_tests=ruleset.n_tests,
    )


def bonferroni(ruleset: RuleSet, alpha: float = 0.05) -> CorrectionResult:
    """Bonferroni correction: FWER <= alpha via ``p <= alpha / Nt``."""
    validate_alpha(alpha)
    n_tests = ruleset.n_tests
    threshold = alpha / n_tests if n_tests else 0.0
    significant = select_by_threshold(ruleset.rules, threshold)
    return CorrectionResult(
        method="BC", control=FWER, alpha=alpha, threshold=threshold,
        significant=significant, n_tests=n_tests,
    )


def benjamini_hochberg(ruleset: RuleSet, alpha: float = 0.05,
                       ) -> CorrectionResult:
    """Benjamini–Hochberg step-up: FDR <= alpha."""
    validate_alpha(alpha)
    threshold = bh_step_up(ruleset.p_values(), alpha)
    significant = select_by_threshold(ruleset.rules, threshold)
    return CorrectionResult(
        method="BH", control=FDR, alpha=alpha, threshold=threshold,
        significant=significant, n_tests=ruleset.n_tests,
    )


register_correction(Correction(
    name="none", abbreviation="No correction", family=NONE,
    apply_fn=lambda ruleset, alpha, ctx: no_correction(ruleset, alpha),
    aliases=("raw", "uncorrected"), direct=True,
    description="raw p <= alpha; the paper's no-adjustment arm"))

register_correction(Correction(
    name="bonferroni", abbreviation="BC", family=FWER,
    apply_fn=lambda ruleset, alpha, ctx: bonferroni(ruleset, alpha),
    aliases=("bonf",), direct=True,
    description="single-step Bonferroni: p <= alpha / Nt"))

register_correction(Correction(
    name="bh", abbreviation="BH", family=FDR,
    apply_fn=lambda ruleset, alpha, ctx: benjamini_hochberg(ruleset,
                                                            alpha),
    aliases=("benjamini-hochberg",), direct=True,
    description="Benjamini-Hochberg step-up FDR control"))
