"""Benjamini–Yekutieli correction: FDR under arbitrary dependence.

The plain BH procedure (Section 4.1 of the paper) guarantees FDR
control under independence or positive regression dependence. Class
association rules are *heavily* dependent (sub/super-patterns share
records), which the paper works around empirically via permutation.
Benjamini & Yekutieli (2001) showed that shrinking every BH bound by
the harmonic factor ``c(m) = sum_{i=1..m} 1/i`` restores the guarantee
under *any* dependence — at a real power cost that this module makes
measurable (it slots into the same panels as BH).

This is an extension beyond the paper's method set, provided because a
user worried about rule dependence has exactly two principled options:
pay for permutations, or pay the ``log m`` factor here.
"""

from __future__ import annotations

import math

from ..mining.rules import RuleSet
from .base import FDR, CorrectionResult, select_by_threshold, validate_alpha

__all__ = ["benjamini_yekutieli", "harmonic_number"]


def harmonic_number(m: int) -> float:
    """``H_m = sum_{i=1..m} 1/i`` (exact below 1e6, asymptotic above)."""
    if m <= 0:
        return 0.0
    if m < 1_000_000:
        return sum(1.0 / i for i in range(1, m + 1))
    gamma = 0.57721566490153286
    return math.log(m) + gamma + 1.0 / (2 * m)


def benjamini_yekutieli(ruleset: RuleSet, alpha: float = 0.05,
                        ) -> CorrectionResult:
    """BY step-up: FDR <= alpha under arbitrary dependence.

    Identical to BH with the working level ``alpha / c(Nt)``.
    """
    validate_alpha(alpha)
    n = ruleset.n_tests
    if n == 0:
        return CorrectionResult(
            method="BY", control=FDR, alpha=alpha, threshold=0.0,
            significant=[], n_tests=0,
            details={"harmonic_factor": 0.0})
    c_m = harmonic_number(n)
    ordered = sorted(ruleset.p_values())
    threshold = 0.0
    for i, p in enumerate(ordered, start=1):
        if p <= i * alpha / (n * c_m):
            threshold = p
    significant = select_by_threshold(ruleset.rules, threshold)
    return CorrectionResult(
        method="BY", control=FDR, alpha=alpha, threshold=threshold,
        significant=significant, n_tests=n,
        details={"harmonic_factor": c_m},
    )


from .registry import Correction, register_correction  # noqa: E402

register_correction(Correction(
    name="by", abbreviation="BY", family=FDR,
    apply_fn=lambda ruleset, alpha, ctx: benjamini_yekutieli(ruleset,
                                                             alpha),
    aliases=("benjamini-yekutieli",), direct=True,
    description="BY step-up: FDR under arbitrary dependence"))
