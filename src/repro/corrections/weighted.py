"""Weighted multiple-testing procedures (Genovese, Roeder & Wasserman).

The paper's corrections treat every hypothesis identically, yet rules
differ enormously in how *detectable* they are: a coverage-20 rule can
never reach the p-values a coverage-400 rule reaches (Figure 1). The
weighted-procedure literature (Genovese et al., Biometrika 2006)
shows that any non-negative weights ``w_i`` with mean 1 preserve the
error guarantee when each rule is tested against ``w_i * t`` instead
of ``t``:

* **weighted Bonferroni** — reject when ``p_i <= w_i * alpha / Nt``;
  FWER <= alpha by the union bound since the per-test levels sum to
  ``alpha``.
* **weighted BH** — run BH on the reweighted p-values ``p_i / w_i``;
  FDR <= alpha under the same independence/PRDS conditions as plain
  BH.

Crucially, weights must not peek at the class labels. In this
library's setting there is a natural *ancillary* choice: a rule's
**coverage** is invariant under the label-permutation null (Section
4.2.1 — coverage never changes across permutations), so any function
of coverage is a legitimate weight. :func:`testability_weights` uses
the inverse of each rule's best attainable p-value exponent, shifting
budget from hopeless low-coverage rules toward rules that could
actually spend it — a soft, error-controlled cousin of LAMP's hard
testability cut.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..errors import CorrectionError
from ..mining.rules import RuleSet
from ..stats.fisher import min_attainable_p_value
from .base import FDR, FWER, CorrectionResult, validate_alpha

__all__ = ["weighted_bonferroni", "weighted_bh", "testability_weights"]


def _validate_weights(weights: Sequence[float], n: int) -> List[float]:
    if len(weights) != n:
        raise CorrectionError(
            f"{len(weights)} weights for {n} rules")
    if any(w < 0 for w in weights):
        raise CorrectionError("weights must be non-negative")
    total = sum(weights)
    if total <= 0:
        raise CorrectionError("weights must not all be zero")
    # Normalise to mean 1, the Genovese et al. convention.
    return [w * n / total for w in weights]


def testability_weights(ruleset: RuleSet) -> List[float]:
    """Coverage-derived weights: more budget where it can be spent.

    Weight ``i`` is ``-log10`` of the rule's best attainable p-value
    (floored at a small positive value), normalised to mean 1 by the
    weighted procedures. Rules whose coverage cannot produce small
    p-values receive near-zero weight; high-coverage rules receive
    proportionally more of the error budget. Depends only on coverage
    and the class margin — both fixed under the permutation null — so
    the weighting is ancillary and the error guarantees survive.
    """
    dataset = ruleset.dataset
    n = dataset.n_records
    floors = {}
    weights = []
    for rule in ruleset.rules:
        key = (rule.class_index, rule.coverage)
        floor = floors.get(key)
        if floor is None:
            n_c = dataset.class_support(rule.class_index)
            floor = min_attainable_p_value(n, n_c, rule.coverage)
            floors[key] = floor
        weights.append(max(-math.log10(max(floor, 1e-300)), 0.0))
    return weights


def weighted_bonferroni(ruleset: RuleSet, alpha: float = 0.05,
                        weights: Optional[Sequence[float]] = None,
                        ) -> CorrectionResult:
    """FWER <= alpha with per-rule levels ``w_i * alpha / Nt``.

    ``weights`` default to :func:`testability_weights`. With all
    weights equal this is exactly Bonferroni. The reported
    ``threshold`` is the largest *accepted* raw p-value (the decision
    is per-rule, so no single raw-p cut-off exists; Section 5.2's
    false-positive analysis uses per-rule levels via ``details``).
    """
    validate_alpha(alpha)
    n_tests = ruleset.n_tests
    default_weights = weights is None
    if weights is None:
        weights = testability_weights(ruleset)
    normalised = _validate_weights(weights, n_tests)
    significant = []
    threshold = 0.0
    for rule, w in zip(ruleset.rules, normalised):
        if n_tests and rule.p_value <= w * alpha / n_tests:
            significant.append(rule)
            threshold = max(threshold, rule.p_value)
    return CorrectionResult(
        method="wBC", control=FWER, alpha=alpha, threshold=threshold,
        significant=significant, n_tests=n_tests,
        details={"weights": "testability" if default_weights
                 else "caller", "max_weight": max(normalised, default=0)},
    )


def weighted_bh(ruleset: RuleSet, alpha: float = 0.05,
                weights: Optional[Sequence[float]] = None,
                ) -> CorrectionResult:
    """FDR <= alpha via BH on the reweighted p-values ``p_i / w_i``.

    Rules with zero weight are never rejected (their reweighted
    p-value is infinite).
    """
    validate_alpha(alpha)
    n_tests = ruleset.n_tests
    default_weights = weights is None
    if weights is None:
        weights = testability_weights(ruleset)
    normalised = _validate_weights(weights, n_tests)
    reweighted = [
        (rule.p_value / w) if w > 0 else math.inf
        for rule, w in zip(ruleset.rules, normalised)
    ]
    ordered = sorted(reweighted)
    cut = 0.0
    for i, q in enumerate(ordered, start=1):
        if q <= i * alpha / n_tests:
            cut = q
    significant = []
    threshold = 0.0
    for rule, q in zip(ruleset.rules, reweighted):
        if cut > 0.0 and q <= cut:
            significant.append(rule)
            threshold = max(threshold, rule.p_value)
    return CorrectionResult(
        method="wBH", control=FDR, alpha=alpha, threshold=threshold,
        significant=significant, n_tests=n_tests,
        details={"weights": "testability" if default_weights
                 else "caller", "reweighted_cut": cut},
    )


from .registry import Correction, register_correction  # noqa: E402

register_correction(Correction(
    name="weighted-bonferroni", abbreviation="wBC", family=FWER,
    apply_fn=lambda ruleset, alpha, ctx: weighted_bonferroni(ruleset,
                                                             alpha),
    description="coverage-weighted Bonferroni (Genovese et al.)"))

register_correction(Correction(
    name="weighted-bh", abbreviation="wBH", family=FDR,
    apply_fn=lambda ruleset, alpha, ctx: weighted_bh(ruleset, alpha),
    description="coverage-weighted Benjamini-Hochberg"))
