"""The pluggable correction registry.

Every multiple-testing correction the library ships is described by one
:class:`Correction` spec — canonical name, Table 3 abbreviation,
aliases, error-control family, capability flags, and an ``apply``
callable — and registered here at import time by its home module.
Downstream code (the miner, the pipeline, the experiment runner, the
CLI) enumerates and resolves corrections exclusively through this
registry, so adding a method is a single :func:`register_correction`
call, not a three-file surgery:

>>> from repro.corrections.registry import (
...     Correction, register_correction)
>>> def twice_alpha(ruleset, alpha, ctx):        # doctest: +SKIP
...     from repro.corrections.direct import no_correction
...     return no_correction(ruleset, min(1e-9 + 2 * alpha, 0.999))
>>> register_correction(Correction(                  # doctest: +SKIP
...     name="twice", abbreviation="2A", family="none",
...     apply_fn=twice_alpha))

Name resolution accepts the canonical identifier (``"bh"``), the
Table 3 abbreviation (``"BH"``), any registered alias, and
case-insensitive variants of all three. Abbreviation-only *variants*
(``"HD_BC"`` vs ``"RH_BC"``) resolve to their parent correction with
context overrides (here: the holdout split) bound in.

:class:`PipelineContext` is the shared state threaded through
``apply``: the dataset and mining parameters plus the seeded
permutation/holdout machinery, cached so that several corrections
applied to one mining run share a single permutation pass and a single
holdout split — exactly the reuse the Section 5 experiment loop needs.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..errors import CorrectionError
from ..mining.diffsets import DEFAULT_POLICY

__all__ = [
    "Correction",
    "PipelineContext",
    "ResolvedCorrection",
    "available_corrections",
    "correction_names",
    "get_correction",
    "register_correction",
    "resolve_correction",
    "unregister_correction",
]


@dataclass
class PipelineContext:
    """Shared state for one mining run, threaded through corrections.

    Carries the dataset, the mining parameters, and the seeded
    randomised machinery (permutation engine, holdout runs). The
    ``shared`` cache lets several corrections applied to the same run
    reuse one permutation pass and one holdout split — pass the same
    context to every ``apply`` call, as :class:`~repro.core.pipeline.
    Pipeline` and :class:`~repro.evaluation.runner.ExperimentRunner`
    do.

    ``permutation_seed`` / ``holdout_seed`` default to ``seed`` when
    unset; the experiment runner sets them to derived per-replicate
    seeds.

    ``algorithm`` names the registered miner
    (:mod:`repro.mining.registry`) the run enumerates hypotheses
    with; corrections that re-mine — the holdout split — honor it, so
    a non-default miner composes with the whole correction catalogue.
    ``miner_options`` are extra keyword options for that miner.
    """

    dataset: object = None
    min_sup: int = 1
    alpha: float = 0.05
    min_conf: float = 0.0
    max_length: Optional[int] = None
    algorithm: str = "closed"
    miner_options: Dict[str, object] = field(default_factory=dict)
    scorer: str = "fisher"
    seed: Optional[int] = None
    n_permutations: int = 1000
    # Storage/kernel policy of the permutation pass's pattern forest
    # (repro.mining.diffsets.POLICY_CHOICES; the default is the packed
    # uint64 bitmap kernel, "auto" resolves per dataset shape). Every
    # policy is bit-identical in results.
    policy: str = DEFAULT_POLICY
    permutation_seed: Optional[int] = None
    holdout_split: str = "random"
    holdout_boundary: Optional[int] = None
    holdout_seed: Optional[int] = None
    redundancy_delta: Optional[float] = None
    n_jobs: int = 1
    backend: str = "serial"
    shared: Dict[str, object] = field(default_factory=dict)

    def override(self, **changes: object) -> "PipelineContext":
        """A copy with ``changes`` applied, sharing the same caches."""
        clone = replace(self, **changes)  # type: ignore[arg-type]
        clone.shared = self.shared
        return clone

    def permutation_engine(self, ruleset):
        """The shared :class:`PermutationEngine` for ``ruleset``.

        Built lazily on first use and cached; re-built when asked
        about a different ruleset or under different permutation
        parameters (count / seed).
        """
        from .permutation import PermutationEngine

        seed = (self.permutation_seed
                if self.permutation_seed is not None else self.seed)
        # n_jobs/backend stay out of the cache key on purpose: they
        # change the schedule, never the result, so an engine built
        # under one executor configuration is reusable under another.
        # The forest policy is in the key even though it never changes
        # results either — it decides which storage the pass keeps
        # alive, which is exactly what a policy override asks about.
        params = (self.n_permutations, seed, self.policy)
        engine = self.shared.get("permutation-engine")
        if (not isinstance(engine, PermutationEngine)
                or engine.ruleset is not ruleset
                or self.shared.get("permutation-engine-params") != params):
            engine = PermutationEngine(
                ruleset, n_permutations=self.n_permutations, seed=seed,
                policy=self.policy,
                n_jobs=self.n_jobs, backend=self.backend)
            self.shared["permutation-engine"] = engine
            self.shared["permutation-engine-params"] = params
        return engine

    def executor(self, intra_run: bool = False):
        """The :class:`~repro.parallel.Executor` for this context.

        ``intra_run=True`` asks for an executor suitable for fanning
        out *within* one run, where tasks share this context's mutable
        caches and closures are not picklable: the ``processes``
        backend is downgraded to ``threads`` there (documented in
        ``docs/parallel.md``).
        """
        from ..parallel import get_executor

        backend = self.backend
        if intra_run and backend == "processes":
            backend = "threads"
        return get_executor(backend, self.n_jobs)

    def holdout_run(self, split: Optional[str] = None,
                    alpha: Optional[float] = None):
        """The shared :class:`HoldoutRun` for ``split`` (default: the
        context's ``holdout_split``).

        The candidate pool is screened at ``alpha`` when the run is
        built, so the cache is keyed by alpha too — two applies at
        different levels must not share one candidate set.
        """
        from .holdout import HoldoutRun

        split = split or self.holdout_split
        level = self.alpha if alpha is None else alpha
        key = f"holdout:{split}:{level:g}"
        run = self.shared.get(key)
        if not isinstance(run, HoldoutRun):
            seed = (self.holdout_seed
                    if self.holdout_seed is not None else self.seed)
            run = HoldoutRun(
                self.dataset, self.min_sup, alpha=level, split=split,
                boundary=(self.holdout_boundary
                          if split == "structured" else None),
                seed=seed, min_conf=self.min_conf,
                max_length=self.max_length, scorer=self.scorer,
                algorithm=self.algorithm,
                miner_options=self.miner_options)
            self.shared[key] = run
        return run


#: Signature of a correction's apply callable.
ApplyFn = Callable[[object, float, PipelineContext], object]


@dataclass(frozen=True)
class Correction:
    """One registered multiple-testing correction.

    Attributes
    ----------
    name:
        Canonical identifier (``"bh"``), the key the public API uses.
    abbreviation:
        The Table 3 abbreviation (``"BH"``) used in reports and by the
        experiment runner.
    family:
        Error measure controlled: ``"fwer"``, ``"fdr"`` or ``"none"``.
    apply_fn:
        ``apply_fn(ruleset, alpha, ctx) -> CorrectionResult``. Holdout
        corrections ignore ``ruleset`` (they mine their own halves from
        ``ctx.dataset``).
    aliases:
        Additional resolvable spellings (all names resolve
        case-insensitively on top of these).
    needs_permutations:
        Uses the shared permutation pass (``ctx.permutation_engine``).
    needs_holdout:
        Splits the dataset itself (``ctx.holdout_run``); the pipeline
        skips whole-dataset mining when only such corrections run.
    supports_redundancy:
        Compatible with the Section 7 representative-pattern reduction.
    direct:
        A pure p-value adjustment applicable to any duck-typed scored
        rule collection (used e.g. to filter CPAR's induced rules).
    variants:
        Extra resolvable names bound to context overrides — e.g.
        ``{"HD_BC": {"holdout_split": "structured"}}``.
    description:
        One-line summary for listings.
    """

    name: str
    abbreviation: str
    family: str
    apply_fn: ApplyFn
    aliases: Tuple[str, ...] = ()
    needs_permutations: bool = False
    needs_holdout: bool = False
    supports_redundancy: bool = True
    direct: bool = False
    variants: Mapping[str, Mapping[str, object]] = \
        field(default_factory=dict)
    description: str = ""

    def apply(self, ruleset, alpha: float,
              ctx: Optional[PipelineContext] = None):
        """Apply this correction; a bare context is built when omitted."""
        if ctx is None:
            ctx = PipelineContext()
        return self.apply_fn(ruleset, alpha, ctx)

    def all_names(self) -> Tuple[str, ...]:
        """Every spelling this correction answers to."""
        return ((self.name, self.abbreviation) + tuple(self.aliases)
                + tuple(self.variants))


@dataclass(frozen=True)
class ResolvedCorrection:
    """A resolver hit: the spec plus any variant context overrides."""

    spec: Correction
    requested: str
    overrides: Mapping[str, object] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """Canonical name of the resolved correction."""
        return self.spec.name

    def context(self, ctx: PipelineContext) -> PipelineContext:
        """``ctx`` with this variant's overrides applied."""
        if not self.overrides:
            return ctx
        return ctx.override(**dict(self.overrides))

    def apply(self, ruleset, alpha: float,
              ctx: Optional[PipelineContext] = None):
        """Apply the correction under the variant's overrides."""
        if ctx is None:
            ctx = PipelineContext()
        return self.spec.apply(ruleset, alpha, self.context(ctx))


_REGISTRY: Dict[str, Correction] = {}
# Lookup table: lower-cased spelling -> (canonical name, overrides).
_INDEX: Dict[str, Tuple[str, Mapping[str, object]]] = {}


def register_correction(spec: Correction,
                        overwrite: bool = False) -> Correction:
    """Add a correction to the registry and return it.

    Every spelling in ``spec.all_names()`` becomes resolvable
    (case-insensitively). Registering a name or alias that collides
    with an existing registration raises :class:`CorrectionError`
    unless ``overwrite=True``, in which case the previous owner of the
    canonical name is replaced wholesale.
    """
    if not spec.name:
        raise CorrectionError("correction name must be non-empty")
    if spec.family not in ("fwer", "fdr", "none"):
        raise CorrectionError(
            f"unknown correction family {spec.family!r}; "
            "expected 'fwer', 'fdr' or 'none'")
    # Collision check BEFORE any mutation, so a rejected overwrite
    # leaves the previous registration fully intact. Spellings owned
    # by the spec being replaced don't count as collisions. The
    # replaced spec is found case-insensitively, like all resolution.
    replaced = None
    if overwrite:
        hit = _INDEX.get(spec.name.lower())
        # Replace only the correction whose *canonical* name matches;
        # a hit through another spec's alias is a collision, not a
        # replacement target (deleting that spec wholesale because of
        # an alias clash would be far more than the caller asked for).
        if hit is not None and hit[0].lower() == spec.name.lower():
            replaced = _REGISTRY[hit[0]]
    taken = [spelling for spelling in spec.all_names()
             if spelling.lower() in _INDEX
             and _INDEX[spelling.lower()][0] != getattr(replaced, "name",
                                                        None)]
    if taken:
        raise CorrectionError(
            f"cannot register correction {spec.name!r}: "
            f"name(s) {sorted(set(taken))} already registered")
    if replaced is not None:
        unregister_correction(replaced.name)
    _REGISTRY[spec.name] = spec
    for spelling in (spec.name, spec.abbreviation) + tuple(spec.aliases):
        _INDEX[spelling.lower()] = (spec.name, {})
    for spelling, overrides in spec.variants.items():
        _INDEX[spelling.lower()] = (spec.name, dict(overrides))
    return spec


def unregister_correction(name: str) -> None:
    """Remove a correction (by any of its spellings) from the registry."""
    resolved = _INDEX.get(name.lower())
    if resolved is None:
        raise CorrectionError(f"unknown correction {name!r}")
    spec = _REGISTRY.pop(resolved[0])
    for spelling in spec.all_names():
        _INDEX.pop(spelling.lower(), None)


def resolve_correction(name: str) -> ResolvedCorrection:
    """Resolve any accepted spelling to its registered correction.

    Raises :class:`CorrectionError` listing the valid names (canonical
    names, abbreviations and aliases) and a did-you-mean suggestion for
    near-miss spellings.
    """
    if not isinstance(name, str):
        raise CorrectionError(
            f"correction name must be a string, got {type(name).__name__}")
    hit = _INDEX.get(name.lower())
    if hit is None:
        raise CorrectionError(_unknown_message(name))
    canonical, overrides = hit
    return ResolvedCorrection(spec=_REGISTRY[canonical], requested=name,
                              overrides=overrides)


def get_correction(name: str) -> Correction:
    """The :class:`Correction` spec behind any accepted spelling."""
    return resolve_correction(name).spec


def available_corrections() -> List[Correction]:
    """All registered corrections, in registration order."""
    return list(_REGISTRY.values())


def correction_names() -> List[str]:
    """Canonical names of all registered corrections, sorted."""
    return sorted(_REGISTRY)


def _accepted_spellings() -> List[str]:
    seen = []
    for spec in _REGISTRY.values():
        for spelling in spec.all_names():
            # Compound display abbreviations ("HD_BC / RH_BC") are
            # resolvable but not worth advertising next to their parts.
            if "/" not in spelling and spelling not in seen:
                seen.append(spelling)
    return seen


def _unknown_message(name: str) -> str:
    spellings = _accepted_spellings()
    message = (f"unknown correction {name!r}; valid names: "
               f"{sorted(spellings, key=str.lower)}")
    close = difflib.get_close_matches(
        name.lower(), [s.lower() for s in spellings], n=1, cutoff=0.6)
    if close:
        # Report the original casing of the matched spelling.
        original = next(s for s in spellings if s.lower() == close[0])
        message += f" — did you mean {original!r}?"
    return message


class CorrectionsView(Mapping):
    """Live read-only mapping: canonical name -> Table 3 abbreviation.

    Backwards-compatible stand-in for the old hard-coded
    ``repro.core.CORRECTIONS`` dict; reflects the registry, so
    out-of-tree registrations appear automatically.
    """

    def __getitem__(self, key: str) -> str:
        spec = _REGISTRY.get(key)
        if spec is None:
            raise KeyError(key)
        return spec.abbreviation

    def __iter__(self) -> Iterator[str]:
        return iter(_REGISTRY)

    def __len__(self) -> int:
        return len(_REGISTRY)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CorrectionsView({dict(self)!r})"
