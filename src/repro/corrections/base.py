"""Shared types for multiple-testing-correction procedures (Section 4).

Every correction procedure in this package produces a
:class:`CorrectionResult`: the set of rules declared statistically
significant, the raw-p-value cut-off that decision corresponds to, and
method-specific diagnostics. The cut-off is what the Section 5.2
false-positive analysis needs (``p(R|¬Rt) <= alpha`` uses the *method's*
threshold, not the nominal 0.05).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import CorrectionError
from ..jsonio import json_safe
from ..mining.rules import ClassRule

__all__ = ["CorrectionResult", "RESULT_SCHEMA_VERSION", "validate_alpha",
           "FWER", "FDR", "NONE"]

FWER = "fwer"
FDR = "fdr"
NONE = "none"

#: Version stamp of the :meth:`CorrectionResult.to_json` document
#: shape; persisted artifacts (the service's result cache) refuse to
#: load under a different version rather than misread fields.
RESULT_SCHEMA_VERSION = 1


def validate_alpha(alpha: float) -> None:
    """Reject nonsensical significance levels early."""
    if not 0.0 < alpha < 1.0:
        raise CorrectionError(f"alpha must be in (0, 1), got {alpha}")


@dataclass
class CorrectionResult:
    """Outcome of applying one correction procedure.

    Attributes
    ----------
    method:
        Table 3 abbreviation (``"BC"``, ``"BH"``, ``"Perm_FWER"``, ...).
    control:
        Which error measure the method controls: ``"fwer"``, ``"fdr"``
        or ``"none"``.
    alpha:
        Nominal error level requested by the caller.
    threshold:
        The raw p-value cut-off the decision is equivalent to: a rule
        was declared significant iff its (original-data) p-value is at
        most this. For step-up procedures this is the largest accepted
        p-value (0 when nothing is accepted).
    significant:
        Rules declared statistically significant. For holdout methods
        these carry the rule's statistics on the *evaluation* half.
    n_tests:
        The multiple-testing denominator ``Nt`` the method used.
    details:
        Method-specific diagnostics (e.g. permutation min-p quantiles,
        holdout candidate counts) for reports and benches.
    """

    method: str
    control: str
    alpha: float
    threshold: float
    significant: List[ClassRule]
    n_tests: int
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def n_significant(self) -> int:
        """Number of rules declared significant."""
        return len(self.significant)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.method}: {self.n_significant} significant rules "
                f"(alpha={self.alpha:g}, control={self.control}, "
                f"threshold={self.threshold:.3g}, n_tests={self.n_tests})")

    def to_json(self) -> Dict[str, object]:
        """Plain-JSON document of this result, versioned.

        The significant rules serialize losslessly (floats render as
        shortest round-trip ``repr``), so a
        :func:`~repro.evaluation.export.rules_to_csv` of the
        round-tripped rules is byte-identical to one of the originals.
        ``details`` entries that are not JSON-serializable are dropped
        (they are diagnostics, not part of the decision).
        """
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "method": self.method,
            "control": self.control,
            "alpha": float(self.alpha),
            "threshold": float(self.threshold),
            "n_tests": self.n_tests,
            "significant": [rule.to_json() for rule in self.significant],
            "details": json_safe(self.details),
        }

    @classmethod
    def from_json(cls, payload) -> "CorrectionResult":
        """Rebuild a result from :meth:`to_json` output.

        Raises :class:`CorrectionError` on a missing or unsupported
        ``schema_version``.
        """
        version = payload.get("schema_version")
        if version != RESULT_SCHEMA_VERSION:
            raise CorrectionError(
                f"cannot read CorrectionResult JSON with schema_version "
                f"{version!r}; this library writes/reads version "
                f"{RESULT_SCHEMA_VERSION}")
        return cls(
            method=str(payload["method"]),
            control=str(payload["control"]),
            alpha=float(payload["alpha"]),
            threshold=float(payload["threshold"]),
            significant=[ClassRule.from_json(rule)
                         for rule in payload["significant"]],
            n_tests=int(payload["n_tests"]),
            details=dict(payload.get("details") or {}),
        )


def select_by_threshold(rules: List[ClassRule],
                        threshold: float) -> List[ClassRule]:
    """Rules with ``p <= threshold``, preserving input order."""
    return [rule for rule in rules if rule.p_value <= threshold]


def bh_step_up(p_values: List[float], alpha: float,
               n_tests: Optional[int] = None) -> float:
    """Benjamini–Hochberg step-up: return the raw-p acceptance cut-off.

    Sorts the p-values ascending, finds the largest index ``k`` (1-based)
    with ``p_k <= k * alpha / n``, and returns ``p_k`` (or 0.0 when no
    index qualifies). ``n_tests`` defaults to ``len(p_values)`` but may
    be larger when some hypotheses were tested yet not scored.
    """
    validate_alpha(alpha)
    n = n_tests if n_tests is not None else len(p_values)
    if n <= 0 or not p_values:
        return 0.0
    if len(p_values) > n:
        raise CorrectionError(
            f"{len(p_values)} p-values but n_tests={n}")
    ordered = sorted(p_values)
    threshold = 0.0
    for i, p in enumerate(ordered, start=1):
        # Cross-multiplied form of ``p <= i * alpha / n``: one rounded
        # product per side, so boundary ties (p exactly at its critical
        # value) are decided exactly instead of losing an ulp to the
        # division.
        if p * n <= i * alpha:
            threshold = p
    return threshold
