"""Multiple testing correction approaches (Section 4 of the paper).

Every procedure is registered with the pluggable registry
(:mod:`repro.corrections.registry`) at import time; enumerate them with
:func:`available_corrections`, resolve any accepted spelling (canonical
name, Table 3 abbreviation, alias — case-insensitive) with
:func:`resolve_correction`, and plug in new procedures with
:func:`register_correction`.
"""

from .base import FDR, FWER, NONE, CorrectionResult, bh_step_up
from .registry import (
    Correction,
    PipelineContext,
    ResolvedCorrection,
    available_corrections,
    correction_names,
    get_correction,
    register_correction,
    resolve_correction,
    unregister_correction,
)
from .by import benjamini_yekutieli, harmonic_number
from .direct import benjamini_hochberg, bonferroni, no_correction
from .holdout import HoldoutRun, holdout
from .lamp import lamp_bonferroni
from .layered import layered_critical_values
from .permutation import (
    PermutationEngine,
    permutation_fdr,
    permutation_fwer,
    permutation_fwer_stepdown,
)
from .stepwise import hochberg, holm, sidak, sidak_threshold
from .storey import estimate_pi0, q_values, storey_fdr, two_stage_bh
from .weighted import testability_weights, weighted_bh, weighted_bonferroni

__all__ = [
    "FDR",
    "FWER",
    "NONE",
    "CorrectionResult",
    "Correction",
    "PipelineContext",
    "ResolvedCorrection",
    "available_corrections",
    "correction_names",
    "get_correction",
    "register_correction",
    "resolve_correction",
    "unregister_correction",
    "bh_step_up",
    "benjamini_yekutieli",
    "harmonic_number",
    "benjamini_hochberg",
    "bonferroni",
    "no_correction",
    "HoldoutRun",
    "holdout",
    "lamp_bonferroni",
    "layered_critical_values",
    "PermutationEngine",
    "permutation_fdr",
    "permutation_fwer",
    "permutation_fwer_stepdown",
    "hochberg",
    "holm",
    "sidak",
    "sidak_threshold",
    "estimate_pi0",
    "q_values",
    "storey_fdr",
    "two_stage_bh",
    "testability_weights",
    "weighted_bh",
    "weighted_bonferroni",
]
