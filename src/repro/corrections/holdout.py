"""The holdout approach (Section 4.3; Webb, Machine Learning 2007).

The dataset is split into an *exploratory* and an *evaluation* half.
Rules are mined on the exploratory half (with ``min_sup`` halved, as in
all the paper's experiments) and every rule with raw ``p <= alpha``
becomes a *candidate*. Candidates are then re-scored on the evaluation
half, and significance is decided there with Bonferroni (FWER) or
Benjamini–Hochberg (FDR) over only the candidate count — typically
orders of magnitude smaller than the full hypothesis count.

Two splitting conventions from Section 5.1:

* ``split="structured"`` — the first ``boundary`` records form the
  exploratory half. Paired synthetic datasets
  (:func:`repro.data.synthetic.generate_paired`) embed every rule in
  both halves, so this split eliminates partitioning luck ("HD" in the
  figures).
* ``split="random"`` — a seeded random partition ("RH").
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..bitmat import BitMatrix
from ..data.dataset import Dataset
from ..errors import CorrectionError
from ..mining.registry import resolve_miner
from ..mining.rules import ClassRule, RuleSet, generate_rules
from ..stats.buffer_cache import BufferCache
from .base import (
    FDR,
    FWER,
    CorrectionResult,
    bh_step_up,
    validate_alpha,
)

__all__ = ["holdout", "HoldoutRun"]


class HoldoutRun:
    """A reusable split + exploratory mining, shared by BC and BH.

    Mining the exploratory half and re-scoring candidates dominates the
    cost; both error-control variants reuse this object.
    """

    def __init__(self, dataset: Dataset, min_sup: int,
                 alpha: float = 0.05,
                 split: str = "structured",
                 boundary: Optional[int] = None,
                 seed: Optional[int] = None,
                 rng: Optional[random.Random] = None,
                 min_conf: float = 0.0,
                 max_length: Optional[int] = None,
                 scorer: str = "fisher",
                 algorithm: str = "closed",
                 miner_options: Optional[Dict[str, object]] = None,
                 ) -> None:
        validate_alpha(alpha)
        if split not in ("structured", "random"):
            raise CorrectionError(f"unknown split {split!r}")
        if min_sup < 2:
            raise CorrectionError(
                "holdout needs min_sup >= 2 (it is halved on the "
                "exploratory dataset)")
        if seed is not None and rng is not None:
            raise CorrectionError("give seed or rng, not both")
        self.dataset = dataset
        self.min_sup = min_sup
        self.alpha = alpha
        self.split = split
        split_rng = rng or random.Random(seed)
        self.exploratory, self.evaluation = dataset.split_half(
            rng=split_rng if split == "random" else None,
            boundary=boundary)
        # The paper halves min_sup on the exploratory dataset. The
        # hypothesis set comes from the registered miner, so a
        # non-default ``algorithm`` carries into the split too.
        exploratory_min_sup = max(1, min_sup // 2)
        if exploratory_min_sup > self.exploratory.n_records:
            raise CorrectionError(
                f"min_sup={min_sup} leaves an exploratory min_sup of "
                f"{exploratory_min_sup}, exceeding the exploratory "
                f"half's {self.exploratory.n_records} records")
        self.algorithm = algorithm
        patterns = resolve_miner(algorithm).mine(
            self.exploratory, exploratory_min_sup,
            max_length=max_length, **dict(miner_options or {}))
        self.exploratory_rules: RuleSet = generate_rules(
            self.exploratory, patterns, exploratory_min_sup,
            min_conf=min_conf, scorer=scorer)
        self.candidates: List[ClassRule] = [
            rule for rule in self.exploratory_rules.rules
            if rule.p_value <= alpha
        ]
        self.evaluated: List[Tuple[ClassRule, ClassRule]] = \
            self._score_candidates()

    def _score_candidates(self) -> List[Tuple[ClassRule, ClassRule]]:
        """Re-score every candidate on the evaluation half at once.

        A candidate's pattern need not be frequent (or closed) there;
        its tidset is re-derived from the evaluation half's item
        tidsets. All candidate tidsets are packed into one
        :class:`~repro.bitmat.BitMatrix`, so coverages are one
        hardware-popcount pass and per-class supports one packed
        kernel call per class actually appearing on a candidate RHS —
        no per-candidate bigint walks.
        """
        candidates = self.candidates
        if not candidates:
            return []
        evaluation = self.evaluation
        matrix = BitMatrix.from_tidsets(
            [evaluation.pattern_tidset(rule.items)
             for rule in candidates],
            evaluation.n_records)
        coverages = matrix.row_popcounts()
        labels = np.asarray(evaluation.class_labels, dtype=np.int64)
        classes = np.array([rule.class_index for rule in candidates],
                           dtype=np.int64)
        if evaluation.n_classes == 2:
            # One kernel pass: class-1 supports derive from coverage.
            supp0 = matrix.class_supports(labels == 0)
            supports = np.where(classes == 0, supp0,
                                coverages - supp0)
        else:
            supports = np.empty(len(candidates), dtype=np.int64)
            for c in sorted(set(int(c) for c in classes)):
                mask = classes == c
                supports[mask] = matrix.class_supports(labels == c)[mask]
        evaluated: List[Tuple[ClassRule, ClassRule]] = []
        for i, rule in enumerate(candidates):
            coverage = int(coverages[i])
            support = int(supports[i])
            confidence = support / coverage if coverage else 0.0
            if coverage == 0:
                # Unobservable on this half: never significant.
                p_value = 1.0
            else:
                cache = self._cache_for(rule.class_index)
                p_value = cache.p_value(support, coverage)
            evaluated.append((rule, ClassRule(
                pattern_id=rule.pattern_id,
                items=rule.items,
                class_index=rule.class_index,
                coverage=coverage,
                support=support,
                confidence=confidence,
                p_value=p_value,
            )))
        return evaluated

    def _cache_for(self, class_index: int) -> BufferCache:
        if not hasattr(self, "_caches"):
            self._caches: Dict[int, BufferCache] = {}
        cache = self._caches.get(class_index)
        if cache is None:
            cache = BufferCache(
                self.evaluation.n_records,
                self.evaluation.class_support(class_index),
                min_sup=1)
            self._caches[class_index] = cache
        return cache

    # ------------------------------------------------------------------
    # error control on the evaluation half
    # ------------------------------------------------------------------

    def bonferroni(self, alpha: Optional[float] = None) -> CorrectionResult:
        """FWER control: candidates with ``p_eval <= alpha / #cand``."""
        level = self.alpha if alpha is None else alpha
        validate_alpha(level)
        n_candidates = len(self.candidates)
        threshold = level / n_candidates if n_candidates else 0.0
        significant = [scored for _, scored in self.evaluated
                       if scored.p_value <= threshold]
        prefix = "HD" if self.split == "structured" else "RH"
        return CorrectionResult(
            method=f"{prefix}_BC", control=FWER, alpha=level,
            threshold=threshold, significant=significant,
            n_tests=n_candidates,
            details=self._details(),
        )

    def benjamini_hochberg(self, alpha: Optional[float] = None,
                           ) -> CorrectionResult:
        """FDR control: BH over the candidates' evaluation p-values."""
        level = self.alpha if alpha is None else alpha
        validate_alpha(level)
        eval_p = [scored.p_value for _, scored in self.evaluated]
        threshold = bh_step_up(eval_p, level) if eval_p else 0.0
        significant = [scored for _, scored in self.evaluated
                       if scored.p_value <= threshold]
        prefix = "HD" if self.split == "structured" else "RH"
        return CorrectionResult(
            method=f"{prefix}_BH", control=FDR, alpha=level,
            threshold=threshold, significant=significant,
            n_tests=len(self.candidates),
            details=self._details(),
        )

    def _details(self) -> Dict[str, object]:
        return {
            "split": self.split,
            "n_exploratory_rules": self.exploratory_rules.n_tests,
            "n_candidates": len(self.candidates),
            "exploratory_min_sup": max(1, self.min_sup // 2),
            "exploratory_records": self.exploratory.n_records,
            "evaluation_records": self.evaluation.n_records,
        }


def holdout(dataset: Dataset, min_sup: int, alpha: float = 0.05,
            control: str = FWER, split: str = "structured",
            boundary: Optional[int] = None, seed: Optional[int] = None,
            rng: Optional[random.Random] = None,
            min_conf: float = 0.0,
            max_length: Optional[int] = None,
            scorer: str = "fisher") -> CorrectionResult:
    """One-shot holdout evaluation; see :class:`HoldoutRun`.

    ``control`` picks Bonferroni (``"fwer"``) or BH (``"fdr"``) on the
    evaluation half.
    """
    run = HoldoutRun(dataset, min_sup, alpha=alpha, split=split,
                     boundary=boundary, seed=seed, rng=rng,
                     min_conf=min_conf, max_length=max_length,
                     scorer=scorer)
    if control == FWER:
        return run.bonferroni()
    if control == FDR:
        return run.benjamini_hochberg()
    raise CorrectionError(f"unknown control {control!r}")


from .registry import Correction, register_correction  # noqa: E402

register_correction(Correction(
    name="holdout-fwer", abbreviation="HD_BC / RH_BC", family=FWER,
    apply_fn=lambda ruleset, alpha, ctx:
        ctx.holdout_run(alpha=alpha).bonferroni(alpha),
    aliases=("holdout-bonferroni",),
    needs_holdout=True, supports_redundancy=False,
    variants={"HD_BC": {"holdout_split": "structured"},
              "RH_BC": {"holdout_split": "random"}},
    description="holdout: mine half, Bonferroni over candidates on "
                "the other half"))

register_correction(Correction(
    name="holdout-fdr", abbreviation="HD_BH / RH_BH", family=FDR,
    apply_fn=lambda ruleset, alpha, ctx:
        ctx.holdout_run(alpha=alpha).benjamini_hochberg(alpha),
    aliases=("holdout-bh",),
    needs_holdout=True, supports_redundancy=False,
    variants={"HD_BH": {"holdout_split": "structured"},
              "RH_BH": {"holdout_split": "random"}},
    description="holdout: mine half, BH over candidates on the "
                "other half"))
