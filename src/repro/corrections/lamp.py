"""LAMP: testability-aware Bonferroni correction.

The paper's Section 7 observes that reducing the number of tested
hypotheses directly buys power. LAMP (Terada et al., PNAS 2013 —
published after this paper, in the research line it seeded) formalizes
one safe reduction for Fisher-scored patterns: a rule whose coverage is
so small that even a *perfect* class split cannot reach the corrected
threshold is **untestable** — it can never be significant, so it need
not count toward the Bonferroni denominator.

The procedure finds the largest coverage threshold ``sigma`` such that

    m(sigma) * f(sigma) <= alpha

where ``m(sigma)`` is the number of rules with coverage >= sigma and
``f(sigma)`` the minimum attainable p-value at coverage ``sigma``
(monotone non-increasing in sigma). Rules with coverage >= sigma are
then tested against ``alpha / m(sigma)``. FWER <= alpha still holds:
untestable rules cannot be false positives at the corrected level by
construction, and the union bound covers the rest.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..mining.rules import RuleSet
from ..stats.fisher import min_attainable_p_value
from .base import FWER, CorrectionResult, validate_alpha

__all__ = ["lamp_bonferroni"]


def lamp_bonferroni(ruleset: RuleSet, alpha: float = 0.05,
                    ) -> CorrectionResult:
    """Bonferroni over only the *testable* rules (LAMP).

    Always at least as powerful as plain Bonferroni: the testable count
    ``m(sigma)`` never exceeds ``Nt``, so the per-rule threshold never
    shrinks. On low-``min_sup`` mining runs, where most rules have tiny
    coverage, the gain is substantial.
    """
    validate_alpha(alpha)
    dataset = ruleset.dataset
    n = dataset.n_records
    rules = ruleset.rules
    if not rules:
        return CorrectionResult(
            method="LAMP", control=FWER, alpha=alpha, threshold=0.0,
            significant=[], n_tests=0,
            details={"sigma": None, "n_testable": 0})

    min_attainable: Dict[Tuple[int, int], float] = {}

    def attainable(rule) -> float:
        key = (rule.class_index, rule.coverage)
        value = min_attainable.get(key)
        if value is None:
            n_c = dataset.class_support(rule.class_index)
            value = min_attainable_p_value(n, n_c, rule.coverage)
            min_attainable[key] = value
        return value

    # Keep the k rules with the smallest attainable floors; all of them
    # must be individually testable against alpha/k, i.e. the k-th
    # smallest floor must satisfy f_(k) <= alpha/k. Pick the largest
    # such k: FWER <= k * (alpha/k) = alpha by the union bound over the
    # tested set, and every excluded rule is simply never reported.
    floors = sorted(attainable(rule) for rule in rules)
    n_testable = 0
    for k, floor in enumerate(floors, start=1):
        if floor <= alpha / k:
            n_testable = k
    if n_testable <= 0:
        threshold = 0.0
    else:
        threshold = alpha / n_testable
    significant = [rule for rule in rules
                   if attainable(rule) <= threshold
                   and rule.p_value <= threshold]
    sigma = None
    testable_coverages = [rule.coverage for rule in rules
                          if attainable(rule) <= threshold]
    if testable_coverages:
        sigma = min(testable_coverages)
    return CorrectionResult(
        method="LAMP", control=FWER, alpha=alpha, threshold=threshold,
        significant=significant, n_tests=n_testable,
        details={"sigma": sigma, "n_testable": n_testable,
                 "n_total": len(rules)},
    )


from .registry import Correction, register_correction  # noqa: E402

register_correction(Correction(
    name="lamp", abbreviation="LAMP", family=FWER,
    apply_fn=lambda ruleset, alpha, ctx: lamp_bonferroni(ruleset, alpha),
    description="Bonferroni over only the testable rules (LAMP)"))
