"""The permutation-based approach (Section 4.2).

Class labels are randomly shuffled ``N`` times; because shuffling
destroys any pattern-class association, the re-computed p-values sample
the null distribution *while preserving the correlation structure among
patterns* — which is exactly what the direct adjustment approach
ignores and why permutation testing is more powerful.

Engineering, following the paper:

* **Mine once** (4.2.1): patterns and their record-id storage come from
  the original mining run; a permutation only changes class labels, so
  each permutation costs one class-support pass over the pattern
  forest plus p-value lookups.
* **Diffsets** (4.2.2): one of the forest's storage policies; see
  :class:`~repro.mining.diffsets.PatternForest`. The default policy is
  ``"packed"`` — the :class:`~repro.bitmat.BitMatrix` uint64 kernel —
  which goes beyond the paper's storage optimisation and vectorizes
  the *counting* itself: a shard's labellings are drawn up front into
  a ``(B, n_records)`` label matrix, class supports for all B
  labellings resolve through one batched hardware-popcount kernel per
  class, and all ``B × n_rules`` p-values come back from the
  vectorized lookup with a single 2-D fancy index. Min-p, pooled rank
  counts and step-down suffix minima are then axis-wise numpy
  reductions. Batches are processed in memory-bounded blocks, and
  every quantity is an exact integer count or an identical table
  lookup, so results are bit-identical to per-permutation scoring
  under any policy, backend, and worker count.
* **P-value buffering** (4.2.3): every rule's p-value on every
  permutation is a table lookup in the
  :class:`~repro.stats.pvalue_buffer.PValueBuffer` of its coverage.
  Three lookup modes are exposed so the Figure 4 ablation can measure
  each tier: ``"vectorized"`` (all buffers concatenated into one numpy
  array — this library's fastest path), ``"cache"`` (the paper's
  static+dynamic buffer cache, one Python lookup per rule), and
  ``"direct"`` (no buffering: every p-value recomputed from scratch;
  the "no optimization" arm).

Error control (Section 4.2):

* **FWER**: collect the minimum p-value of each permutation, sort them
  ascending, and use the ``floor(alpha * N)``-th as the cut-off
  (Westfall–Young min-p).
* **FDR**: re-calibrate each rule's p-value to the empirical fraction
  of the ``N * Nt`` permutation p-values at or below it, then run
  Benjamini–Hochberg on the calibrated values.

Beyond the paper, the engine also implements Westfall–Young
**step-down** minP (:meth:`PermutationEngine.fwer_stepdown`): instead of
comparing every rule against the global min-p distribution, rank ``i``'s
observed p-value is compared against the distribution of the minimum
over only the rules ranked ``i`` and worse. The adjusted p-values are
monotonised and thresholded at ``alpha``. Step-down rejects a superset
of the single-step rejections at the same FWER guarantee — the natural
"more power for free" upgrade to Section 4.2.

Parallel execution (``n_jobs`` / ``backend``): the ``N`` permutations
are embarrassingly parallel — each is an independent class-support
pass over the shared pattern forest — so :meth:`PermutationEngine.run`
shards the permutation index range across a
:class:`~repro.parallel.Executor`. Determinism is anchored to
permutation *indices*, not to shards: permutation ``t`` always draws
its labelling from the ``t``-th child of one
``numpy.random.SeedSequence``, and the shard merge (concatenating
per-index min-p entries, summing integer rank counts) is
order-independent, so results are bit-identical for any worker count.
See ``docs/parallel.md``.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..bitmat import DEFAULT_BLOCK_BYTES
from ..errors import CorrectionError
from ..mining.diffsets import (
    DEFAULT_POLICY,
    POLICY_CHOICES,
    PatternForest,
)
from ..mining.rules import RuleSet
from ..parallel import (
    get_executor,
    root_sequence,
    sequence_from_legacy_rng,
    shard_slices,
    slice_sequences,
    spawn_sequences,
)
from ..stats.fisher import fisher_two_tailed
from .base import FDR, FWER, CorrectionResult, bh_step_up, validate_alpha

__all__ = ["PermutationEngine", "permutation_fwer",
           "permutation_fwer_stepdown", "permutation_fdr"]

_PVALUE_MODES = ("vectorized", "cache", "direct")


class PermutationEngine:
    """Shared machinery for permutation-based FWER and FDR control.

    The expensive part — scoring every rule on every permutation — runs
    once (lazily) and is shared by :meth:`fwer` and :meth:`fdr`.

    Parameters
    ----------
    ruleset:
        The original-data mining result (patterns, rules, caches).
    n_permutations:
        The paper's ``N``; its experiments use 1000.
    seed / rng:
        Determinism controls (give at most one). ``seed`` feeds a
        ``numpy.random.SeedSequence`` whose spawned children drive the
        label shuffles, one independent child per permutation. ``rng``
        is a compatibility shim for pre-migration callers holding a
        ``random.Random``: its next 128 bits become the sequence
        entropy (deterministic for a seeded rng, but a *different*
        stream than the legacy in-place shuffles produced).
    n_jobs:
        Worker count for the permutation pass (``-1`` = all cores).
        Results are bit-identical for every value.
    backend:
        ``"serial"``, ``"threads"`` or ``"processes"`` — see
        :mod:`repro.parallel`. The ``threads`` backend fans out only
        under the default ``"vectorized"`` p-value mode; the
        ``"cache"``/``"direct"`` modes score through shared mutable
        caches and fall back to serial there (use ``processes``).
    policy:
        Record-id storage policy for the pattern forest; one of
        ``"packed"`` (default — the uint64 bitmap kernel),
        ``"bitset"``, ``"diffsets"``, ``"full"``, or ``"auto"``
        (resolved per dataset shape, see
        :func:`repro.mining.diffsets.resolve_auto_policy`). All
        policies return bit-identical results; see
        ``docs/performance.md``.
    pvalue_mode:
        ``"vectorized"``, ``"cache"`` or ``"direct"`` — see module
        docstring.
    batch_bytes:
        Memory budget for one scoring block's intermediates under the
        default ``"vectorized"`` mode: the shard's labellings are
        scored in blocks of ``B`` permutations sized so the
        ``B × n_rules`` p-value matrices and the packed kernel's
        broadcast stay within this budget. The budget is *per
        worker* — concurrent shards under ``threads`` each size
        their own blocks, so peak memory scales with ``n_jobs``.
        Block sizing never changes results, only peak memory.
    word_block:
        Record-range sharding of the packed scoring kernel, in uint64
        words (64 records per word). ``None`` (default) resolves
        automatically: whole-matrix scoring unless a single
        permutation's kernel broadcast alone would blow
        ``batch_bytes``, in which case the matrix is scored in
        word-column shards sized to the budget and the exact int64
        partial supports are summed at the shard boundary — the
        out-of-core path for forests wider than RAM. ``0`` forces
        whole-matrix scoring; any positive value is used as given.
        Sharding never changes results (exact integer merge), only
        peak memory.
    """

    def __init__(self, ruleset: RuleSet, n_permutations: int = 1000,
                 seed: Optional[int] = None,
                 rng: Optional[random.Random] = None,
                 policy: str = DEFAULT_POLICY,
                 pvalue_mode: str = "vectorized",
                 n_jobs: int = 1,
                 backend: str = "serial",
                 batch_bytes: int = DEFAULT_BLOCK_BYTES,
                 word_block: Optional[int] = None) -> None:
        if n_permutations < 1:
            raise CorrectionError("n_permutations must be >= 1")
        if policy not in POLICY_CHOICES:
            raise CorrectionError(f"unknown forest policy {policy!r}")
        if pvalue_mode not in _PVALUE_MODES:
            raise CorrectionError(f"unknown pvalue_mode {pvalue_mode!r}")
        if seed is not None and rng is not None:
            raise CorrectionError("give seed or rng, not both")
        if batch_bytes < 1:
            raise CorrectionError("batch_bytes must be >= 1")
        self.ruleset = ruleset
        self.n_permutations = n_permutations
        self.policy = policy
        self.pvalue_mode = pvalue_mode
        self.batch_bytes = batch_bytes
        self._executor = get_executor(backend, n_jobs)
        self._seed_seq = (sequence_from_legacy_rng(rng)
                          if rng is not None else root_sequence(seed))
        self._ran = False
        self._min_p: Optional[np.ndarray] = None
        self._pooled_counts: Optional[np.ndarray] = None
        self._stepdown_counts: Optional[np.ndarray] = None
        self._order: Optional[np.ndarray] = None
        dataset = ruleset.dataset
        self.n = dataset.n_records
        self.n_tests = ruleset.n_tests
        self._labels = np.array(dataset.class_labels, dtype=np.int64)
        self._forest = PatternForest(ruleset.patterns, self.n, policy)
        rules = ruleset.rules
        self._node_ids = np.array([r.pattern_id for r in rules],
                                  dtype=np.int64)
        self._classes = np.array([r.class_index for r in rules],
                                 dtype=np.int64)
        self._coverages = np.array([r.coverage for r in rules],
                                   dtype=np.int64)
        self._observed_p = np.array([r.p_value for r in rules])
        self._class_supports = [dataset.class_support(c)
                                for c in range(dataset.n_classes)]
        if word_block is not None and word_block < 0:
            raise CorrectionError("word_block must be >= 0")
        self.word_block = (self._auto_word_block()
                           if word_block is None else word_block)
        if pvalue_mode == "vectorized":
            self._lookup = _VectorizedLookup(self)
        else:
            self._lookup = None

    # ------------------------------------------------------------------
    # the shared permutation pass
    # ------------------------------------------------------------------

    @property
    def n_jobs(self) -> int:
        """Worker count of the configured executor."""
        return self._executor.n_jobs

    @property
    def backend(self) -> str:
        """Backend name of the configured executor."""
        return self._executor.backend

    def run(self) -> None:
        """Score all rules on all permutations (idempotent).

        Sharded across the configured executor. Permutation ``t``
        always shuffles with the ``t``-th spawned seed and the merge
        is order-independent (per-index concatenation + integer
        sums), so the result is identical at any worker count.
        """
        if self._ran:
            return
        n_perm = self.n_permutations
        order = np.argsort(self._observed_p, kind="stable")
        observed_sorted = self._observed_p[order]
        children = spawn_sequences(self._seed_seq, n_perm)
        slices = shard_slices(n_perm, self._executor.n_jobs)
        # The "cache" and "direct" modes score through shared mutable
        # caches (BufferCache's dynamic tier, log-factorial growth)
        # that are not thread-safe; under threads they run serially
        # rather than risk silent p-value corruption. Processes are
        # fine (each worker owns a copy), and the default vectorized
        # mode reads frozen arrays only.
        thread_unsafe = (self._executor.backend == "threads"
                         and self.pvalue_mode != "vectorized")
        if (len(slices) <= 1 or self._executor.backend == "serial"
                or thread_unsafe):
            parts = [self._score_shard(children, order, observed_sorted)]
        else:
            # The engine (and with it the dataset/forest) is the shared
            # payload: hoisted to the executor context, it is shipped
            # once per worker per wave — free under fork, and never
            # re-sent on a retry — while each shard unit carries only
            # its slice of seed sequences. An arena-backed dataset
            # additionally pickles as its file path, so process workers
            # re-map the same on-disk pages instead of receiving words.
            shards = list(slice_sequences(children, slices))
            parts = self._executor.map_shards(
                _score_shard_worker, shards,
                context=(self, order, observed_sorted))
        self._min_p = np.sort(np.concatenate([p[0] for p in parts]))
        self._pooled_counts = sum(p[1] for p in parts)
        self._stepdown_counts = sum(p[2] for p in parts)
        self._order = order
        self._observed_sorted = observed_sorted
        self._ran = True

    def _score_shard(self, seeds, order: np.ndarray,
                     observed_sorted: np.ndarray,
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Score the permutations whose seed sequences are given.

        Each permutation draws a fresh labelling from its own spawned
        generator (``Generator.permutation`` of the *original* labels,
        never a cumulative in-place shuffle), so its stream is
        independent of every other permutation's placement. The
        default ``"vectorized"`` p-value mode scores the shard in
        memory-bounded batches; the ``"cache"``/``"direct"`` modes
        score one permutation at a time through their Python-level
        caches. Both paths produce bit-identical statistics.
        """
        if self.pvalue_mode == "vectorized":
            return self._score_shard_batched(seeds, order,
                                             observed_sorted)
        return self._score_shard_sequential(seeds, order,
                                            observed_sorted)

    def _score_shard_batched(self, seeds, order: np.ndarray,
                             observed_sorted: np.ndarray,
                             ) -> Tuple[np.ndarray, np.ndarray,
                                        np.ndarray]:
        """Batched scoring: all of a block's labellings in one shot.

        The block's labellings form a ``(B, n_records)`` matrix; one
        batched class-support kernel call per needed class yields the
        ``(B, n_rules)`` support matrix, one 2-D fancy index resolves
        all p-values, and the three statistics reduce axis-wise:

        * per-permutation minimum — a row min;
        * pooled rank counts — ``searchsorted`` of the observed
          p-values in the block's *flattened* sorted p-values (the sum
          of per-permutation counts equals the count over the pooled
          block, both exact integers);
        * step-down counts — reversed ``minimum.accumulate`` suffix
          minima per row, compared row-wise and summed down the batch.
        """
        n_shard = len(seeds)
        n_rules = len(observed_sorted)
        min_p = np.empty(n_shard)
        pooled = np.zeros(n_rules, dtype=np.int64)
        stepdown = np.zeros(n_rules, dtype=np.int64)
        block = self._batch_rows()
        for start in range(0, n_shard, block):
            batch = seeds[start:start + block]
            labels = np.empty((len(batch), self.n),
                              dtype=self._labels.dtype)
            for j, seq in enumerate(batch):
                generator = np.random.default_rng(seq)
                labels[j] = generator.permutation(self._labels)
            if n_rules == 0:
                min_p[start:start + len(batch)] = 1.0
                continue
            supports = self._rule_supports_batch(labels)
            assert self._lookup is not None
            perm_p = self._lookup.p_values_batch(supports)
            min_p[start:start + len(batch)] = perm_p.min(axis=1)
            pooled += np.searchsorted(np.sort(perm_p, axis=None),
                                      observed_sorted, side="right")
            # Suffix minima in observed-rank order: entry (b, i) is
            # the minimum permutation-b p-value over rules ranked
            # i..m-1, the step-down minP statistic for rank i.
            ranked = perm_p[:, order]
            suffix_min = np.minimum.accumulate(
                ranked[:, ::-1], axis=1)[:, ::-1]
            stepdown += (suffix_min <= observed_sorted[None, :]).sum(
                axis=0, dtype=np.int64)
        return min_p, pooled, stepdown

    def _score_shard_sequential(self, seeds, order: np.ndarray,
                                observed_sorted: np.ndarray,
                                ) -> Tuple[np.ndarray, np.ndarray,
                                           np.ndarray]:
        """One-permutation-at-a-time scoring (cache/direct modes)."""
        min_p = np.empty(len(seeds))
        pooled = np.zeros(len(observed_sorted), dtype=np.int64)
        stepdown = np.zeros(len(observed_sorted), dtype=np.int64)
        for j, seq in enumerate(seeds):
            generator = np.random.default_rng(seq)
            labels = generator.permutation(self._labels)
            perm_p = self._score_permutation(labels)
            min_p[j] = perm_p.min() if len(perm_p) else 1.0
            pooled += np.searchsorted(np.sort(perm_p), observed_sorted,
                                      side="right")
            if len(perm_p):
                # Suffix minima in observed-rank order: entry i is the
                # minimum permutation p-value over rules ranked i..m-1,
                # the step-down minP statistic for rank i.
                suffix_min = np.minimum.accumulate(
                    perm_p[order][::-1])[::-1]
                stepdown += suffix_min <= observed_sorted
        return min_p, pooled, stepdown

    def _batch_rows(self) -> int:
        """Permutations per scoring block under ``batch_bytes``.

        One batch row (one permutation) costs one label row, one or
        more ``n_nodes`` class-support rows, several ``n_rules``-wide
        float intermediates (supports, p-values, the pooled sort, the
        ranked copy and its suffix minima), and — under the packed
        policy — the kernel's ``n_nodes × n_words`` broadcast cells at
        9 bytes each (uint64 AND + uint8 popcount).
        """
        n_rules = len(self._node_ids)
        n_nodes = self._forest.n_nodes
        # Binary datasets hold two class-support arrays (one computed,
        # one derived); multiclass runs hold one per class that
        # actually appears on a rule RHS, all alive at once.
        if self.ruleset.dataset.n_classes == 2:
            class_arrays = 2
        else:
            class_arrays = max(1, len(set(int(c)
                                          for c in self._classes)))
        per_row = 8 * self.n
        per_row += class_arrays * 8 * n_nodes
        per_row += 6 * 8 * n_rules
        matrix = self._forest.matrix
        if matrix is not None:
            # The packed kernel's own per-labelling intermediates —
            # bitmat owns that accounting. A word-sharded pass only
            # materializes one shard's broadcast at a time.
            if self.word_block and self.word_block < matrix.n_words:
                per_row += max(1, matrix.n_rows * self.word_block * 9)
            else:
                per_row += matrix.batch_row_bytes
        return max(1, self.batch_bytes // max(per_row, 1))

    def _auto_word_block(self) -> int:
        """Resolve ``word_block=None``: shard only when forced.

        Whole-matrix scoring (``0``) unless one permutation's packed
        broadcast (``n_nodes × n_words × 9`` bytes) alone exceeds
        ``batch_bytes`` — then no block size fits the budget and the
        kernel must shard by record range. The shard width is sized so
        a single shard's broadcast consumes at most half the budget,
        leaving the other half for the block's labellings and p-value
        intermediates.
        """
        matrix = self._forest.matrix
        if matrix is None or not matrix.n_rows or not matrix.n_words:
            return 0
        if matrix.batch_row_bytes <= self.batch_bytes:
            return 0
        return max(1, min(matrix.n_words - 1,
                          self.batch_bytes // (matrix.n_rows * 9 * 2)))

    def _score_permutation(self, labels: np.ndarray) -> np.ndarray:
        """P-values of every rule under one shuffled labelling."""
        supports = self._rule_supports(labels)
        if self.pvalue_mode == "vectorized":
            assert self._lookup is not None
            return self._lookup.p_values(supports)
        if self.pvalue_mode == "cache":
            caches = self.ruleset.caches
            classes = self._classes
            coverages = self._coverages
            return np.array([
                caches[int(classes[i])].p_value(int(supports[i]),
                                                int(coverages[i]))
                for i in range(len(supports))
            ])
        # "direct": no buffering at all — the Fig 4 baseline.
        n = self.n
        class_supports = self._class_supports
        return np.array([
            fisher_two_tailed(int(supports[i]), n,
                              class_supports[int(self._classes[i])],
                              int(self._coverages[i]))
            for i in range(len(supports))
        ])

    def _rule_supports(self, labels: np.ndarray) -> np.ndarray:
        """``supp(R)`` for every rule under the given labelling.

        Binary datasets need one forest pass (class-1 supports derive
        from coverage); multi-class datasets need one pass per class
        that actually appears on a rule RHS.
        """
        n_classes = self.ruleset.dataset.n_classes
        node_supports: Dict[int, np.ndarray] = {}
        if n_classes == 2:
            supp0 = self._forest.class_supports(labels == 0)
            node_supports[0] = supp0
            node_supports[1] = self._forest.supports - supp0
        else:
            needed = sorted(set(int(c) for c in self._classes))
            for c in needed:
                node_supports[c] = self._forest.class_supports(labels == c)
        out = np.empty(len(self._node_ids), dtype=np.int64)
        for c, per_node in node_supports.items():
            mask = self._classes == c
            out[mask] = per_node[self._node_ids[mask]]
        return out

    def _rule_supports_batch(self, labels: np.ndarray) -> np.ndarray:
        """``supp(R)`` of every rule under every given labelling.

        ``labels`` is a ``(B, n_records)`` matrix of shuffled class
        labels; the result is the ``(B, n_rules)`` integer support
        matrix. Binary datasets need one batched forest kernel call
        (class-1 supports derive from coverage); multi-class datasets
        stack the indicators of every class that appears on a rule RHS
        into one multi-class kernel dispatch
        (:meth:`~repro.mining.diffsets.PatternForest.
        class_supports_multi`).
        """
        n_classes = self.ruleset.dataset.n_classes
        node_supports: Dict[int, np.ndarray] = {}
        if n_classes == 2:
            supp0 = self._forest.class_supports_batch(
                labels == 0, word_block=self.word_block)
            node_supports[0] = supp0
            node_supports[1] = self._forest.supports[None, :] - supp0
        else:
            needed = sorted(set(int(c) for c in self._classes))
            stacked = np.stack([labels == c for c in needed])
            per_class = self._forest.class_supports_multi(
                stacked, word_block=self.word_block)
            for i, c in enumerate(needed):
                node_supports[c] = per_class[i]
        out = np.empty((labels.shape[0], len(self._node_ids)),
                       dtype=np.int64)
        for c, per_node in node_supports.items():
            mask = self._classes == c
            out[:, mask] = per_node[:, self._node_ids[mask]]
        return out

    # ------------------------------------------------------------------
    # error control
    # ------------------------------------------------------------------

    def min_p_distribution(self) -> np.ndarray:
        """Sorted minimum p-value per permutation (runs the pass)."""
        self.run()
        assert self._min_p is not None
        return self._min_p.copy()

    def empirical_p_values(self) -> List[float]:
        """Re-calibrated p-value of each rule, in rule order.

        ``p~(R) = |{perm p-values <= p(R)}| / (N * Nt)`` — the paper's
        Section 4.2 formula, pooled over all rules and permutations.
        """
        self.run()
        assert self._pooled_counts is not None
        denominator = self.n_permutations * max(self.n_tests, 1)
        # pooled counts are aligned with the sorted observed p-values;
        # map back to rule order via the observed value's rank.
        ranks = np.searchsorted(self._observed_sorted, self._observed_p,
                                side="right") - 1
        return [float(self._pooled_counts[r]) / denominator for r in ranks]

    def fwer(self, alpha: float = 0.05) -> CorrectionResult:
        """Westfall–Young style FWER control at level ``alpha``."""
        validate_alpha(alpha)
        self.run()
        assert self._min_p is not None
        index = math.floor(alpha * self.n_permutations)
        if index >= 1:
            threshold = float(self._min_p[index - 1])
        else:
            # Too few permutations to estimate the alpha quantile of the
            # min-p distribution; be maximally conservative.
            threshold = 0.0
        significant = [r for r in self.ruleset.rules
                       if r.p_value <= threshold]
        return CorrectionResult(
            method="Perm_FWER", control=FWER, alpha=alpha,
            threshold=threshold, significant=significant,
            n_tests=self.n_tests,
            details={
                "n_permutations": self.n_permutations,
                "min_p_quantiles": _quantiles(self._min_p),
                "policy": self.policy,
                "pvalue_mode": self.pvalue_mode,
            },
        )

    def stepdown_adjusted_p_values(self) -> List[float]:
        """Westfall–Young step-down adjusted p-value per rule (rule
        order).

        Rank ``i``'s raw adjusted value is the fraction of permutations
        whose minimum p-value *over rules ranked i and worse* is at
        most the observed ``p_(i)``; a running maximum down the ranks
        enforces monotonicity of the rejection set.
        """
        self.run()
        assert self._stepdown_counts is not None
        n_perm = self.n_permutations
        adjusted_sorted = np.maximum.accumulate(
            self._stepdown_counts / n_perm)
        out = np.empty(len(adjusted_sorted))
        out[self._order] = adjusted_sorted
        return [float(p) for p in out]

    def fwer_stepdown(self, alpha: float = 0.05) -> CorrectionResult:
        """Westfall–Young step-down minP FWER control at ``alpha``.

        Rejects the maximal prefix of the observed ranking whose
        monotonised adjusted p-values stay at or below ``alpha``.
        Always rejects at least what :meth:`fwer` rejects.
        """
        validate_alpha(alpha)
        self.run()
        assert self._stepdown_counts is not None
        adjusted_sorted = np.maximum.accumulate(
            self._stepdown_counts / self.n_permutations)
        k = 0
        while k < len(adjusted_sorted) and adjusted_sorted[k] <= alpha:
            k += 1
        threshold = float(self._observed_sorted[k - 1]) if k else 0.0
        rules = self.ruleset.rules
        significant = [rules[int(i)] for i in self._order[:k]]
        return CorrectionResult(
            method="Perm_FWER_SD", control=FWER, alpha=alpha,
            threshold=threshold, significant=significant,
            n_tests=self.n_tests,
            details={
                "n_permutations": self.n_permutations,
                "n_rejected": k,
                "policy": self.policy,
                "pvalue_mode": self.pvalue_mode,
            },
        )

    def fdr(self, alpha: float = 0.05) -> CorrectionResult:
        """Empirical-p re-calibration followed by BH at level ``alpha``."""
        validate_alpha(alpha)
        empirical = self.empirical_p_values()
        cut = bh_step_up(empirical, alpha)
        significant = []
        raw_threshold = 0.0
        for rule, p_emp in zip(self.ruleset.rules, empirical):
            if p_emp <= cut:
                significant.append(rule)
                raw_threshold = max(raw_threshold, rule.p_value)
        return CorrectionResult(
            method="Perm_FDR", control=FDR, alpha=alpha,
            threshold=raw_threshold, significant=significant,
            n_tests=self.n_tests,
            details={
                "n_permutations": self.n_permutations,
                "empirical_cutoff": cut,
                "policy": self.policy,
                "pvalue_mode": self.pvalue_mode,
            },
        )


class _VectorizedLookup:
    """All rule p-value buffers concatenated into one flat array.

    Rule ``i``'s p-value for support ``k`` is
    ``flat[offset[i] + k]`` where ``offset[i]`` already absorbs the
    buffer's lower bound, so a whole permutation resolves with one fancy
    index.
    """

    def __init__(self, engine: PermutationEngine) -> None:
        ruleset = engine.ruleset
        segments: List[np.ndarray] = []
        # (class, coverage) -> (segment start in the flat array, buffer
        # lower bound), so offset = start - low maps support k directly
        # to its flat position.
        placed: Dict[Tuple[int, int], Tuple[int, int]] = {}
        offsets = np.empty(len(engine._coverages), dtype=np.int64)
        position = 0
        for i in range(len(engine._coverages)):
            key = (int(engine._classes[i]), int(engine._coverages[i]))
            if key not in placed:
                buffer = ruleset.caches[key[0]].buffer_for(key[1])
                segments.append(np.array(buffer.p_values()))
                placed[key] = (position, buffer.low)
                position += len(segments[-1])
            start, low = placed[key]
            offsets[i] = start - low
        self._flat = np.concatenate(segments) if segments else np.empty(0)
        self._offsets = offsets

    def p_values(self, supports: np.ndarray) -> np.ndarray:
        """Look up every rule's p-value for the given supports."""
        return self._flat[self._offsets + supports]

    def p_values_batch(self, supports: np.ndarray) -> np.ndarray:
        """All ``B × n_rules`` p-values with a single 2-D fancy index.

        ``supports`` is the ``(B, n_rules)`` support matrix of a
        scoring block; entry ``(b, i)`` of the result is exactly what
        :meth:`p_values` returns for row ``b``.
        """
        return self._flat[self._offsets[None, :] + supports]


def _score_shard_worker(context, seeds):
    """Module-level shard entry point (picklable for ``processes``).

    ``context`` is the hoisted ``(engine, order, observed_sorted)``
    payload shared by every shard; ``seeds`` is the shard's own slice
    of per-permutation seed sequences.
    """
    engine, order, observed_sorted = context
    return engine._score_shard(seeds, order, observed_sorted)


def _quantiles(sorted_values: np.ndarray) -> Dict[str, float]:
    if len(sorted_values) == 0:
        return {}
    return {
        "min": float(sorted_values[0]),
        "q05": float(sorted_values[int(0.05 * (len(sorted_values) - 1))]),
        "median": float(sorted_values[len(sorted_values) // 2]),
        "max": float(sorted_values[-1]),
    }


def permutation_fwer(ruleset: RuleSet, alpha: float = 0.05,
                     n_permutations: int = 1000,
                     seed: Optional[int] = None,
                     **kwargs) -> CorrectionResult:
    """One-shot FWER control; see :class:`PermutationEngine`."""
    engine = PermutationEngine(ruleset, n_permutations=n_permutations,
                               seed=seed, **kwargs)
    return engine.fwer(alpha)


def permutation_fwer_stepdown(ruleset: RuleSet, alpha: float = 0.05,
                              n_permutations: int = 1000,
                              seed: Optional[int] = None,
                              **kwargs) -> CorrectionResult:
    """One-shot step-down minP control; see :class:`PermutationEngine`."""
    engine = PermutationEngine(ruleset, n_permutations=n_permutations,
                               seed=seed, **kwargs)
    return engine.fwer_stepdown(alpha)


def permutation_fdr(ruleset: RuleSet, alpha: float = 0.05,
                    n_permutations: int = 1000,
                    seed: Optional[int] = None,
                    **kwargs) -> CorrectionResult:
    """One-shot FDR control; see :class:`PermutationEngine`."""
    engine = PermutationEngine(ruleset, n_permutations=n_permutations,
                               seed=seed, **kwargs)
    return engine.fdr(alpha)


from .registry import Correction, register_correction  # noqa: E402

register_correction(Correction(
    name="permutation-fwer", abbreviation="Perm_FWER", family=FWER,
    apply_fn=lambda ruleset, alpha, ctx:
        ctx.permutation_engine(ruleset).fwer(alpha),
    aliases=("perm-fwer", "westfall-young"),
    needs_permutations=True,
    description="Westfall-Young min-p permutation FWER control"))

register_correction(Correction(
    name="permutation-fwer-stepdown", abbreviation="Perm_FWER_SD",
    family=FWER,
    apply_fn=lambda ruleset, alpha, ctx:
        ctx.permutation_engine(ruleset).fwer_stepdown(alpha),
    aliases=("perm-fwer-sd", "westfall-young-stepdown"),
    needs_permutations=True,
    description="Westfall-Young step-down min-p permutation FWER"))

register_correction(Correction(
    name="permutation-fdr", abbreviation="Perm_FDR", family=FDR,
    apply_fn=lambda ruleset, alpha, ctx:
        ctx.permutation_engine(ruleset).fdr(alpha),
    aliases=("perm-fdr",),
    needs_permutations=True,
    description="BH over permutation-calibrated empirical p-values"))
