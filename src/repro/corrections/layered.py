"""Layered critical values (Webb, Machine Learning 2008).

The paper's related-work section (Section 6) discusses Webb's follow-up
to the holdout approach: instead of dividing ``alpha`` by the single
total hypothesis count, divide it first across *layers* — rule lengths —
and then within each layer across the hypotheses of that length. Short
rules are far fewer than long ones, so they receive much less stringent
critical values, recovering power exactly where interpretable rules
live. FWER is still controlled at ``alpha`` because the per-layer
budgets sum to ``alpha`` (a union bound over the union bound).

Two budgeting schemes are provided:

* ``budget="uniform"`` — each of the ``L`` occupied layers receives
  ``alpha / L`` (Webb's original formulation, with the number of tested
  rules of that length as the within-layer divisor);
* ``budget="geometric"`` — layer ``l`` receives ``alpha * 2^-l``
  (normalized), acknowledging that the number of potential hypotheses
  grows roughly geometrically with length.

This is the extension feature flagged in DESIGN.md; the paper's own
experiments do not include it, so benches report it separately.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from ..errors import CorrectionError
from ..mining.rules import RuleSet
from .base import FWER, CorrectionResult, validate_alpha

__all__ = ["layered_critical_values"]


def layered_critical_values(ruleset: RuleSet, alpha: float = 0.05,
                            budget: str = "uniform") -> CorrectionResult:
    """FWER control with per-length critical values.

    A rule of length ``l`` is significant when its p-value is at most
    ``alpha_l / Nt_l`` where ``alpha_l`` is the layer's share of
    ``alpha`` and ``Nt_l`` the number of tested rules of length ``l``.
    """
    validate_alpha(alpha)
    if budget not in ("uniform", "geometric"):
        raise CorrectionError(f"unknown budget scheme {budget!r}")
    by_length: Dict[int, List[int]] = defaultdict(list)
    for index, rule in enumerate(ruleset.rules):
        by_length[rule.length].append(index)
    if not by_length:
        return CorrectionResult(
            method="Layered", control=FWER, alpha=alpha, threshold=0.0,
            significant=[], n_tests=0,
            details={"budget": budget, "critical_values": {}},
        )
    lengths = sorted(by_length)
    shares = _layer_shares(lengths, alpha, budget)
    critical: Dict[int, float] = {}
    significant = []
    max_accepted = 0.0
    for length in lengths:
        indices = by_length[length]
        critical[length] = shares[length] / len(indices)
        for index in indices:
            rule = ruleset.rules[index]
            if rule.p_value <= critical[length]:
                significant.append(rule)
                max_accepted = max(max_accepted, rule.p_value)
    return CorrectionResult(
        method="Layered", control=FWER, alpha=alpha,
        # No single raw-p threshold exists (it varies per layer); report
        # the largest accepted p-value, which is what the FP analysis
        # uses as its excusal level.
        threshold=max_accepted,
        significant=significant,
        n_tests=ruleset.n_tests,
        details={"budget": budget, "critical_values": dict(critical)},
    )


def _layer_shares(lengths: List[int], alpha: float,
                  budget: str) -> Dict[int, float]:
    if budget == "uniform":
        share = alpha / len(lengths)
        return {length: share for length in lengths}
    weights = {length: 2.0 ** -length for length in lengths}
    total = sum(weights.values())
    return {length: alpha * weight / total
            for length, weight in weights.items()}


from .registry import Correction, register_correction  # noqa: E402

register_correction(Correction(
    name="layered", abbreviation="Layered", family=FWER,
    apply_fn=lambda ruleset, alpha, ctx: layered_critical_values(ruleset,
                                                                 alpha),
    aliases=("webb-layered",),
    description="Webb's layered critical values: alpha split by "
                "rule length"))
