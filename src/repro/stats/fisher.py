"""Fisher's exact test for class association rules (Section 2.2).

The p-value of ``R : X => c`` is the total probability, under the
hypergeometric null, of all outcomes at most as probable as the
observed ``supp(R)``::

    p(R) = sum_{k in E} H(k; n, n_c, supp(X)),
    E = {k : H(k) <= H(supp(R))}

— i.e. the *two-tailed* test. One-tailed variants (over- and
under-representation) are provided as well because the holdout
literature (Webb 2007) sometimes uses them; the paper's experiments all
use the two-tailed form.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import StatsError
from .hypergeom import pmf_table, support_bounds
from .logfact import LogFactorialBuffer
from .pvalue_buffer import PValueBuffer

__all__ = [
    "fisher_two_tailed",
    "fisher_right_tailed",
    "fisher_left_tailed",
    "fisher_from_contingency",
    "fisher_two_tailed_midp",
    "rule_p_value",
    "log_odds_ratio",
    "min_attainable_p_value",
]


def _check_support(supp_r: int, n: int, n_c: int, supp_x: int) -> None:
    low, high = support_bounds(n, n_c, supp_x)
    if supp_r < low or supp_r > high:
        raise StatsError(
            f"supp(R)={supp_r} impossible for n={n}, n_c={n_c}, "
            f"supp(X)={supp_x} (reachable range [{low}, {high}])")


def fisher_two_tailed(supp_r: int, n: int, n_c: int, supp_x: int,
                      buffer: Optional[LogFactorialBuffer] = None) -> float:
    """Two-tailed Fisher exact p-value of a rule.

    Parameters mirror the paper: ``n`` records, ``n_c`` of class ``c``,
    coverage ``supp(X)`` and rule support ``supp(R)``.
    """
    _check_support(supp_r, n, n_c, supp_x)
    return PValueBuffer(n, n_c, supp_x, buffer).p_value(supp_r)


def fisher_right_tailed(supp_r: int, n: int, n_c: int, supp_x: int,
                        buffer: Optional[LogFactorialBuffer] = None,
                        ) -> float:
    """P(supp >= supp_r): over-representation (positive association)."""
    _check_support(supp_r, n, n_c, supp_x)
    low, _high = support_bounds(n, n_c, supp_x)
    table = pmf_table(n, n_c, supp_x, buffer)
    # Reversed cumulative sum: entry k accumulates from the far (upper)
    # tail inward, so small terms add first — the same summation order
    # (and therefore the exact same float result) as the scalar loop
    # this replaces.
    tails = np.cumsum(np.asarray(table, dtype=np.float64)[::-1])[::-1]
    return min(float(tails[supp_r - low]), 1.0)


def fisher_left_tailed(supp_r: int, n: int, n_c: int, supp_x: int,
                       buffer: Optional[LogFactorialBuffer] = None) -> float:
    """P(supp <= supp_r): under-representation (negative association)."""
    _check_support(supp_r, n, n_c, supp_x)
    low, _high = support_bounds(n, n_c, supp_x)
    table = pmf_table(n, n_c, supp_x, buffer)
    # Cumulative sum from the lower tail upward: small terms first,
    # identical order (and float result) to the scalar loop.
    tails = np.cumsum(np.asarray(table, dtype=np.float64))
    return min(float(tails[supp_r - low]), 1.0)


def fisher_from_contingency(a: int, b: int, c: int, d: int,
                            alternative: str = "two-sided") -> float:
    """Fisher exact test on a 2x2 table ``[[a, b], [c, d]]``.

    ``a`` counts records containing both X and c, ``b`` those with X but
    not c, ``c`` those with c but not X, ``d`` the rest. Provided so
    users with pre-tabulated contingency data can reuse the machinery.
    """
    for value, label in ((a, "a"), (b, "b"), (c, "c"), (d, "d")):
        if value < 0:
            raise StatsError(f"contingency cell {label} is negative")
    n = a + b + c + d
    n_c = a + c
    supp_x = a + b
    if n == 0:
        raise StatsError("empty contingency table")
    if alternative == "two-sided":
        return fisher_two_tailed(a, n, n_c, supp_x)
    if alternative == "greater":
        return fisher_right_tailed(a, n, n_c, supp_x)
    if alternative == "less":
        return fisher_left_tailed(a, n, n_c, supp_x)
    raise StatsError(f"unknown alternative {alternative!r}")


def rule_p_value(supp_r: int, n: int, n_c: int, supp_x: int,
                 buffer: Optional[LogFactorialBuffer] = None) -> float:
    """Alias of :func:`fisher_two_tailed` under the paper's notation.

    ``p(R) = p(supp(R); n, n_c, supp(X))`` — Section 2.2, Equation (1).
    """
    return fisher_two_tailed(supp_r, n, n_c, supp_x, buffer)


def fisher_two_tailed_midp(supp_r: int, n: int, n_c: int, supp_x: int,
                           buffer: Optional[LogFactorialBuffer] = None,
                           ) -> float:
    """Mid-p variant of the two-tailed test (Lancaster's correction).

    The exact test is conservative because the test statistic is
    discrete; the mid-p correction counts the observed outcome with
    weight one half: ``p_mid = p_two - 0.5 * H(supp_r)``. It is not
    guaranteed to control type-I error at exactly alpha, but its actual
    level is much closer to nominal — a standard option in the
    epidemiology literature and a useful sensitivity check here.
    """
    _check_support(supp_r, n, n_c, supp_x)
    low, _high = support_bounds(n, n_c, supp_x)
    table = pmf_table(n, n_c, supp_x, buffer)
    p_two = PValueBuffer(n, n_c, supp_x, buffer).p_value(supp_r)
    return max(0.0, p_two - 0.5 * table[supp_r - low])


def log_odds_ratio(supp_r: int, n: int, n_c: int, supp_x: int) -> float:
    """Sample log odds ratio of the rule's 2x2 table (Haldane corrected).

    Not used by the correction machinery; exposed as a convenience
    effect-size measure for reporting alongside p-values.
    """
    a = supp_r
    b = supp_x - supp_r
    c = n_c - supp_r
    d = n - n_c - b
    if min(a, b, c, d) < 0:
        raise StatsError("inconsistent rule counts")
    return (math.log(a + 0.5) - math.log(b + 0.5)
            - math.log(c + 0.5) + math.log(d + 0.5))


def min_attainable_p_value(n: int, n_c: int, supp_x: int,
                           buffer: Optional[LogFactorialBuffer] = None,
                           ) -> float:
    """Smallest *two-tailed* p-value any rule with this coverage can
    reach.

    The minimum sits at one of the two flanks of the reachable range,
    but the two-tailed definition sums every outcome at most as
    probable — so when the opposite flank ties (inevitable for
    ``n_c = n/2``), it is included. This reproduces the paper's
    Section 2.3 example exactly: n=1000, supp(c)=500, supp(X)=5 gives
    0.062 (both flanks), not the single-flank 0.031. Useful for
    LAMP-style pruning and detectability analysis
    (:func:`repro.stats.power.min_testable_coverage`).
    """
    low, high = support_bounds(n, n_c, supp_x)
    table = PValueBuffer(n, n_c, supp_x, buffer)
    return min(table.p_value(low), table.p_value(high))
