"""The p-value buffer ``B_supp(X)`` of Section 4.2.3 (Figure 2).

For fixed ``n`` (records), ``n_c`` (class support) and coverage
``supp(X)``, a rule's two-tailed Fisher p-value depends only on
``supp(R) = k``. The buffer precomputes the p-value for *every*
reachable ``k in [L, U]`` so that permutation testing can score a rule
on each permutation with a single table lookup.

Construction follows the paper exactly: the hypergeometric pmf is
unimodal, so its smallest values sit at the two ends of ``[L, U]``.
Starting from both ends and walking inward, pmf values are accumulated
in ascending order; after processing entry ``k`` the running sum is the
two-tailed p-value for ``supp(R) = k`` (the total mass of all outcomes
at most as probable as ``k``). Ties — outcomes on opposite flanks with
equal probability, inevitable when ``n_c = n/2`` — are grouped: every
member of a tie group receives the sum *including* the whole group,
which matches the definition ``E = {j : H(j) <= H(k)}``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import StatsError
from .hypergeom import pmf_table, support_bounds
from .logfact import LogFactorialBuffer

__all__ = ["PValueBuffer", "RELATIVE_TIE_TOLERANCE"]

# Two pmf values within this relative factor are treated as equal when
# deciding which outcomes are "at least as extreme". The same guard
# factor is used by scipy's two-tailed Fisher test; it absorbs the
# round-off difference between analytically identical flank values.
RELATIVE_TIE_TOLERANCE = 1.0 + 1e-7


class PValueBuffer:
    """All possible two-tailed p-values for one coverage value.

    Parameters
    ----------
    n, n_c, supp_x:
        Dataset size, class support and rule coverage; together they fix
        the hypergeometric null.
    buffer:
        Optional shared log-factorial buffer.
    midp:
        When true, store Lancaster mid-p values instead: each entry is
        the two-tailed p-value minus half the observed outcome's pmf.
        Mid-p is less conservative than the exact test (the discrete
        statistic makes the exact test over-cover); the buffer layout
        and lookup protocol are unchanged, so the whole permutation
        pipeline works with mid-p transparently.

    Attributes
    ----------
    low, high:
        The reachable range ``[L, U]`` of ``supp(R)``.
    """

    __slots__ = ("n", "n_c", "supp_x", "low", "high", "midp", "_pvalues")

    def __init__(self, n: int, n_c: int, supp_x: int,
                 buffer: Optional[LogFactorialBuffer] = None,
                 midp: bool = False) -> None:
        self.n = n
        self.n_c = n_c
        self.supp_x = supp_x
        self.midp = midp
        self.low, self.high = support_bounds(n, n_c, supp_x)
        pmf = pmf_table(n, n_c, supp_x, buffer)
        self._pvalues = _two_ends_sum_up(pmf)
        if midp:
            self._pvalues = [
                max(0.0, p - 0.5 * mass)
                for p, mass in zip(self._pvalues, pmf)
            ]

    def __len__(self) -> int:
        return len(self._pvalues)

    def p_value(self, supp_r: int) -> float:
        """Two-tailed p-value of a rule with support ``supp_r``.

        ``supp_r`` must lie in ``[L, U]``; anything else is impossible
        for this coverage and indicates a caller bug.
        """
        if supp_r < self.low or supp_r > self.high:
            raise StatsError(
                f"supp(R)={supp_r} outside reachable range "
                f"[{self.low}, {self.high}] for n={self.n}, "
                f"n_c={self.n_c}, supp(X)={self.supp_x}")
        return self._pvalues[supp_r - self.low]

    def p_values(self) -> List[float]:
        """The full table ``[p(L), ..., p(U)]`` (a defensive copy)."""
        return list(self._pvalues)

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the table (doubles)."""
        return 8 * len(self._pvalues)

    def __repr__(self) -> str:
        return (f"PValueBuffer(n={self.n}, n_c={self.n_c}, "
                f"supp_x={self.supp_x}, range=[{self.low}, {self.high}])")


def _two_ends_sum_up(pmf: Sequence[float]) -> List[float]:
    """Figure 2's two-ends-inward accumulation with tie grouping.

    Walks a left pointer up and a right pointer down, always consuming
    the smaller pmf next. A *group* is the maximal run of entries (from
    either flank) whose pmf equals the group minimum within
    ``RELATIVE_TIE_TOLERANCE``; the running total after the whole group
    is assigned to every member, so tied outcomes include each other.
    """
    m = len(pmf)
    result = [0.0] * m
    left, right = 0, m - 1
    total = 0.0
    while left <= right:
        smallest = min(pmf[left], pmf[right])
        ceiling = smallest * RELATIVE_TIE_TOLERANCE
        group: List[int] = []
        while left <= right and pmf[left] <= ceiling:
            group.append(left)
            left += 1
        while left <= right and pmf[right] <= ceiling:
            group.append(right)
            right -= 1
        if not group:
            # Defensive: cannot happen (one flank always matches its
            # own minimum), but never loop forever on pathological NaN.
            raise StatsError("pmf table is not unimodal or contains NaN")
        total += sum(pmf[i] for i in group)
        for i in group:
            result[i] = total
    # Clamp tiny floating point overshoot so callers can rely on p <= 1.
    return [p if p < 1.0 else 1.0 for p in result]
