"""Sequential Monte-Carlo p-values (Besag & Clifford 1991).

Section 4.2 invests heavily in making permutation testing affordable
(mine once, Diffsets, p-value buffers). This module adds the
complementary *statistical* cost reduction: when estimating a single
rule's empirical p-value by resampling, stop as soon as the verdict is
clear instead of always running all ``N`` permutations.

The Besag–Clifford sequential procedure draws null statistics one at a
time and stops when either

* ``h`` of them have been at least as extreme as the observed value
  (the rule is clearly *not* significant — its empirical p-value is
  large and more sampling cannot rescue it), or
* ``n_max`` draws have been made (the p-value is small; every draw was
  needed to resolve it).

The estimator ``p = (exceedances + 1) / (draws + 1)`` is a *valid*
p-value at any stopping point — ``P(p <= u) <= u`` under the null for
every ``u`` — so the early exit sacrifices no type-I-error control.
The expected number of draws for a clearly-null rule is about
``h / p_true``, typically a tiny fraction of ``n_max``; significant
rules still cost ``n_max`` draws, which is unavoidable (resolving a
small p-value needs many samples).

This complements, not replaces, the engine in
:mod:`repro.corrections.permutation`: the engine's vectorised
all-rules pass is the right tool for the *mining* phase, while the
sequential test suits the paper's FDR follow-up story — validating a
handful of candidate rules, where per-rule early stopping shines.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..errors import StatsError

__all__ = ["SequentialResult", "sequential_p_value",
           "sequential_rule_p_value"]


@dataclass(frozen=True)
class SequentialResult:
    """Outcome of one sequential Monte-Carlo test.

    ``p_value`` is the Besag–Clifford estimate ``(h' + 1) / (m + 1)``
    with ``h'`` exceedances in ``m`` draws; ``stopped_early`` records
    whether the exceedance budget ``h`` was exhausted before
    ``n_max``.
    """

    p_value: float
    draws: int
    exceedances: int
    stopped_early: bool

    def summary(self) -> str:
        """One-line human-readable description."""
        mode = "early stop" if self.stopped_early else "full run"
        return (f"p={self.p_value:.4g} after {self.draws} draws "
                f"({self.exceedances} exceedances, {mode})")


def sequential_p_value(
    observed: float,
    sampler: Callable[..., float],
    h: int = 10,
    n_max: int = 1000,
    rng=None,
    seed: Optional[int] = None,
) -> SequentialResult:
    """Estimate ``P(null statistic <= observed)`` with early stopping.

    Parameters
    ----------
    observed:
        The observed test statistic. Convention: *smaller is more
        extreme* (statistics that are p-values themselves, as in the
        permutation pipeline, already satisfy this; negate otherwise).
    sampler:
        Draws one null statistic; receives the procedure's generator
        (a :class:`numpy.random.Generator` unless a deprecated
        :class:`random.Random` was passed as ``rng``).
    h:
        Exceedance budget. Larger ``h`` lowers the estimator's
        variance for mid-range p-values at the price of later
        stopping; Besag & Clifford suggest 10-20.
    n_max:
        Hard cap on draws; the smallest resolvable p-value is
        ``1 / (n_max + 1)``.

    Notes
    -----
    Validity does not depend on ``h`` or ``n_max``: at any stopping
    time, ``(exceedances + 1) / (draws + 1)`` is super-uniform under
    the null (Besag & Clifford 1991, eq. 2).
    """
    if h < 1:
        raise StatsError(f"h must be >= 1, got {h}")
    if n_max < 1:
        raise StatsError(f"n_max must be >= 1, got {n_max}")
    if rng is not None and seed is not None:
        raise StatsError("give rng or seed, not both")
    if isinstance(rng, random.Random):
        warnings.warn(
            "sequential_p_value(rng=random.Random) is deprecated; "
            "pass a numpy.random.Generator (e.g. "
            "numpy.random.default_rng(seed)) for the "
            "engine-consistent stream",
            DeprecationWarning, stacklevel=2)
        generator = rng
    else:
        generator = rng if rng is not None else np.random.default_rng(seed)
    exceedances = 0
    draws = 0
    while draws < n_max:
        draws += 1
        if sampler(generator) <= observed:
            exceedances += 1
            if exceedances >= h:
                return SequentialResult(
                    p_value=exceedances / draws,
                    draws=draws, exceedances=exceedances,
                    stopped_early=True)
    return SequentialResult(
        p_value=(exceedances + 1) / (draws + 1),
        draws=draws, exceedances=exceedances, stopped_early=False)


def sequential_rule_p_value(
    ruleset,
    rule_index: int,
    h: int = 10,
    n_max: int = 1000,
    seed: Optional[int] = None,
) -> SequentialResult:
    """Sequential empirical p-value of one mined rule.

    Re-scores the rule under label shuffling (the Section 4.2 null)
    one permutation at a time, stopping early when the rule is clearly
    not significant. Intended for validating individual candidates —
    the engine's batch pass is cheaper per rule when *all* rules are
    needed.
    """
    from ..tidvector import TidVector, as_tidvector

    rules = ruleset.rules
    if not 0 <= rule_index < len(rules):
        raise StatsError(f"rule_index {rule_index} out of range "
                         f"[0, {len(rules)})")
    rule = rules[rule_index]
    dataset = ruleset.dataset
    n = dataset.n_records
    pattern = next(p for p in ruleset.patterns
                   if p.node_id == rule.pattern_id)
    # Plugin miners may carry bigint tidsets; coerce once up front.
    pattern_tids = as_tidvector(pattern.tidset, dataset.n_records)
    coverage = rule.coverage
    cache = ruleset.caches[rule.class_index]
    labels = list(range(n))
    class_bits = dataset.class_tidset(rule.class_index)
    n_c = class_bits.count()

    def shuffled_p(generator) -> float:
        # Shuffling labels == drawing which records carry class c;
        # only the pattern's overlap with that draw matters.
        if isinstance(generator, random.Random):  # deprecated shim
            chosen = generator.sample(labels, n_c)
        else:
            chosen = generator.choice(n, size=n_c, replace=False)
        indicator = np.zeros(n, dtype=bool)
        indicator[chosen] = True
        support = pattern_tids.intersection_count(
            TidVector.from_bool(indicator))
        return cache.p_value(support, coverage)

    return sequential_p_value(rule.p_value, shuffled_p, h=h,
                              n_max=n_max, seed=seed)
