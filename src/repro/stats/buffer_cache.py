"""Static + dynamic p-value buffer cache (Section 4.2.3).

Different rules share their p-value computation when they have the same
coverage, and one rule reuses its own buffer across all permutations.
The paper's cache has two tiers:

* a **static buffer** holding the :class:`~repro.stats.pvalue_buffer.
  PValueBuffer` of every coverage in ``[min_sup, max_sup]``, where
  ``max_sup`` is derived from a memory budget;
* a **dynamic buffer** holding exactly *one* buffer — that of the last
  rule whose coverage exceeded ``max_sup`` (tracked by the paper's
  ``sup_d`` variable).

Buffers are built lazily on first use. The cache also counts hits and
misses so the Figure 4 ablation can report the effectiveness of each
tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import StatsError
from .logfact import LogFactorialBuffer, default_buffer
from .pvalue_buffer import PValueBuffer

__all__ = ["BufferCache", "CacheStats"]


@dataclass
class CacheStats:
    """Hit/miss counters for the two cache tiers."""

    static_hits: int = 0
    static_misses: int = 0
    dynamic_hits: int = 0
    dynamic_misses: int = 0

    @property
    def total_lookups(self) -> int:
        return (self.static_hits + self.static_misses
                + self.dynamic_hits + self.dynamic_misses)

    @property
    def hit_rate(self) -> float:
        total = self.total_lookups
        if total == 0:
            return 0.0
        return (self.static_hits + self.dynamic_hits) / total


class BufferCache:
    """Coverage-keyed cache of p-value buffers for one ``(n, n_c)`` null.

    Parameters
    ----------
    n, n_c:
        Dataset size and class support; both are fixed for a whole
        mining run (and across permutations), so one cache serves an
        entire correction pipeline per class label.
    static_budget_bytes:
        Memory budget of the static tier. A coverage's buffer occupies
        ``8 * (U - L + 1)`` bytes; ``max_sup`` is the largest coverage
        whose cumulative footprint (for all coverages from ``min_sup``
        up) fits the budget. The paper uses 16 MB.
    min_sup:
        Smallest coverage the static tier may hold.
    use_static / use_dynamic:
        Ablation switches matching Figure 4's configurations: with both
        off every lookup rebuilds the buffer ("no optimization").
    midp:
        Build Lancaster mid-p buffers instead of exact two-tailed ones
        (the ``"fisher-midp"`` scorer).
    """

    def __init__(self, n: int, n_c: int,
                 static_budget_bytes: int = 16 * 1024 * 1024,
                 min_sup: int = 1,
                 use_static: bool = True,
                 use_dynamic: bool = True,
                 logfact: Optional[LogFactorialBuffer] = None,
                 midp: bool = False) -> None:
        if not 0 <= n_c <= n:
            raise StatsError(f"n_c={n_c} out of [0, {n}]")
        if min_sup < 1:
            raise StatsError("min_sup must be >= 1")
        self.n = n
        self.n_c = n_c
        self.min_sup = min_sup
        self.midp = midp
        self.use_static = use_static
        self.use_dynamic = use_dynamic
        self.stats = CacheStats()
        self._logfact = logfact or default_buffer()
        self._static: Dict[int, PValueBuffer] = {}
        self._dynamic: Optional[PValueBuffer] = None
        self._sup_d: Optional[int] = None
        self.max_sup = (self._derive_max_sup(static_budget_bytes)
                        if use_static else min_sup - 1)

    def _derive_max_sup(self, budget_bytes: int) -> int:
        """Largest coverage whose buffers cumulatively fit the budget.

        A buffer for coverage ``s`` spans ``min(n_c, s) - max(0, n_c +
        s - n) + 1`` doubles. Walk coverages upward until the budget is
        exhausted.
        """
        used = 0
        max_sup = self.min_sup - 1
        for s in range(self.min_sup, self.n + 1):
            low = max(0, self.n_c + s - self.n)
            high = min(self.n_c, s)
            used += 8 * (high - low + 1)
            if used > budget_bytes:
                break
            max_sup = s
        return max_sup

    def buffer_for(self, supp_x: int) -> PValueBuffer:
        """Return the p-value buffer for coverage ``supp_x``.

        Follows the paper's lookup protocol: static tier for coverages
        up to ``max_sup``, otherwise the single-slot dynamic tier keyed
        by ``sup_d``; a miss builds and installs the buffer.
        """
        if not 0 <= supp_x <= self.n:
            raise StatsError(f"coverage {supp_x} out of [0, {self.n}]")
        if self.use_static and supp_x <= self.max_sup:
            cached = self._static.get(supp_x)
            if cached is not None:
                self.stats.static_hits += 1
                return cached
            self.stats.static_misses += 1
            built = PValueBuffer(self.n, self.n_c, supp_x, self._logfact,
                                 midp=self.midp)
            self._static[supp_x] = built
            return built
        if self.use_dynamic:
            if self._sup_d == supp_x and self._dynamic is not None:
                self.stats.dynamic_hits += 1
                return self._dynamic
            self.stats.dynamic_misses += 1
            built = PValueBuffer(self.n, self.n_c, supp_x, self._logfact,
                                 midp=self.midp)
            self._dynamic = built
            self._sup_d = supp_x
            return built
        # No caching at all: the Figure 4 "no optimization" arm.
        self.stats.dynamic_misses += 1
        return PValueBuffer(self.n, self.n_c, supp_x, self._logfact,
                            midp=self.midp)

    def p_value(self, supp_r: int, supp_x: int) -> float:
        """Two-tailed p-value for a rule via the cached buffer."""
        return self.buffer_for(supp_x).p_value(supp_r)

    @property
    def static_nbytes(self) -> int:
        """Current footprint of the static tier."""
        return sum(buf.nbytes for buf in self._static.values())

    def clear(self) -> None:
        """Drop all cached buffers (counters are preserved)."""
        self._static.clear()
        self._dynamic = None
        self._sup_d = None
