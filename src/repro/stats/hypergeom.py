"""Hypergeometric distribution built on the log-factorial buffer.

For a rule ``R : X => c`` on a dataset of ``n`` records with ``n_c``
records of class ``c`` and coverage ``supp(X)``, the null distribution
of ``supp(R)`` is hypergeometric::

    H(k; n, n_c, supp(X)) = C(n_c, k) * C(n - n_c, supp(X) - k)
                            / C(n, supp(X))

with support ``k in [L, U]``, ``L = max(0, n_c + supp(X) - n)`` and
``U = min(n_c, supp(X))`` (Section 2.2 of the paper).
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..errors import StatsError
from .logfact import LogFactorialBuffer, default_buffer

__all__ = ["support_bounds", "log_pmf", "pmf", "pmf_table", "mean", "mode"]


def _validate(n: int, n_c: int, supp_x: int) -> None:
    if n < 0:
        raise StatsError(f"population size n={n} must be non-negative")
    if not 0 <= n_c <= n:
        raise StatsError(f"class support n_c={n_c} out of [0, {n}]")
    if not 0 <= supp_x <= n:
        raise StatsError(f"coverage supp_x={supp_x} out of [0, {n}]")


def support_bounds(n: int, n_c: int, supp_x: int) -> Tuple[int, int]:
    """Return ``(L, U)``, the reachable range of ``supp(R)``."""
    _validate(n, n_c, supp_x)
    return max(0, n_c + supp_x - n), min(n_c, supp_x)


def log_pmf(k: int, n: int, n_c: int, supp_x: int,
            buffer: LogFactorialBuffer | None = None) -> float:
    """Return ``ln H(k; n, n_c, supp_x)`` (``-inf`` outside support)."""
    _validate(n, n_c, supp_x)
    low, high = max(0, n_c + supp_x - n), min(n_c, supp_x)
    if k < low or k > high:
        return float("-inf")
    buf = buffer or default_buffer()
    return (buf.log_binomial(n_c, k)
            + buf.log_binomial(n - n_c, supp_x - k)
            - buf.log_binomial(n, supp_x))


def pmf(k: int, n: int, n_c: int, supp_x: int,
        buffer: LogFactorialBuffer | None = None) -> float:
    """Return ``H(k; n, n_c, supp_x)``."""
    value = log_pmf(k, n, n_c, supp_x, buffer)
    return math.exp(value) if value > float("-inf") else 0.0


def pmf_table(n: int, n_c: int, supp_x: int,
              buffer: LogFactorialBuffer | None = None) -> List[float]:
    """Return ``[H(L), ..., H(U)]`` computed incrementally in O(U - L).

    Uses the recurrence
    ``H(k+1)/H(k) = (n_c - k)(supp_x - k) / ((k+1)(n - n_c - supp_x + k + 1))``
    seeded with one log-space evaluation, so building a table for a
    whole coverage value costs a single exp plus one multiply per entry.
    Each entry is renormalization-free; accumulated round-off over a few
    thousand entries stays far below the 1e-7 tie tolerance used by the
    two-tailed test.
    """
    low, high = support_bounds(n, n_c, supp_x)
    first = pmf(low, n, n_c, supp_x, buffer)
    table = [first]
    value = first
    for k in range(low, high):
        numerator = (n_c - k) * (supp_x - k)
        denominator = (k + 1) * (n - n_c - supp_x + k + 1)
        value = value * numerator / denominator
        table.append(value)
    if first == 0.0:
        # The seed underflowed; rebuild every entry in log space so the
        # table is still usable around the mode.
        table = [pmf(k, n, n_c, supp_x, buffer)
                 for k in range(low, high + 1)]
    return table


def mean(n: int, n_c: int, supp_x: int) -> float:
    """Expected ``supp(R)`` under independence: ``supp_x * n_c / n``."""
    _validate(n, n_c, supp_x)
    if n == 0:
        return 0.0
    return supp_x * n_c / n


def mode(n: int, n_c: int, supp_x: int) -> int:
    """The most probable ``supp(R)`` under independence."""
    _validate(n, n_c, supp_x)
    low, high = support_bounds(n, n_c, supp_x)
    m = math.floor((supp_x + 1) * (n_c + 1) / (n + 2))
    return min(max(m, low), high)
