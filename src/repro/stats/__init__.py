"""Statistics substrate: exact tests, buffers and caches."""

from .buffer_cache import BufferCache, CacheStats
from .chi2 import chi2_rule_p_value, chi2_sf, chi2_statistic, chi2_test
from .fisher import (
    fisher_from_contingency,
    fisher_left_tailed,
    fisher_right_tailed,
    fisher_two_tailed,
    fisher_two_tailed_midp,
    log_odds_ratio,
    min_attainable_p_value,
    rule_p_value,
)
from .hypergeom import log_pmf, mean, mode, pmf, pmf_table, support_bounds
from .logfact import LogFactorialBuffer, default_buffer, log_binomial
from .power import (
    detection_power,
    deterministic_detection,
    min_detectable_confidence,
    min_detectable_support,
    min_testable_coverage,
    power_curve,
)
from .pvalue_buffer import RELATIVE_TIE_TOLERANCE, PValueBuffer
from .sequential import (
    SequentialResult,
    sequential_p_value,
    sequential_rule_p_value,
)

__all__ = [
    "BufferCache",
    "CacheStats",
    "chi2_rule_p_value",
    "chi2_sf",
    "chi2_statistic",
    "chi2_test",
    "fisher_from_contingency",
    "fisher_left_tailed",
    "fisher_right_tailed",
    "fisher_two_tailed",
    "fisher_two_tailed_midp",
    "log_odds_ratio",
    "min_attainable_p_value",
    "rule_p_value",
    "log_pmf",
    "mean",
    "mode",
    "pmf",
    "pmf_table",
    "support_bounds",
    "LogFactorialBuffer",
    "default_buffer",
    "log_binomial",
    "RELATIVE_TIE_TOLERANCE",
    "PValueBuffer",
    "detection_power",
    "deterministic_detection",
    "min_detectable_confidence",
    "min_detectable_support",
    "min_testable_coverage",
    "power_curve",
    "SequentialResult",
    "sequential_p_value",
    "sequential_rule_p_value",
]
