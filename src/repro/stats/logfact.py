"""The log-factorial buffer ``Bf`` of Section 4.2.3.

The paper stores the factorials of ``0..n`` in a buffer to make each
hypergeometric probability O(1); because ``n!`` overflows any fixed-
width float long before the dataset sizes used here, the buffer holds
*logarithms* of factorials, exactly as the paper prescribes ("we store
the logarithm of the factorials in the buffer"). The buffer grows
incrementally and is shared process-wide through
:func:`default_buffer`.
"""

from __future__ import annotations

import math
import threading
from typing import List

from ..errors import StatsError

__all__ = ["LogFactorialBuffer", "default_buffer", "log_binomial"]


class LogFactorialBuffer:
    """Incrementally grown table of ``ln(k!)`` for ``k = 0..capacity``.

    ``buffer[k]`` is ``ln(k!)``; extension is O(new entries) because
    ``ln((k+1)!) = ln(k!) + ln(k+1)``.
    """

    def __init__(self, initial_capacity: int = 1024) -> None:
        if initial_capacity < 0:
            raise StatsError("initial capacity must be non-negative")
        self._table: List[float] = [0.0]
        self._grow_lock = threading.Lock()
        self.ensure(initial_capacity)

    def __len__(self) -> int:
        return len(self._table)

    # Buffers travel to process workers inside pickled rulesets and
    # caches; the growth lock is process-local state, not data.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_grow_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._grow_lock = threading.Lock()

    @property
    def capacity(self) -> int:
        """Largest ``k`` for which ``ln(k!)`` is currently tabulated."""
        return len(self._table) - 1

    def ensure(self, n: int) -> None:
        """Grow the table so that ``log_factorial(n)`` is O(1).

        Growth is serialized: the process-wide default buffer is hit
        concurrently by the thread fan-outs (``Pipeline.run_many``,
        the correct-stage fan-out, the experiment grid), and an
        unlocked read-of-``table[-1]``-then-append loop interleaves
        into silently wrong entries. Reads stay lock-free — the table
        is append-only, so any index below ``len`` is immutable.
        """
        table = self._table
        if n < len(table):
            return
        with self._grow_lock:
            for k in range(len(table), n + 1):
                table.append(table[-1] + math.log(k))

    def log_factorial(self, k: int) -> float:
        """Return ``ln(k!)``, growing the table if needed."""
        if k < 0:
            raise StatsError(f"factorial of negative number {k}")
        if k > self.capacity:
            self.ensure(k)
        return self._table[k]

    def log_binomial(self, a: int, b: int) -> float:
        """Return ``ln(C(a, b))``; ``-inf`` when the coefficient is 0."""
        if b < 0 or b > a:
            return float("-inf")
        if a > self.capacity:
            self.ensure(a)
        table = self._table
        return table[a] - table[b] - table[a - b]


_DEFAULT = LogFactorialBuffer()


def default_buffer() -> LogFactorialBuffer:
    """Process-wide shared buffer (grown lazily by all callers)."""
    return _DEFAULT


def log_binomial(a: int, b: int) -> float:
    """Module-level convenience for ``ln(C(a, b))`` via the shared buffer."""
    return _DEFAULT.log_binomial(a, b)
