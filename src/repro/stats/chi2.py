"""Chi-square test of independence for 2x2 rule tables.

Brin et al. (SIGMOD 1997) scored association rules with the chi-square
test; the paper cites it as the main alternative to Fisher's exact test
(Section 2.2) and notes the correction machinery is score-agnostic.
This module implements the test from scratch — including the
regularized upper incomplete gamma function used for the survival
function — so no scipy dependency is needed at runtime.
"""

from __future__ import annotations

import math

from ..errors import StatsError

__all__ = [
    "chi2_statistic",
    "chi2_sf",
    "chi2_test",
    "chi2_rule_p_value",
]

_MAX_ITERATIONS = 10_000
_EPS = 3e-15


def _regularized_gamma_p(s: float, x: float) -> float:
    """Lower regularized incomplete gamma ``P(s, x)`` via power series."""
    if x == 0.0:
        return 0.0
    log_prefix = s * math.log(x) - x - math.lgamma(s)
    term = 1.0 / s
    total = term
    k = s
    for _ in range(_MAX_ITERATIONS):
        k += 1.0
        term *= x / k
        total += term
        if abs(term) < abs(total) * _EPS:
            break
    return math.exp(log_prefix) * total


def _regularized_gamma_q(s: float, x: float) -> float:
    """Upper regularized incomplete gamma ``Q(s, x)`` via Lentz CF."""
    log_prefix = s * math.log(x) - x - math.lgamma(s)
    tiny = 1e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITERATIONS):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            break
    return math.exp(log_prefix) * h


def chi2_sf(x: float, dof: int = 1) -> float:
    """Survival function ``P(Chi2_dof >= x)``.

    For one degree of freedom the closed form ``erfc(sqrt(x/2))`` is
    used; otherwise the incomplete gamma ratio with ``s = dof/2``.
    """
    if dof < 1:
        raise StatsError("degrees of freedom must be >= 1")
    if x < 0:
        raise StatsError("chi-square statistic cannot be negative")
    if x == 0.0:
        return 1.0
    if dof == 1:
        return math.erfc(math.sqrt(x / 2.0))
    s = dof / 2.0
    half = x / 2.0
    if half < s + 1.0:
        return 1.0 - _regularized_gamma_p(s, half)
    return _regularized_gamma_q(s, half)


def chi2_statistic(a: int, b: int, c: int, d: int,
                   yates: bool = False) -> float:
    """Chi-square statistic of the 2x2 table ``[[a, b], [c, d]]``.

    With ``yates=True`` the continuity-corrected form is used. Tables
    with a zero marginal have no association to test and score 0.
    """
    for value, label in ((a, "a"), (b, "b"), (c, "c"), (d, "d")):
        if value < 0:
            raise StatsError(f"contingency cell {label} is negative")
    n = a + b + c + d
    row1, row2 = a + b, c + d
    col1, col2 = a + c, b + d
    if 0 in (row1, row2, col1, col2):
        return 0.0
    delta = abs(a * d - b * c)
    if yates:
        delta = max(0.0, delta - n / 2.0)
    return n * delta * delta / (row1 * row2 * col1 * col2)


def chi2_test(a: int, b: int, c: int, d: int,
              yates: bool = False) -> float:
    """P-value of the chi-square independence test on a 2x2 table."""
    return chi2_sf(chi2_statistic(a, b, c, d, yates=yates), dof=1)


def chi2_rule_p_value(supp_r: int, n: int, n_c: int, supp_x: int,
                      yates: bool = False) -> float:
    """Chi-square p-value in the paper's rule parametrization.

    Drop-in alternative to
    :func:`repro.stats.fisher.fisher_two_tailed`; the asymptotic
    approximation is anti-conservative for small cells, which is why
    the paper prefers the exact test.
    """
    a = supp_r
    b = supp_x - supp_r
    c = n_c - supp_r
    d = n - n_c - b
    if min(a, b, c, d) < 0:
        raise StatsError(
            f"inconsistent rule counts supp_r={supp_r}, n={n}, "
            f"n_c={n_c}, supp_x={supp_x}")
    return chi2_test(a, b, c, d, yates=yates)
