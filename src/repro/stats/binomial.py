"""Binomial distribution built on the shared log-factorial buffer.

The frequency-significance methods (Kirsch et al. [10], Megiddo &
Srikant [13]) model the support of a pattern under item independence as
``Binomial(n, p0)`` with ``p0`` the product of its items' marginal
frequencies. This module provides the log pmf, the two tails, and the
upper-tail exact test those methods score with — all in log space via
:class:`~repro.stats.logfact.LogFactorialBuffer`, so the n=100k regime
of transactional benchmarks does not overflow.
"""

from __future__ import annotations

import math
from typing import Optional

from ..errors import StatsError
from .logfact import LogFactorialBuffer, default_buffer

__all__ = [
    "binomial_log_pmf",
    "binomial_pmf",
    "binomial_cdf",
    "binomial_sf",
    "binomial_test_upper",
]


def _validate(k: int, n: int, p: float) -> None:
    if n < 0:
        raise StatsError(f"n must be >= 0, got {n}")
    if not 0.0 <= p <= 1.0:
        raise StatsError(f"p must be in [0, 1], got {p}")
    if not 0 <= k <= n:
        raise StatsError(f"k={k} outside [0, n={n}]")


def binomial_log_pmf(k: int, n: int, p: float,
                     buffer: Optional[LogFactorialBuffer] = None,
                     ) -> float:
    """``log P(X = k)`` for ``X ~ Binomial(n, p)``.

    Returns ``-inf`` where the pmf is exactly zero (``p`` degenerate at
    0 or 1 and ``k`` off the atom).
    """
    _validate(k, n, p)
    if p == 0.0:
        return 0.0 if k == 0 else float("-inf")
    if p == 1.0:
        return 0.0 if k == n else float("-inf")
    buffer = buffer or default_buffer()
    return (buffer.log_binomial(n, k)
            + k * math.log(p)
            + (n - k) * math.log1p(-p))


def binomial_pmf(k: int, n: int, p: float,
                 buffer: Optional[LogFactorialBuffer] = None) -> float:
    """``P(X = k)`` for ``X ~ Binomial(n, p)``."""
    return math.exp(binomial_log_pmf(k, n, p, buffer=buffer))


def binomial_cdf(k: int, n: int, p: float,
                 buffer: Optional[LogFactorialBuffer] = None) -> float:
    """``P(X <= k)``, summed from the lighter tail for accuracy."""
    _validate(k, n, p)
    if k == n:
        return 1.0
    # Sum whichever tail has fewer terms; both tails are exact.
    if k + 1 <= n - k:
        total = 0.0
        for i in range(0, k + 1):
            total += binomial_pmf(i, n, p, buffer=buffer)
        return min(1.0, total)
    return max(0.0, 1.0 - binomial_sf(k, n, p, buffer=buffer))


def binomial_sf(k: int, n: int, p: float,
                buffer: Optional[LogFactorialBuffer] = None) -> float:
    """``P(X > k)`` (strict upper tail)."""
    _validate(k, n, p)
    if k == n:
        return 0.0
    if n - k <= k + 1:
        total = 0.0
        for i in range(k + 1, n + 1):
            total += binomial_pmf(i, n, p, buffer=buffer)
        return min(1.0, total)
    return max(0.0, 1.0 - binomial_cdf(k, n, p, buffer=buffer))


def binomial_test_upper(k: int, n: int, p: float,
                        buffer: Optional[LogFactorialBuffer] = None,
                        ) -> float:
    """One-sided exact test ``P(X >= k)``.

    The p-value of observing support ``k`` or more when the null
    support distribution is ``Binomial(n, p)`` — the score both
    frequency-significance methods attach to a pattern.
    """
    _validate(k, n, p)
    if k == 0:
        return 1.0
    return min(1.0, binomial_sf(k - 1, n, p, buffer=buffer))
