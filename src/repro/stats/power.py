"""Analytic detectability and power calculations.

The paper's Figures 1 and 9 show how a rule's p-value is governed by
its coverage and confidence, and Section 2.3 works through the
consequences ("when #records=1000, supp(c)=500 and supp(X)=5, even if
conf(R)=1, the p-value is as high as 0.062"). This module turns those
observations into a calculator:

* :func:`min_detectable_support` / :func:`min_detectable_confidence` —
  the smallest rule support (equivalently confidence) at which a rule
  of given coverage clears a raw-p threshold. This is the *decision
  boundary* that every corrected method induces; Figure 8's power
  curves are step functions of the planted confidence around it.
* :func:`min_testable_coverage` — the smallest coverage that can reach
  a threshold at all (the LAMP testability bound, exposed directly).
* :func:`detection_power` — the probability that a planted rule with
  given true confidence is detected at a threshold, under the
  binomial model of the synthetic generator (``supp(R) ~
  Binomial(coverage, conf)``). Predicts the Section 5.5 power sweeps
  without running a single permutation.
* :func:`power_curve` — :func:`detection_power` over a confidence
  sweep, i.e. the analytic counterpart of Figure 8(a)/10(a).

These are *planning* tools: given a dataset's shape and a correction's
threshold, they answer "what is the weakest rule I could possibly
find?" before any mining runs.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..errors import StatsError
from .hypergeom import support_bounds
from .logfact import LogFactorialBuffer, default_buffer
from .pvalue_buffer import PValueBuffer

__all__ = [
    "deterministic_detection",
    "min_detectable_support",
    "min_detectable_confidence",
    "min_testable_coverage",
    "detection_power",
    "power_curve",
]


def _check_shape(n: int, n_c: int, supp_x: int) -> None:
    if n <= 0:
        raise StatsError("n must be positive")
    if not 0 < n_c < n:
        raise StatsError(f"n_c={n_c} must be strictly between 0 and {n}")
    if not 0 < supp_x <= n:
        raise StatsError(f"coverage {supp_x} out of (0, {n}]")


def min_detectable_support(n: int, n_c: int, supp_x: int,
                           threshold: float,
                           buffer: Optional[LogFactorialBuffer] = None,
                           ) -> Optional[int]:
    """Smallest ``supp(R)`` on the positive flank with ``p <=
    threshold``.

    Scans downward from the maximal support ``U = min(n_c, supp_x)``;
    p-values increase toward the distribution's middle, so the first
    failure ends the run. Returns ``None`` when even a perfect split
    (``supp(R) = U``) is not significant — the coverage is untestable
    at this threshold.
    """
    _check_shape(n, n_c, supp_x)
    if not 0.0 < threshold <= 1.0:
        raise StatsError(f"threshold must be in (0, 1], got {threshold}")
    table = PValueBuffer(n, n_c, supp_x, buffer)
    _low, high = support_bounds(n, n_c, supp_x)
    best: Optional[int] = None
    for k in range(high, -1, -1):
        if k < table.low or table.p_value(k) > threshold:
            break
        best = k
    return best


def min_detectable_confidence(n: int, n_c: int, supp_x: int,
                              threshold: float,
                              buffer: Optional[LogFactorialBuffer] = None,
                              ) -> Optional[float]:
    """Smallest confidence at which coverage ``supp_x`` clears
    ``threshold``.

    The confidence form of :func:`min_detectable_support`; ``None``
    when the coverage is untestable. This is the x-coordinate where
    Figure 8's power curves leave zero.
    """
    support = min_detectable_support(n, n_c, supp_x, threshold, buffer)
    if support is None:
        return None
    return support / supp_x


def min_testable_coverage(n: int, n_c: int, threshold: float,
                          buffer: Optional[LogFactorialBuffer] = None,
                          ) -> Optional[int]:
    """Smallest coverage whose best-case p-value reaches ``threshold``.

    The LAMP testability bound: rules below this coverage can never be
    significant at ``threshold`` no matter how pure their class split
    (Section 2.3's coverage-5 example evaluates to 6 at threshold
    0.05 with n=1000, n_c=500). Returns ``None`` if no coverage up to
    ``n`` qualifies.
    """
    if not 0.0 < threshold <= 1.0:
        raise StatsError(f"threshold must be in (0, 1], got {threshold}")
    from .fisher import min_attainable_p_value
    for supp_x in range(1, n + 1):
        if min_attainable_p_value(n, n_c, supp_x, buffer) <= threshold:
            return supp_x
    return None


def detection_power(n: int, n_c: int, supp_x: int,
                    true_confidence: float, threshold: float,
                    buffer: Optional[LogFactorialBuffer] = None) -> float:
    """P(rule is detected) under the binomial support model.

    Models the planted rule's realised support as ``Binomial(supp_x,
    true_confidence)`` — each covered record carries the class
    independently, the natural model for associations in real data —
    and returns the probability that it lands at or above
    :func:`min_detectable_support`. Returns 0.0 for untestable
    coverages.

    This is a *model* of the Section 5.5 experiments, not a bound: it
    ignores the slight margin distortion embedding causes (``n_c`` is
    held at its nominal value) and scores only the positive flank of
    the two-tailed test. Note that this library's synthetic generator
    embeds the planted support *deterministically*; against it the
    sharper :func:`deterministic_detection` predicate applies (the
    binomial curve sits below it near the boundary).
    """
    _check_shape(n, n_c, supp_x)
    if not 0.0 <= true_confidence <= 1.0:
        raise StatsError("true_confidence must be within [0, 1]")
    k_min = min_detectable_support(n, n_c, supp_x, threshold, buffer)
    if k_min is None:
        return 0.0
    return _binomial_sf(supp_x, true_confidence, k_min, buffer)


def deterministic_detection(n: int, n_c: int, supp_x: int,
                            true_confidence: float, threshold: float,
                            buffer: Optional[LogFactorialBuffer] = None,
                            ) -> bool:
    """Would a rule planted with *exact* support clear the threshold?

    :mod:`repro.data.synthetic` embeds rules deterministically — the
    planted support is ``round(conf * coverage)``, not a binomial
    draw — so against that generator the power curve is this step
    function (softened only by the generator's random filling).
    :func:`detection_power`'s binomial model is the right choice for
    effects arising in real data; this predicate is the right one for
    the library's own synthetic experiments. The
    ``test_ablation_analytic_power`` bench overlays both against
    simulation.
    """
    _check_shape(n, n_c, supp_x)
    if not 0.0 <= true_confidence <= 1.0:
        raise StatsError("true_confidence must be within [0, 1]")
    k_min = min_detectable_support(n, n_c, supp_x, threshold, buffer)
    if k_min is None:
        return False
    return round(true_confidence * supp_x) >= k_min


def power_curve(n: int, n_c: int, supp_x: int,
                confidences: Sequence[float], threshold: float,
                buffer: Optional[LogFactorialBuffer] = None,
                ) -> List[float]:
    """:func:`detection_power` over a confidence sweep (Figure 8(a)'s
    analytic counterpart)."""
    shared = buffer or default_buffer()
    return [detection_power(n, n_c, supp_x, conf, threshold, shared)
            for conf in confidences]


def _binomial_sf(trials: int, p: float, k_min: int,
                 buffer: Optional[LogFactorialBuffer] = None) -> float:
    """P(Binomial(trials, p) >= k_min), exactly, in log space."""
    if k_min <= 0:
        return 1.0
    if k_min > trials:
        return 0.0
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0
    logs = buffer or default_buffer()
    log_p = math.log(p)
    log_q = math.log1p(-p)
    total = 0.0
    # Sum the upper tail from its far end so small terms add first.
    for k in range(trials, k_min - 1, -1):
        log_term = (logs.log_binomial(trials, k)
                    + k * log_p + (trials - k) * log_q)
        total += math.exp(log_term)
    return min(total, 1.0)
