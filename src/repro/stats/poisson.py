"""Poisson distribution built on the shared log-factorial buffer.

Kirsch et al. (PODS 2009, ref [10]) approximate the null count of
k-itemsets with support at least ``s`` by a Poisson law; their support-
threshold procedure needs its upper tail. Implemented in log space so
large means and large counts do not overflow.
"""

from __future__ import annotations

import math
from typing import Optional

from ..errors import StatsError
from .logfact import LogFactorialBuffer, default_buffer

__all__ = [
    "poisson_log_pmf",
    "poisson_pmf",
    "poisson_cdf",
    "poisson_sf",
    "poisson_test_upper",
]


def _validate(k: int, mean: float) -> None:
    if k < 0:
        raise StatsError(f"k must be >= 0, got {k}")
    if mean < 0.0 or math.isnan(mean):
        raise StatsError(f"mean must be >= 0, got {mean}")


def poisson_log_pmf(k: int, mean: float,
                    buffer: Optional[LogFactorialBuffer] = None,
                    ) -> float:
    """``log P(X = k)`` for ``X ~ Poisson(mean)``."""
    _validate(k, mean)
    if mean == 0.0:
        return 0.0 if k == 0 else float("-inf")
    buffer = buffer or default_buffer()
    return k * math.log(mean) - mean - buffer.log_factorial(k)


def poisson_pmf(k: int, mean: float,
                buffer: Optional[LogFactorialBuffer] = None) -> float:
    """``P(X = k)`` for ``X ~ Poisson(mean)``."""
    return math.exp(poisson_log_pmf(k, mean, buffer=buffer))


def poisson_cdf(k: int, mean: float,
                buffer: Optional[LogFactorialBuffer] = None) -> float:
    """``P(X <= k)`` by direct summation of the lower tail."""
    _validate(k, mean)
    total = 0.0
    for i in range(0, k + 1):
        total += poisson_pmf(i, mean, buffer=buffer)
    return min(1.0, total)


def poisson_sf(k: int, mean: float,
               buffer: Optional[LogFactorialBuffer] = None) -> float:
    """``P(X > k)`` (strict upper tail).

    Summed upward from ``k + 1`` when that tail is light (``k`` above
    the mean), otherwise via the complement, so the result keeps
    relative accuracy where it matters — in the small tail.
    """
    _validate(k, mean)
    if k + 1 > mean:
        # Light upper tail: terms decay geometrically by mean/(i+1).
        log_term = poisson_log_pmf(k + 1, mean, buffer=buffer)
        if log_term == float("-inf"):
            return 0.0
        term = math.exp(log_term)
        total = 0.0
        i = k + 1
        while term > 0.0:
            total += term
            i += 1
            term *= mean / i
            if term < total * 1e-18:
                total += term / (1.0 - mean / (i + 1))
                break
        return min(1.0, total)
    return max(0.0, 1.0 - poisson_cdf(k, mean, buffer=buffer))


def poisson_test_upper(k: int, mean: float,
                       buffer: Optional[LogFactorialBuffer] = None,
                       ) -> float:
    """One-sided exact test ``P(X >= k)`` for ``X ~ Poisson(mean)``."""
    _validate(k, mean)
    if k == 0:
        return 1.0
    return min(1.0, poisson_sf(k - 1, mean, buffer=buffer))
