"""Packed uint64 bitmap kernels: counting, closure and diffset joins.

The mining substrate stores tidsets as arbitrary-precision Python ints
(:mod:`repro.bitset`), which makes *one* intersection a single C call —
but the permutation approach (Section 4.2) needs ``N × n_nodes`` of
them, and a Python loop over bigint ``popcount(t & class_bits)`` pays
interpreter and allocation overhead on every node of every
permutation. :class:`BitMatrix` removes that overhead wholesale: the
``n_nodes`` tidsets become one ``(n_nodes, ceil(n_records / 64))``
``uint64`` array, a class labelling becomes one packed ``uint64`` row,
and a full class-support pass is three C-level array operations —
``bitwise_and`` broadcast, ``bitwise_count`` (the POPCNT instruction on
x86), and a row sum.

Counting kernels on :class:`BitMatrix`:

* :meth:`BitMatrix.class_supports` — supports of every node under one
  boolean record indicator (one permutation);
* :meth:`BitMatrix.class_supports_batch` — a ``(B, n_nodes)`` support
  matrix for ``B`` indicators in one shot, the kernel behind the
  batched permutation pass. The broadcast intermediate is
  ``B × n_nodes × n_words`` bytes of popcounts, so the batch is
  processed in row blocks bounded by ``block_bytes`` (see
  ``docs/performance.md``);
* :meth:`BitMatrix.class_supports_multi` — a ``(C, B, n_nodes)``
  support tensor for ``C`` classes × ``B`` labellings through *one*
  kernel dispatch, so multi-class permutation scoring no longer pays
  one kernel call (and one numpy block loop) per class.

Two enumeration kernels operate on raw packed arenas (the
``(k, n_words)`` uint64 matrices every :class:`~repro.tidvector.
TidVector` arena and :class:`BitMatrix` share), native-accelerated
through :mod:`repro._native` with silent numpy fallbacks:

* :func:`superset_mask` — which arena rows contain a query set
  (``query & ~row == 0`` per row); the closed miner's closure check
  (:meth:`repro.mining.tidsets.VerticalView.superset_positions`);
* :func:`andnot_counts` — ``popcount(a_row & ~b_row)`` per row pair;
  sizes the word-wise diffset join of
  :class:`repro.mining.diffsets.PatternForest`.

Every kernel counts *exact integers* or compares exact words —
results are bit-identical to the bigint path for any input, with the
native suite loaded or not.
"""

from __future__ import annotations

import ctypes
from typing import List, Sequence

import numpy as np

from . import _native

__all__ = [
    "BitMatrix",
    "andnot_counts",
    "intersection_counts",
    "pack_indicator",
    "pack_indicators",
    "superset_mask",
    "words_per_row",
]

#: Default memory budget for one batch block's broadcast intermediates.
DEFAULT_BLOCK_BYTES = 64 * 1024 * 1024


def words_per_row(n_records: int) -> int:
    """Number of uint64 words needed to hold ``n_records`` bits."""
    if n_records < 0:
        raise ValueError("n_records must be non-negative")
    return (n_records + 63) // 64


def pack_indicator(indicator: np.ndarray) -> np.ndarray:
    """Pack one boolean record indicator into a ``(n_words,)`` uint64 row.

    Bit ``i`` of the packed row is set iff ``indicator[i]`` — the same
    little-endian layout :func:`repro.bitset.from_numpy_bool` uses for
    bigints, so packed words and bigint bitsets describe identical sets.
    """
    flags = np.ascontiguousarray(indicator, dtype=bool)
    if flags.ndim != 1:
        raise ValueError("indicator must be one-dimensional")
    return pack_indicators(flags[None, :])[0]


def pack_indicators(indicators: np.ndarray) -> np.ndarray:
    """Pack a ``(B, n_records)`` bool matrix into ``(B, n_words)`` uint64.

    Each row is packed independently (little-endian bit order within a
    word, words in ascending record order); rows are padded with zero
    bits up to the word boundary.
    """
    flags = np.ascontiguousarray(indicators, dtype=bool)
    if flags.ndim != 2:
        raise ValueError("indicators must be two-dimensional")
    n_rows, n_records = flags.shape
    n_words = words_per_row(n_records)
    packed_bytes = np.packbits(flags, axis=1, bitorder="little")
    padded = np.zeros((n_rows, n_words * 8), dtype=np.uint8)
    padded[:, :packed_bytes.shape[1]] = packed_bytes
    return (padded.view(np.dtype("<u8"))
            .astype(np.uint64, copy=False))


class BitMatrix:
    """A dense stack of tidsets as a ``(n_rows, n_words)`` uint64 array.

    Rows usually correspond to pattern-forest nodes; columns are 64-bit
    windows of record ids (record ``i`` lives in bit ``i % 64`` of word
    ``i // 64``, little-endian — the same layout as the bigint bitsets
    in :mod:`repro.bitset`, so conversion is byte-exact both ways).
    """

    __slots__ = ("_words", "n_rows", "n_records", "n_words")

    def __init__(self, words: np.ndarray, n_records: int) -> None:
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if words.ndim != 2:
            raise ValueError("words must be a 2-D uint64 array")
        if words.shape[1] != words_per_row(n_records):
            raise ValueError(
                f"{words.shape[1]} words per row cannot hold exactly "
                f"{n_records} records (need {words_per_row(n_records)})")
        self._words = words
        self.n_rows = words.shape[0]
        self.n_records = n_records
        self.n_words = words.shape[1]

    # ------------------------------------------------------------------
    # converters
    # ------------------------------------------------------------------

    @classmethod
    def from_tidsets(cls, tidsets: Sequence, n_records: int) -> "BitMatrix":
        """Pack tidsets (one per row) into a :class:`BitMatrix`.

        Rows may be :class:`~repro.tidvector.TidVector` values (the
        native representation — adopted by stacking their words, no
        conversion) or bigint bitsets (plugin/oracle interop). Every
        tidset must only reference records in ``[0, n_records)``.
        """
        from .tidvector import TidVector, stack_tidvectors

        tidsets = list(tidsets)
        if all(isinstance(t, TidVector) for t in tidsets):
            return cls(stack_tidvectors(tidsets, n_records), n_records)
        n_words = words_per_row(n_records)
        stride = n_words * 8
        buffer = bytearray(len(tidsets) * stride)
        for row, tidset in enumerate(tidsets):
            tidset = int(tidset)
            if tidset < 0:
                raise ValueError(f"tidset of row {row} is negative")
            if tidset >> n_records:
                # The same range rule as bitset.to_uint64_words: any
                # bit at or above n_records is out of range, including
                # the tail of a partially-filled last word.
                raise ValueError(
                    f"tidset of row {row} references records >= "
                    f"{n_records}")
            buffer[row * stride:(row + 1) * stride] = \
                tidset.to_bytes(stride, "little")
        words = (np.frombuffer(buffer, dtype=np.dtype("<u8"))
                 .reshape(len(tidsets), n_words)
                 .astype(np.uint64, copy=False))
        return cls(words, n_records)

    @classmethod
    def from_tidvectors(cls, vectors: Sequence,
                        n_records: int) -> "BitMatrix":
        """Adopt packed :class:`~repro.tidvector.TidVector` rows.

        One contiguous stack of already-packed words — the zero-bigint
        path from mining output to the counting kernels.
        """
        from .tidvector import stack_tidvectors

        return cls(stack_tidvectors(list(vectors), n_records), n_records)

    @classmethod
    def from_bool_matrix(cls, indicators: np.ndarray) -> "BitMatrix":
        """Pack a ``(B, n_records)`` bool matrix into a matrix of rows."""
        flags = np.ascontiguousarray(indicators, dtype=bool)
        if flags.ndim != 2:
            raise ValueError("indicators must be two-dimensional")
        return cls(pack_indicators(flags), flags.shape[1])

    def tidset(self, row: int) -> int:
        """The bigint bitset of one row (inverse of :meth:`from_tidsets`)."""
        from . import bitset as bs

        return bs.from_uint64_words(self._words[row])

    def tidvector(self, row: int):
        """One row as a packed :class:`~repro.tidvector.TidVector` view."""
        from .tidvector import TidVector

        return TidVector(self._words[row], self.n_records)

    def to_tidsets(self) -> List[int]:
        """All rows back as bigint bitsets."""
        return [self.tidset(row) for row in range(self.n_rows)]

    @property
    def words(self) -> np.ndarray:
        """The packed ``(n_rows, n_words)`` uint64 array (read it, don't
        write it — rows are shared with the forest that built them)."""
        return self._words

    @property
    def nbytes(self) -> int:
        """Memory footprint of the packed array."""
        return self._words.nbytes

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------

    def row_popcounts(self) -> np.ndarray:
        """Cardinality of every row (int64) — ``supp(X)`` per node."""
        return np.bitwise_count(self._words).sum(axis=1, dtype=np.int64)

    def class_supports(self, indicator: np.ndarray) -> np.ndarray:
        """``|row ∩ indicator|`` for every row, as an int64 array.

        ``indicator`` is a boolean array of length ``n_records``; the
        result is exactly ``popcount(tidset & class_bits)`` per row.
        """
        flags = np.asarray(indicator, dtype=bool)
        if flags.shape != (self.n_records,):
            raise ValueError(
                f"indicator must have shape ({self.n_records},), got "
                f"{flags.shape}")
        packed = pack_indicator(flags)
        suite = _native.load_suite()
        if suite is not None and self.n_rows:
            return self._run_native(packed[None, :],
                                    suite.class_supports_batch)[0]
        return (np.bitwise_count(self._words & packed[None, :])
                .sum(axis=1, dtype=np.int64))

    def class_supports_batch(self, indicators: np.ndarray,
                             block_bytes: int = DEFAULT_BLOCK_BYTES,
                             word_block: int = 0,
                             ) -> np.ndarray:
        """``(B, n_rows)`` support matrix for ``B`` indicators at once.

        Row ``b`` equals ``class_supports(indicators[b])``. The heavy
        lifting goes through the fused C kernel when the host can
        compile it (:mod:`repro._native`; one pass over the packed
        forest per labelling, no intermediates); otherwise the numpy
        path processes the batch in blocks whose
        ``block × n_rows × n_words`` broadcast intermediates stay
        within ``block_bytes``. Both paths count exact integers and
        return bit-identical matrices.

        ``word_block > 0`` scores the matrix in record-range shards of
        that many 64-record words, summing the per-shard partial
        popcounts at the boundary — supports over disjoint record
        ranges are exact integers, so the merged matrix is
        bit-identical to the whole-matrix pass while only
        ``n_rows × word_block`` words of the matrix (plus the matching
        indicator columns) are materialized at a time. This is how a
        memory-mapped or sharded forest scores without paging its full
        width in.
        """
        flags = np.asarray(indicators, dtype=bool)
        if flags.ndim != 2 or flags.shape[1] != self.n_records:
            raise ValueError(
                f"indicators must have shape (B, {self.n_records}), "
                f"got {flags.shape}")
        n_batch = flags.shape[0]
        packed = pack_indicators(flags)
        return self._supports_packed(packed, block_bytes, word_block)

    def class_supports_multi(self, class_indicators: np.ndarray,
                             block_bytes: int = DEFAULT_BLOCK_BYTES,
                             word_block: int = 0,
                             ) -> np.ndarray:
        """``(C, B, n_rows)`` supports for ``C`` classes × ``B`` rows.

        ``class_indicators`` is a boolean ``(C, B, n_records)`` tensor
        — one ``(B, n_records)`` indicator matrix per class. The whole
        tensor is packed once and flattened into a single
        ``(C·B, n_words)`` dispatch, so the multi-class permutation
        pass costs one kernel call for *all* classes instead of one
        per class. Entry ``(c, b)`` equals
        ``class_supports(class_indicators[c, b])`` exactly.
        ``word_block`` shards the pass by record range exactly as in
        :meth:`class_supports_batch`.
        """
        flags = np.asarray(class_indicators, dtype=bool)
        if flags.ndim != 3 or flags.shape[2] != self.n_records:
            raise ValueError(
                f"class indicators must have shape "
                f"(C, B, {self.n_records}), got {flags.shape}")
        n_classes, n_batch = flags.shape[0], flags.shape[1]
        packed = pack_indicators(
            flags.reshape(n_classes * n_batch, self.n_records))
        out = self._supports_packed(packed, block_bytes, word_block)
        return out.reshape(n_classes, n_batch, self.n_rows)

    def _supports_packed(self, packed: np.ndarray, block_bytes: int,
                         word_block: int = 0) -> np.ndarray:
        """Supports of every row against already-packed labellings."""
        n_batch = packed.shape[0]
        if word_block and 0 < word_block < self.n_words \
                and self.n_rows and n_batch:
            out = np.zeros((n_batch, self.n_rows), dtype=np.int64)
            for start in range(0, self.n_words, word_block):
                # Contiguous per-shard copies keep the native kernel
                # eligible; their size is the word_block budget.
                shard = BitMatrix.__new__(BitMatrix)
                shard._words = np.ascontiguousarray(
                    self._words[:, start:start + word_block])
                shard.n_rows = self.n_rows
                shard.n_words = shard._words.shape[1]
                shard.n_records = min(self.n_records,
                                      (start + shard.n_words) * 64
                                      ) - start * 64
                out += shard._supports_packed(
                    np.ascontiguousarray(
                        packed[:, start:start + word_block]),
                    block_bytes)
            return out
        suite = _native.load_suite()
        if suite is not None and self.n_rows and n_batch:
            return self._run_native(packed, suite.class_supports_batch)
        out = np.empty((n_batch, self.n_rows), dtype=np.int64)
        block = self.batch_block_rows(block_bytes)
        for start in range(0, n_batch, block):
            chunk = packed[start:start + block]
            meet = self._words[None, :, :] & chunk[:, None, :]
            out[start:start + chunk.shape[0]] = \
                np.bitwise_count(meet).sum(axis=2, dtype=np.int64)
        return out

    def _run_native(self, packed: np.ndarray, kernel) -> np.ndarray:
        """Dispatch ``(B, n_words)`` packed labellings to the C kernel."""
        packed = np.ascontiguousarray(packed, dtype=np.uint64)
        n_batch = packed.shape[0]
        out = np.empty((n_batch, self.n_rows), dtype=np.int64)
        kernel(self._words.ctypes.data_as(
                   ctypes.POINTER(ctypes.c_uint64)),
               packed.ctypes.data_as(
                   ctypes.POINTER(ctypes.c_uint64)),
               out.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)),
               self.n_rows, self.n_words, n_batch)
        return out

    @property
    def batch_row_bytes(self) -> int:
        """Intermediate bytes one batch labelling costs the numpy
        kernel: ``n_rows × n_words`` uint64 for the AND plus the same
        shape again in uint8 popcounts (9 bytes per word-cell). The
        single source of truth for every block-sizing computation
        (the fused C path allocates none of this, so sizing against
        it is conservative there)."""
        return max(1, self.n_rows * self.n_words * 9)

    def batch_block_rows(self, block_bytes: int = DEFAULT_BLOCK_BYTES,
                         ) -> int:
        """Batch rows whose broadcast intermediates fit ``block_bytes``
        (at least one row is always processed)."""
        return max(1, int(block_bytes) // self.batch_row_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BitMatrix(n_rows={self.n_rows}, "
                f"n_records={self.n_records}, n_words={self.n_words})")


# ----------------------------------------------------------------------
# arena-level enumeration kernels (native-accelerated, numpy fallback)
# ----------------------------------------------------------------------


def superset_mask(matrix: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Which rows of a packed arena contain the query set (bool mask).

    ``matrix`` is a ``(k, n_words)`` uint64 arena (item tidsets,
    forest rows); ``query`` a ``(n_words,)`` uint64 row over the same
    universe. Row ``j`` is True iff ``query & ~matrix[j] == 0`` — the
    subset/closure primitive behind
    :meth:`repro.mining.tidsets.VerticalView.superset_positions`. The
    native kernel fuses the and-not with an early-exit scan per row;
    the numpy fallback materialises one ``k × n_words`` intermediate.
    Both compare exact words, so the mask is identical either way.
    """
    matrix = np.ascontiguousarray(matrix, dtype=np.uint64)
    if matrix.ndim != 2:
        raise ValueError("matrix must be a 2-D uint64 arena")
    query = np.ascontiguousarray(query, dtype=np.uint64)
    if query.shape != (matrix.shape[1],):
        raise ValueError(
            f"query must have shape ({matrix.shape[1]},), got "
            f"{query.shape}")
    n_rows = matrix.shape[0]
    if n_rows == 0:
        return np.zeros(0, dtype=bool)
    suite = _native.load_suite()
    if suite is not None and matrix.shape[1]:
        out = np.empty(n_rows, dtype=np.uint8)
        suite.subset_mask(
            matrix.ctypes.data_as(ctypes.POINTER(ctypes.c_uint64)),
            query.ctypes.data_as(ctypes.POINTER(ctypes.c_uint64)),
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_uint8)),
            n_rows, matrix.shape[1])
        return out.view(bool)
    if matrix.shape[1] == 0:
        # Zero-width universe: the empty query is a subset of any row.
        return np.ones(n_rows, dtype=bool)
    return ~np.any(query[None, :] & ~matrix, axis=1)


def intersection_counts(matrix: np.ndarray,
                        query: np.ndarray) -> np.ndarray:
    """``popcount(matrix[j] & query)`` per arena row, as int64.

    ``matrix`` is a ``(k, n_words)`` uint64 arena, ``query`` a
    ``(n_words,)`` uint64 row. The enumeration-join primitive behind
    :meth:`repro.mining.tidsets.VerticalView.candidate_supports`: one
    fused AND+popcount sweep (the batch-supports kernel with ``B=1``)
    instead of a per-row Python ``intersection_count`` loop.
    """
    matrix = np.ascontiguousarray(matrix, dtype=np.uint64)
    if matrix.ndim != 2:
        raise ValueError("matrix must be a 2-D uint64 arena")
    query = np.ascontiguousarray(query, dtype=np.uint64)
    if query.shape != (matrix.shape[1],):
        raise ValueError(
            f"query must have shape ({matrix.shape[1]},), got "
            f"{query.shape}")
    n_rows = matrix.shape[0]
    if n_rows == 0 or matrix.shape[1] == 0:
        return np.zeros(n_rows, dtype=np.int64)
    suite = _native.load_suite()
    if suite is not None:
        out = np.empty((1, n_rows), dtype=np.int64)
        suite.class_supports_batch(
            matrix.ctypes.data_as(ctypes.POINTER(ctypes.c_uint64)),
            query.ctypes.data_as(ctypes.POINTER(ctypes.c_uint64)),
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)),
            n_rows, matrix.shape[1], 1)
        return out[0]
    return (np.bitwise_count(matrix & query[None, :])
            .sum(axis=1, dtype=np.int64))


def andnot_counts(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``popcount(a[j] & ~b[j])`` per row pair, as an int64 array.

    ``a`` and ``b`` are equal-shape ``(k, n_words)`` uint64 arenas;
    entry ``j`` is the cardinality of the set difference
    ``a[j] \\ b[j]`` — the word-wise diffset recurrence that sizes
    each ``parent \\ child`` block of
    :class:`repro.mining.diffsets.PatternForest` in one pass. Exact
    integers under both the native kernel and the numpy fallback.
    """
    a = np.ascontiguousarray(a, dtype=np.uint64)
    b = np.ascontiguousarray(b, dtype=np.uint64)
    if a.ndim != 2 or a.shape != b.shape:
        raise ValueError(
            f"a and b must be equal-shape 2-D uint64 arenas, got "
            f"{a.shape} vs {b.shape}")
    n_rows = a.shape[0]
    if n_rows == 0 or a.shape[1] == 0:
        return np.zeros(n_rows, dtype=np.int64)
    suite = _native.load_suite()
    if suite is not None:
        out = np.empty(n_rows, dtype=np.int64)
        suite.andnot_counts(
            a.ctypes.data_as(ctypes.POINTER(ctypes.c_uint64)),
            b.ctypes.data_as(ctypes.POINTER(ctypes.c_uint64)),
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)),
            n_rows, a.shape[1])
        return out
    return np.bitwise_count(a & ~b).sum(axis=1, dtype=np.int64)
