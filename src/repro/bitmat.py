"""Packed uint64 bitmap kernel: the permutation pass's counting engine.

The mining substrate stores tidsets as arbitrary-precision Python ints
(:mod:`repro.bitset`), which makes *one* intersection a single C call —
but the permutation approach (Section 4.2) needs ``N × n_nodes`` of
them, and a Python loop over bigint ``popcount(t & class_bits)`` pays
interpreter and allocation overhead on every node of every
permutation. :class:`BitMatrix` removes that overhead wholesale: the
``n_nodes`` tidsets become one ``(n_nodes, ceil(n_records / 64))``
``uint64`` array, a class labelling becomes one packed ``uint64`` row,
and a full class-support pass is three C-level array operations —
``bitwise_and`` broadcast, ``bitwise_count`` (the POPCNT instruction on
x86), and a row sum.

Two kernels are exposed:

* :meth:`BitMatrix.class_supports` — supports of every node under one
  boolean record indicator (one permutation);
* :meth:`BitMatrix.class_supports_batch` — a ``(B, n_nodes)`` support
  matrix for ``B`` indicators in one shot, the kernel behind the
  batched permutation pass. The broadcast intermediate is
  ``B × n_nodes × n_words`` bytes of popcounts, so the batch is
  processed in row blocks bounded by ``block_bytes`` (see
  ``docs/performance.md``).

Both kernels count *exact integers* — results are bit-identical to the
bigint ``popcount`` path for any input.
"""

from __future__ import annotations

import ctypes
from typing import List, Sequence

import numpy as np

from . import _native

__all__ = [
    "BitMatrix",
    "pack_indicator",
    "pack_indicators",
    "words_per_row",
]

#: Default memory budget for one batch block's broadcast intermediates.
DEFAULT_BLOCK_BYTES = 64 * 1024 * 1024


def words_per_row(n_records: int) -> int:
    """Number of uint64 words needed to hold ``n_records`` bits."""
    if n_records < 0:
        raise ValueError("n_records must be non-negative")
    return (n_records + 63) // 64


def pack_indicator(indicator: np.ndarray) -> np.ndarray:
    """Pack one boolean record indicator into a ``(n_words,)`` uint64 row.

    Bit ``i`` of the packed row is set iff ``indicator[i]`` — the same
    little-endian layout :func:`repro.bitset.from_numpy_bool` uses for
    bigints, so packed words and bigint bitsets describe identical sets.
    """
    flags = np.ascontiguousarray(indicator, dtype=bool)
    if flags.ndim != 1:
        raise ValueError("indicator must be one-dimensional")
    return pack_indicators(flags[None, :])[0]


def pack_indicators(indicators: np.ndarray) -> np.ndarray:
    """Pack a ``(B, n_records)`` bool matrix into ``(B, n_words)`` uint64.

    Each row is packed independently (little-endian bit order within a
    word, words in ascending record order); rows are padded with zero
    bits up to the word boundary.
    """
    flags = np.ascontiguousarray(indicators, dtype=bool)
    if flags.ndim != 2:
        raise ValueError("indicators must be two-dimensional")
    n_rows, n_records = flags.shape
    n_words = words_per_row(n_records)
    packed_bytes = np.packbits(flags, axis=1, bitorder="little")
    padded = np.zeros((n_rows, n_words * 8), dtype=np.uint8)
    padded[:, :packed_bytes.shape[1]] = packed_bytes
    return (padded.view(np.dtype("<u8"))
            .astype(np.uint64, copy=False))


class BitMatrix:
    """A dense stack of tidsets as a ``(n_rows, n_words)`` uint64 array.

    Rows usually correspond to pattern-forest nodes; columns are 64-bit
    windows of record ids (record ``i`` lives in bit ``i % 64`` of word
    ``i // 64``, little-endian — the same layout as the bigint bitsets
    in :mod:`repro.bitset`, so conversion is byte-exact both ways).
    """

    __slots__ = ("_words", "n_rows", "n_records", "n_words")

    def __init__(self, words: np.ndarray, n_records: int) -> None:
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if words.ndim != 2:
            raise ValueError("words must be a 2-D uint64 array")
        if words.shape[1] != words_per_row(n_records):
            raise ValueError(
                f"{words.shape[1]} words per row cannot hold exactly "
                f"{n_records} records (need {words_per_row(n_records)})")
        self._words = words
        self.n_rows = words.shape[0]
        self.n_records = n_records
        self.n_words = words.shape[1]

    # ------------------------------------------------------------------
    # converters
    # ------------------------------------------------------------------

    @classmethod
    def from_tidsets(cls, tidsets: Sequence, n_records: int) -> "BitMatrix":
        """Pack tidsets (one per row) into a :class:`BitMatrix`.

        Rows may be :class:`~repro.tidvector.TidVector` values (the
        native representation — adopted by stacking their words, no
        conversion) or bigint bitsets (plugin/oracle interop). Every
        tidset must only reference records in ``[0, n_records)``.
        """
        from .tidvector import TidVector, stack_tidvectors

        tidsets = list(tidsets)
        if all(isinstance(t, TidVector) for t in tidsets):
            return cls(stack_tidvectors(tidsets, n_records), n_records)
        n_words = words_per_row(n_records)
        stride = n_words * 8
        buffer = bytearray(len(tidsets) * stride)
        for row, tidset in enumerate(tidsets):
            tidset = int(tidset)
            if tidset < 0:
                raise ValueError(f"tidset of row {row} is negative")
            if tidset >> n_records:
                # The same range rule as bitset.to_uint64_words: any
                # bit at or above n_records is out of range, including
                # the tail of a partially-filled last word.
                raise ValueError(
                    f"tidset of row {row} references records >= "
                    f"{n_records}")
            buffer[row * stride:(row + 1) * stride] = \
                tidset.to_bytes(stride, "little")
        words = (np.frombuffer(buffer, dtype=np.dtype("<u8"))
                 .reshape(len(tidsets), n_words)
                 .astype(np.uint64, copy=False))
        return cls(words, n_records)

    @classmethod
    def from_tidvectors(cls, vectors: Sequence,
                        n_records: int) -> "BitMatrix":
        """Adopt packed :class:`~repro.tidvector.TidVector` rows.

        One contiguous stack of already-packed words — the zero-bigint
        path from mining output to the counting kernels.
        """
        from .tidvector import stack_tidvectors

        return cls(stack_tidvectors(list(vectors), n_records), n_records)

    @classmethod
    def from_bool_matrix(cls, indicators: np.ndarray) -> "BitMatrix":
        """Pack a ``(B, n_records)`` bool matrix into a matrix of rows."""
        flags = np.ascontiguousarray(indicators, dtype=bool)
        if flags.ndim != 2:
            raise ValueError("indicators must be two-dimensional")
        return cls(pack_indicators(flags), flags.shape[1])

    def tidset(self, row: int) -> int:
        """The bigint bitset of one row (inverse of :meth:`from_tidsets`)."""
        from . import bitset as bs

        return bs.from_uint64_words(self._words[row])

    def tidvector(self, row: int):
        """One row as a packed :class:`~repro.tidvector.TidVector` view."""
        from .tidvector import TidVector

        return TidVector(self._words[row], self.n_records)

    def to_tidsets(self) -> List[int]:
        """All rows back as bigint bitsets."""
        return [self.tidset(row) for row in range(self.n_rows)]

    @property
    def words(self) -> np.ndarray:
        """The packed ``(n_rows, n_words)`` uint64 array (read it, don't
        write it — rows are shared with the forest that built them)."""
        return self._words

    @property
    def nbytes(self) -> int:
        """Memory footprint of the packed array."""
        return self._words.nbytes

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------

    def row_popcounts(self) -> np.ndarray:
        """Cardinality of every row (int64) — ``supp(X)`` per node."""
        return np.bitwise_count(self._words).sum(axis=1, dtype=np.int64)

    def class_supports(self, indicator: np.ndarray) -> np.ndarray:
        """``|row ∩ indicator|`` for every row, as an int64 array.

        ``indicator`` is a boolean array of length ``n_records``; the
        result is exactly ``popcount(tidset & class_bits)`` per row.
        """
        flags = np.asarray(indicator, dtype=bool)
        if flags.shape != (self.n_records,):
            raise ValueError(
                f"indicator must have shape ({self.n_records},), got "
                f"{flags.shape}")
        packed = pack_indicator(flags)
        kernel = _native.load_kernel()
        if kernel is not None and self.n_rows:
            return self._run_native(packed[None, :], kernel)[0]
        return (np.bitwise_count(self._words & packed[None, :])
                .sum(axis=1, dtype=np.int64))

    def class_supports_batch(self, indicators: np.ndarray,
                             block_bytes: int = DEFAULT_BLOCK_BYTES,
                             ) -> np.ndarray:
        """``(B, n_rows)`` support matrix for ``B`` indicators at once.

        Row ``b`` equals ``class_supports(indicators[b])``. The heavy
        lifting goes through the fused C kernel when the host can
        compile it (:mod:`repro._native`; one pass over the packed
        forest per labelling, no intermediates); otherwise the numpy
        path processes the batch in blocks whose
        ``block × n_rows × n_words`` broadcast intermediates stay
        within ``block_bytes``. Both paths count exact integers and
        return bit-identical matrices.
        """
        flags = np.asarray(indicators, dtype=bool)
        if flags.ndim != 2 or flags.shape[1] != self.n_records:
            raise ValueError(
                f"indicators must have shape (B, {self.n_records}), "
                f"got {flags.shape}")
        n_batch = flags.shape[0]
        packed = pack_indicators(flags)
        kernel = _native.load_kernel()
        if kernel is not None and self.n_rows and n_batch:
            return self._run_native(packed, kernel)
        out = np.empty((n_batch, self.n_rows), dtype=np.int64)
        block = self.batch_block_rows(block_bytes)
        for start in range(0, n_batch, block):
            chunk = packed[start:start + block]
            meet = self._words[None, :, :] & chunk[:, None, :]
            out[start:start + chunk.shape[0]] = \
                np.bitwise_count(meet).sum(axis=2, dtype=np.int64)
        return out

    def _run_native(self, packed: np.ndarray, kernel) -> np.ndarray:
        """Dispatch ``(B, n_words)`` packed labellings to the C kernel."""
        packed = np.ascontiguousarray(packed, dtype=np.uint64)
        n_batch = packed.shape[0]
        out = np.empty((n_batch, self.n_rows), dtype=np.int64)
        kernel(self._words.ctypes.data_as(
                   ctypes.POINTER(ctypes.c_uint64)),
               packed.ctypes.data_as(
                   ctypes.POINTER(ctypes.c_uint64)),
               out.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)),
               self.n_rows, self.n_words, n_batch)
        return out

    @property
    def batch_row_bytes(self) -> int:
        """Intermediate bytes one batch labelling costs the numpy
        kernel: ``n_rows × n_words`` uint64 for the AND plus the same
        shape again in uint8 popcounts (9 bytes per word-cell). The
        single source of truth for every block-sizing computation
        (the fused C path allocates none of this, so sizing against
        it is conservative there)."""
        return max(1, self.n_rows * self.n_words * 9)

    def batch_block_rows(self, block_bytes: int = DEFAULT_BLOCK_BYTES,
                         ) -> int:
        """Batch rows whose broadcast intermediates fit ``block_bytes``
        (at least one row is always processed)."""
        return max(1, int(block_bytes) // self.batch_row_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BitMatrix(n_rows={self.n_rows}, "
                f"n_records={self.n_records}, n_words={self.n_words})")
