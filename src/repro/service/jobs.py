"""Async job orchestration: submit → queue → run → poll → result.

Jobs are the service's unit of work: ``mine`` (one pipeline run on a
registered dataset), ``holdout`` (the same, restricted to holdout
corrections — the split-data workflow gets its own kind so clients
cannot accidentally run an exploratory correction on the full data),
and ``experiment`` (the Section 5 replicated planted-rule loop).

A job's life is ``queued → running → done | failed``, with queued jobs
cancellable. Submission validates everything it can — kind, dataset
registration, correction/miner spellings (through the registries, so
unknown names carry their did-you-mean suggestions), parameter names —
so bad requests fail at submit time with a 4xx, not minutes later in a
worker.

Execution reuses the repro parallel subsystem: each job runs one
:class:`~repro.core.pipeline.Pipeline` whose permutation pass and
correction fan-out go through :mod:`repro.parallel`'s executor with
the manager's configured ``n_jobs``/``backend``. Because that
machinery is bit-identical at any worker count, service results are
byte-for-byte the results the CLI produces — which is also why worker
configuration is *excluded* from the artifact-cache key: a ``mine``
job is served from the :class:`~repro.service.store.ArtifactStore`
whenever the same (dataset fingerprint, miner, correction, policy,
params) tuple was computed before, and the cached payload is the same
JSON the fresh run would have produced.

Determinism notes: job ids are sequential (``job-00000001``), not
random; jobs default ``seed=0`` so two submissions of the same request
are the same computation; payloads carry no timestamps (wall-clock
metadata lives on the :class:`Job`, outside the cached payload).
"""

from __future__ import annotations

import csv
import difflib
import io
import math
import queue
import sqlite3
import threading
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..corrections.base import FDR, CorrectionResult
from ..corrections.registry import resolve_correction
from ..data.dataset import Dataset
from ..errors import JobNotFound, ReproError, ServiceError
from ..evaluation.export import _BASE_HEADER, rule_rows
from ..mining.diffsets import DEFAULT_POLICY, POLICY_CHOICES
from ..mining.registry import resolve_miner
from ..parallel import get_executor, is_transient
from .journal import DEFAULT_STALE_AFTER, JobJournal
from .registry import DatasetRegistry
from .store import ArtifactStore

__all__ = ["JOB_KINDS", "JOB_STATES", "Job", "JobManager",
           "bh_q_values"]

JOB_KINDS = ("mine", "holdout", "experiment")
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Mining-job parameters and their defaults. ``dataset`` is required;
#: everything else falls back to the CLI's defaults (``seed`` pinned
#: to 0 rather than None: a service request must be repeatable).
_MINE_DEFAULTS = {
    "correction": "bh",
    "algorithm": "closed",
    "alpha": 0.05,
    "min_conf": 0.0,
    "max_length": None,
    "scorer": "fisher",
    "seed": 0,
    "n_permutations": 1000,
    "policy": DEFAULT_POLICY,
    "holdout_split": "random",
    "redundancy_delta": None,
}

_EXPERIMENT_DEFAULTS = {
    "records": 2000,
    "attributes": 40,
    "rules": 1,
    "coverage": 400,
    "confidence": 0.65,
    "min_sup": 150,
    "algorithm": "closed",
    "alpha": 0.05,
    "replicates": 10,
    "n_permutations": 150,
    "methods": ("No correction", "BC", "BH"),
    "seed": 0,
}

#: Synthetic experiments have no registered dataset; their cache rows
#: use these sentinels for the fingerprint/policy key slots.
_EXPERIMENT_FINGERPRINT = "synthetic:experiment"
_EXPERIMENT_POLICY = "experiment"


def bh_q_values(p_values: Sequence[float],
                n_tests: Optional[int] = None) -> Dict[float, float]:
    """Benjamini–Hochberg q-value for each distinct p-value.

    ``q_i = min_{j >= i} p_(j) * n / j`` over the ascending-sorted
    p-values (the standard right-to-left running minimum, capped at
    1). Returned as a p → q mapping: every rule with the same p-value
    has the same q-value, so callers look their rules up by p.
    """
    ordered = sorted(float(p) for p in p_values)
    if not ordered:
        return {}
    n = max(int(n_tests or 0), len(ordered))
    mapping: Dict[float, float] = {}
    best = 1.0
    for index in range(len(ordered) - 1, -1, -1):
        best = min(best, ordered[index] * n / (index + 1))
        mapping[ordered[index]] = best
    return mapping


@dataclass
class Job:
    """One submitted unit of work and its lifecycle record.

    ``params`` is the *normalized* request (defaults filled in,
    spellings canonicalised) — the exact dict that keys the artifact
    cache. ``payload`` is the JSON-ready result once ``state`` is
    ``"done"``; ``cached`` records whether it came from the artifact
    store instead of a fresh run.
    """

    job_id: str
    kind: str
    dataset: Optional[str]
    params: Dict[str, object]
    state: str = "queued"
    cached: bool = False
    error: Optional[str] = None
    payload: Optional[Dict[str, object]] = field(default=None,
                                                 repr=False)
    created_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    timeout: Optional[float] = None
    heartbeat_at: Optional[float] = None
    traceback: Optional[str] = field(default=None, repr=False)

    def info(self) -> Dict[str, object]:
        """JSON-ready status document (poll endpoint body)."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "dataset": self.dataset,
            "params": dict(self.params),
            "state": self.state,
            "cached": self.cached,
            "error": self.error,
            "attempts": self.attempts,
            "timeout": self.timeout,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    def snapshot(self) -> Dict[str, object]:
        """The full durable record (what the job journal persists):
        :meth:`info` plus the payload, traceback and heartbeat."""
        record = self.info()
        record["payload"] = (None if self.payload is None
                             else dict(self.payload))
        record["traceback"] = self.traceback
        record["heartbeat_at"] = self.heartbeat_at
        return record


def _reject_unknown(given, allowed, kind: str) -> None:
    unknown = sorted(set(given) - set(allowed))
    if not unknown:
        return
    message = (f"unknown parameter(s) {unknown} for a {kind!r} job; "
               f"allowed: {sorted(allowed)}")
    close = difflib.get_close_matches(unknown[0], sorted(allowed),
                                      n=1, cutoff=0.6)
    if close:
        message += f" — did you mean {close[0]!r}?"
    raise ServiceError(message)


def _canonical_correction(value: str) -> str:
    """CLI convention: canonical name, unless the requested spelling
    binds context overrides (``"HD_BC"`` → structured split)."""
    resolved = resolve_correction(str(value))
    return str(value) if resolved.overrides else resolved.name


class JobManager:
    """Thread-pooled job queue over a registry and an artifact store.

    Parameters
    ----------
    registry / store:
        The shared dataset registry and artifact cache.
    workers:
        Worker threads consuming the queue. ``0`` means no background
        workers — tests then drain explicitly with
        :meth:`process_pending` (and :meth:`reap` for time-based
        transitions) for single-threaded determinism.
    n_jobs / backend:
        The :mod:`repro.parallel` configuration each job's pipeline
        runs with. Deliberately *not* part of the cache key: results
        are bit-identical at any worker count.
    journal:
        Optional :class:`~repro.service.journal.JobJournal`. When
        present, every state transition is journaled before it is
        acted on, and construction **replays** the journal: finished
        jobs come back servable, queued jobs re-enter the queue, and
        orphaned running jobs (their process died mid-run) are
        retried — or failed once they have burned ``max_retries`` —
        exactly as ``docs/resilience.md`` specifies.
    max_retries:
        How many times a job may be *re-enqueued* after a transient
        failure or an orphaning crash (0 = never; the first attempt
        is not a retry). Deterministic jobs make retries safe: a
        re-run computes byte-identical results.
    job_timeout:
        Default per-job wall-clock bound in seconds (overridable per
        submit). Enforcement is cooperative — a worker thread cannot
        be killed — so an overrunning job is marked ``failed`` by the
        reaper and its eventual result is discarded.
    job_ttl:
        Age in seconds after which *finished* jobs are pruned from
        memory by the reaper (the journal keeps their history).
    stale_after / assume_exclusive:
        Orphan detection at replay time. A ``running`` row is an
        orphan when its heartbeat is older than ``stale_after``
        seconds — or unconditionally under ``assume_exclusive``
        (the default: one service process owns the journal, so any
        ``running`` row at boot is from a dead process). Pass
        ``assume_exclusive=False`` when several processes share one
        journal.
    """

    def __init__(self, registry: DatasetRegistry, store: ArtifactStore,
                 workers: int = 1, n_jobs: int = 1,
                 backend: str = "serial",
                 journal: Optional[JobJournal] = None,
                 max_retries: int = 2,
                 job_timeout: Optional[float] = None,
                 job_ttl: Optional[float] = None,
                 heartbeat_interval: float = 5.0,
                 stale_after: float = DEFAULT_STALE_AFTER,
                 assume_exclusive: bool = True) -> None:
        executor = get_executor(backend, n_jobs)  # validates both
        if max_retries < 0:
            raise ServiceError(
                f"max_retries must be >= 0, got {max_retries}")
        if job_timeout is not None and not job_timeout > 0:
            raise ServiceError(
                f"job_timeout must be positive, got {job_timeout!r}")
        if job_ttl is not None and not job_ttl > 0:
            raise ServiceError(
                f"job_ttl must be positive, got {job_ttl!r}")
        self.registry = registry
        self.store = store
        self.n_jobs = executor.n_jobs
        self.backend = executor.backend
        self.max_retries = int(max_retries)
        self.job_timeout = job_timeout
        self.job_ttl = job_ttl
        self.heartbeat_interval = float(heartbeat_interval)
        self.stale_after = float(stale_after)
        self._journal = journal
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._counter = 0
        self._executed = 0
        self._cache_hits = 0
        self._retried = 0
        self._timed_out = 0
        self._expired = 0
        self._journal_errors = 0
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._workers: List[threading.Thread] = []
        self._stop = threading.Event()
        self._reaper: Optional[threading.Thread] = None
        if journal is not None:
            self._recover(assume_exclusive=assume_exclusive)
        for index in range(max(0, int(workers))):
            thread = threading.Thread(target=self._worker_loop,
                                      name=f"repro-job-worker-{index}",
                                      daemon=True)
            thread.start()
            self._workers.append(thread)
        if self._workers and (journal is not None
                              or job_timeout is not None
                              or job_ttl is not None):
            self._reaper = threading.Thread(
                target=self._reaper_loop, name="repro-job-reaper",
                daemon=True)
            self._reaper.start()

    def __reduce__(self):
        # Process-local by design: live worker threads, a queue and a
        # lock cannot cross a process boundary. Parallelism inside a
        # job goes through the pipeline's n_jobs/backend instead.
        raise TypeError(
            "JobManager is process-local and cannot be pickled")

    # ------------------------------------------------------------------
    # submission & validation
    # ------------------------------------------------------------------

    def submit(self, kind: str, params: Dict[str, object],
               timeout: Optional[float] = None) -> Job:
        """Validate and enqueue one job; returns it in state queued.

        ``timeout`` overrides the manager's default per-job deadline
        for this job only. It is deliberately a *submission* argument,
        not a job parameter: worker configuration never enters
        ``params``, which key the artifact cache.
        """
        if timeout is not None and not timeout > 0:
            raise ServiceError(
                f"job timeout must be positive, got {timeout!r}")
        if kind not in JOB_KINDS:
            message = (f"unknown job kind {kind!r}; "
                       f"valid kinds: {sorted(JOB_KINDS)}")
            close = difflib.get_close_matches(str(kind), JOB_KINDS,
                                              n=1, cutoff=0.6)
            if close:
                message += f" — did you mean {close[0]!r}?"
            raise ServiceError(message)
        params = dict(params or {})
        if kind == "experiment":
            dataset_name = None
            normalized = self._validate_experiment(params)
        else:
            dataset_name, normalized = self._validate_mine(kind, params)
        with self._lock:
            self._counter += 1
            job = Job(job_id=f"job-{self._counter:08d}", kind=kind,
                      dataset=dataset_name, params=normalized,
                      created_at=time.time(),
                      timeout=(timeout if timeout is not None
                               else self.job_timeout))
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
        # Journal *before* enqueueing: a crash in between replays the
        # job back into the queue instead of losing it.
        self._journal_record(job, "submitted")
        self._queue.put(job.job_id)
        return job

    def _validate_mine(self, kind: str, params: Dict[str, object],
                       ) -> Tuple[str, Dict[str, object]]:
        allowed = set(_MINE_DEFAULTS) | {"dataset", "min_sup"}
        _reject_unknown(params, allowed, kind)
        if "dataset" not in params:
            raise ServiceError(
                f"a {kind!r} job needs a 'dataset' parameter "
                f"(registered name or fingerprint)")
        if "min_sup" not in params:
            raise ServiceError(f"a {kind!r} job needs 'min_sup'")
        entry = self.registry.get(str(params["dataset"]))
        normalized = dict(_MINE_DEFAULTS)
        for name in _MINE_DEFAULTS:
            if name in params and params[name] is not None:
                normalized[name] = params[name]
        min_sup = int(params["min_sup"])
        if min_sup < 1:
            raise ServiceError(f"min_sup must be >= 1, got {min_sup}")
        if min_sup > entry.dataset.n_records:
            raise ServiceError(
                f"min_sup={min_sup} exceeds dataset "
                f"{entry.name!r} size {entry.dataset.n_records}")
        normalized["min_sup"] = min_sup
        resolved = resolve_correction(str(normalized["correction"]))
        if kind == "holdout" and not resolved.spec.needs_holdout:
            raise ServiceError(
                f"a 'holdout' job needs a holdout correction "
                f"(e.g. 'HD_BC', 'RH_BH'); {normalized['correction']!r} "
                f"resolves to {resolved.name!r}, which scores the "
                f"full dataset — submit it as a 'mine' job")
        normalized["correction"] = _canonical_correction(
            str(normalized["correction"]))
        normalized["algorithm"] = resolve_miner(
            str(normalized["algorithm"])).name
        if normalized["policy"] not in POLICY_CHOICES:
            raise ServiceError(
                f"unknown forest policy {normalized['policy']!r}; "
                f"pick from {sorted(POLICY_CHOICES)}")
        if normalized["holdout_split"] not in ("random", "structured"):
            raise ServiceError(
                f"holdout_split must be 'random' or 'structured', "
                f"got {normalized['holdout_split']!r}")
        if normalized["scorer"] not in ("fisher", "fisher-midp",
                                        "chi2"):
            raise ServiceError(
                f"unknown scorer {normalized['scorer']!r}")
        normalized["alpha"] = float(normalized["alpha"])
        normalized["min_conf"] = float(normalized["min_conf"])
        normalized["seed"] = int(normalized["seed"])
        normalized["n_permutations"] = int(normalized["n_permutations"])
        if normalized["max_length"] is not None:
            normalized["max_length"] = int(normalized["max_length"])
        if normalized["redundancy_delta"] is not None:
            normalized["redundancy_delta"] = float(
                normalized["redundancy_delta"])
        # The dataset is keyed by *content*, not by registered name.
        normalized["dataset"] = entry.name
        return entry.name, normalized

    def _validate_experiment(self, params: Dict[str, object],
                             ) -> Dict[str, object]:
        _reject_unknown(params, _EXPERIMENT_DEFAULTS, "experiment")
        normalized = dict(_EXPERIMENT_DEFAULTS)
        for name in _EXPERIMENT_DEFAULTS:
            if name in params and params[name] is not None:
                normalized[name] = params[name]
        methods = normalized["methods"]
        if isinstance(methods, str):
            methods = tuple(part.strip() for part in methods.split(",")
                            if part.strip())
        normalized["methods"] = [
            _canonical_correction(str(m)) for m in methods]
        if not normalized["methods"]:
            raise ServiceError(
                "an 'experiment' job needs at least one method")
        normalized["algorithm"] = resolve_miner(
            str(normalized["algorithm"])).name
        for name in ("records", "attributes", "rules", "coverage",
                     "min_sup", "replicates", "n_permutations", "seed"):
            normalized[name] = int(normalized[name])
        for name in ("confidence", "alpha"):
            normalized[name] = float(normalized[name])
        return normalized

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """The job for ``job_id`` (did-you-mean on unknown ids)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                return job
            known = list(self._order)
        message = f"no job {job_id!r}; known jobs: {known[-10:]}"
        close = difflib.get_close_matches(str(job_id), known,
                                          n=1, cutoff=0.6)
        if close:
            message += f" — did you mean {close[0]!r}?"
        raise JobNotFound(message)

    def jobs(self) -> List[Job]:
        """All jobs in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def result(self, job_id: str) -> Dict[str, object]:
        """The payload of a done job; ServiceError otherwise."""
        job = self.get(job_id)
        with self._lock:
            if job.state != "done":
                raise ServiceError(
                    f"job {job_id} is {job.state!r}, not 'done'"
                    + (f": {job.error}" if job.error else ""))
            assert job.payload is not None
            return job.payload

    def result_csv(self, job_id: str) -> str:
        """The significant rules of a done mine/holdout job as CSV.

        Rendered from the payload's round-tripped
        :class:`~repro.corrections.base.CorrectionResult` with the
        same writer the CLI's ``--csv-out`` uses — cached or fresh,
        the bytes match an uncached run exactly.
        """
        job = self.get(job_id)
        payload = self.result(job_id)
        if job.kind == "experiment":
            raise ServiceError(
                f"job {job_id} is an experiment; only mine/holdout "
                f"results render as rule CSVs")
        entry = self.registry.get(str(payload["dataset"]["name"]))
        result = CorrectionResult.from_json(payload["result"])
        return render_rules_csv(result.significant, entry.dataset)

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job (running/finished jobs cannot be)."""
        job = self.get(job_id)
        with self._lock:
            if job.state != "queued":
                raise ServiceError(
                    f"job {job_id} is {job.state!r}; only queued jobs "
                    f"can be cancelled")
            job.state = "cancelled"
            job.finished_at = time.time()
        self._journal_record(job, "cancelled")
        return job

    def stats(self) -> Dict[str, object]:
        """Execution counters plus a per-state census."""
        with self._lock:
            states = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] += 1
            return {"executed": self._executed,
                    "cache_hits": self._cache_hits,
                    "jobs": dict(states),
                    "workers": len(self._workers),
                    "n_jobs": self.n_jobs,
                    "backend": self.backend,
                    "retried": self._retried,
                    "timed_out": self._timed_out,
                    "expired": self._expired,
                    "max_retries": self.max_retries,
                    "job_timeout": self.job_timeout,
                    "job_ttl": self.job_ttl,
                    "journal": (None if self._journal is None
                                else self._journal.path),
                    "journal_errors": self._journal_errors}

    def journal_stats(self) -> Optional[Dict[str, object]]:
        """The journal's health component, or ``None`` without one."""
        if self._journal is None:
            return None
        stats = self._journal.stats()
        stats["errors"] = self._journal_errors
        return stats

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def process_pending(self) -> int:
        """Drain the queue on the calling thread; returns jobs run.

        The synchronous path for ``workers=0`` deployments and for
        tests that want deterministic single-threaded scheduling.
        """
        processed = 0
        while True:
            try:
                job_id = self._queue.get_nowait()
            except queue.Empty:
                return processed
            if job_id is None:
                continue
            if self._process(job_id):
                processed += 1

    def wait(self, job_id: str, timeout: float = 60.0) -> Job:
        """Block until ``job_id`` leaves the queued/running states."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.get(job_id)
            with self._lock:
                state = job.state
            if state not in ("queued", "running"):
                return job
            if not self._workers:
                self.process_pending()
                continue
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {state!r} after "
                    f"{timeout:g}s")
            time.sleep(0.02)

    def close(self) -> None:
        """Drain gracefully: stop workers after in-flight jobs finish.

        The ``None`` sentinels queue *behind* any already-queued job
        ids, so every job submitted before ``close`` still runs;
        workers exit when they reach a sentinel. The reaper stops
        last, after a final sweep, so shutdown-time timeouts are
        still journaled. Queued jobs that no worker reached stay
        ``queued`` in the journal and are re-enqueued on next boot.
        """
        self._stop.set()
        for _ in self._workers:
            self._queue.put(None)
        for thread in self._workers:
            thread.join(timeout=30.0)
        self._workers = []
        if self._reaper is not None:
            self._reaper.join(timeout=5.0)
            self._reaper = None
        self.reap()

    # ------------------------------------------------------------------
    # journal plumbing & crash recovery
    # ------------------------------------------------------------------

    def _journal_record(self, job: Job, event: str, detail: str = "",
                        strict: bool = True) -> None:
        """Persist one transition. ``strict`` propagates journal
        failures (submit-time: the client must know durability
        failed); non-strict callers — already inside a failure path —
        count the error and move on so one sick journal cannot wedge
        a worker thread."""
        if self._journal is None:
            return
        with self._lock:
            snapshot = job.snapshot()
        try:
            self._journal.record(snapshot, event, detail)
        except sqlite3.OperationalError:
            with self._lock:
                self._journal_errors += 1
            if strict:
                raise

    def _recover(self, assume_exclusive: bool) -> None:
        """Replay the journal into memory (constructor-time only).

        Finished jobs come back servable; ``queued`` jobs re-enter
        the queue; ``running`` rows are orphans of a dead process —
        detected by heartbeat staleness (or assumed, under an
        exclusive journal) — and are re-enqueued until their attempt
        budget (``max_retries`` + the first attempt) is spent, then
        failed loudly.
        """
        assert self._journal is not None
        now = time.time()
        budget = self.max_retries + 1
        for record in self._journal.load():
            job = Job(
                job_id=str(record["job_id"]),
                kind=str(record["kind"]),
                dataset=record["dataset"],
                params=dict(record["params"]),
                state=str(record["state"]),
                cached=bool(record["cached"]),
                error=record["error"],
                payload=record["payload"],
                created_at=float(record["created_at"]),
                started_at=record["started_at"],
                finished_at=record["finished_at"],
                attempts=int(record["attempts"] or 0),
                timeout=record["timeout"],
                heartbeat_at=record["heartbeat_at"],
                traceback=record["traceback"])
            with self._lock:
                self._jobs[job.job_id] = job
                self._order.append(job.job_id)
                tail = job.job_id.rsplit("-", 1)[-1]
                if tail.isdigit():
                    self._counter = max(self._counter, int(tail))
            if job.state == "queued":
                self._journal_record(job, "recovered",
                                     detail="re-enqueued at boot",
                                     strict=False)
                self._queue.put(job.job_id)
            elif job.state == "running":
                beat = job.heartbeat_at or job.started_at or 0.0
                stale = (now - float(beat)) >= self.stale_after
                if not (assume_exclusive or stale):
                    # Another live process owns this job; leave it.
                    continue
                if job.attempts < budget:
                    with self._lock:
                        job.state = "queued"
                        job.started_at = None
                        job.heartbeat_at = None
                    self._journal_record(
                        job, "recovered",
                        detail=f"orphaned running job re-enqueued "
                               f"(attempt {job.attempts} of {budget})",
                        strict=False)
                    self._queue.put(job.job_id)
                else:
                    with self._lock:
                        job.state = "failed"
                        job.error = (
                            f"orphaned: the owning process died "
                            f"mid-run and the job already used its "
                            f"{budget} attempts")
                        job.finished_at = now
                    self._journal_record(job, "failed",
                                         detail="orphan budget spent",
                                         strict=False)

    # ------------------------------------------------------------------
    # time-based transitions (heartbeats, timeouts, TTL)
    # ------------------------------------------------------------------

    def reap(self) -> Dict[str, int]:
        """One sweep of the time-based lifecycle rules.

        Heartbeats every running job (proving to a future replay that
        this process was alive), fails running jobs past their
        deadline (cooperatively: the computing thread keeps going but
        its result will be discarded), and prunes finished jobs older
        than the TTL from memory. Called periodically by the reaper
        thread, or explicitly in ``workers=0`` deployments/tests.
        """
        now = time.time()
        timed_out: List[Job] = []
        expired: List[Job] = []
        running: List[str] = []
        with self._lock:
            for job in self._jobs.values():
                if job.state == "running":
                    deadline = job.timeout
                    if (deadline is not None
                            and job.started_at is not None
                            and now - job.started_at >= deadline):
                        job.state = "failed"
                        job.error = (f"timed out after {deadline:g}s "
                                     f"(cooperative enforcement; the "
                                     f"worker's result will be "
                                     f"discarded)")
                        job.finished_at = now
                        self._timed_out += 1
                        timed_out.append(job)
                    else:
                        job.heartbeat_at = now
                        running.append(job.job_id)
                elif (self.job_ttl is not None
                        and job.state in ("done", "failed",
                                          "cancelled")
                        and job.finished_at is not None
                        and now - job.finished_at >= self.job_ttl):
                    expired.append(job)
            for job in expired:
                del self._jobs[job.job_id]
                self._order.remove(job.job_id)
                self._expired += 1
        for job in timed_out:
            self._journal_record(job, "timeout", strict=False)
        for job in expired:
            self._journal_record(job, "expired",
                                 detail="pruned from memory by TTL",
                                 strict=False)
        if running and self._journal is not None:
            try:
                self._journal.heartbeat(running, at=now)
            except sqlite3.OperationalError:
                with self._lock:
                    self._journal_errors += 1
        return {"timed_out": len(timed_out), "expired": len(expired),
                "heartbeats": len(running)}

    def _reaper_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            try:
                self.reap()
            except Exception:
                # The reaper must survive anything — a dead reaper
                # silently disables timeouts and heartbeats. The
                # failure is recorded, not swallowed.
                with self._lock:
                    self._journal_errors += 1

    # ------------------------------------------------------------------
    # worker execution
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            try:
                self._process(job_id)
            except Exception:
                # Loop-boundary catch-all: nothing a single job does —
                # including a journal that stopped accepting writes —
                # may take the worker thread down with it. The
                # traceback lands on the job record; the worker moves
                # to the next job.
                details = traceback_module.format_exc()
                with self._lock:
                    job = self._jobs.get(job_id)
                    if job is not None and job.state in ("queued",
                                                         "running"):
                        job.state = "failed"
                        job.error = ("internal worker error "
                                     "(see traceback)")
                        job.traceback = details
                        job.finished_at = time.time()
                if job is not None:
                    self._journal_record(job, "failed",
                                         detail="worker-loop catch-all",
                                         strict=False)

    def _process(self, job_id: str) -> bool:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state != "queued":
                # cancelled (or already claimed) while queued
                return False
            job.state = "running"
            job.started_at = time.time()
            job.heartbeat_at = job.started_at
            job.attempts += 1
        self._journal_record(job, "started",
                             detail=f"attempt {job.attempts}",
                             strict=False)
        try:
            payload, cached = self._execute(job)
        except ReproError as exc:
            return self._finish_failed(job, exc, str(exc),
                                       traceback_module.format_exc())
        except sqlite3.OperationalError as exc:
            # Artifact-store writes exhausted their busy retry — a
            # classified (and, when it is lock contention, transient)
            # failure, eligible for re-enqueue.
            return self._finish_failed(job, exc,
                                       f"storage error: {exc}",
                                       traceback_module.format_exc())
        except Exception as exc:
            # Defensive catch-all (the satellite contract): a bug in a
            # correction plugin or a numpy edge must fail the *job*,
            # with its traceback recorded, not kill the worker.
            return self._finish_failed(
                job, exc, f"unexpected {type(exc).__name__}: {exc}",
                traceback_module.format_exc())
        discarded = False
        with self._lock:
            if job.state != "running":
                # Timed out or cancelled while computing: the
                # authoritative state is already final — drop the
                # late result on the floor.
                discarded = True
            else:
                job.state = "done"
                job.payload = payload
                job.cached = cached
                job.finished_at = time.time()
                if cached:
                    self._cache_hits += 1
                else:
                    self._executed += 1
        if discarded:
            self._journal_record(job, "discarded",
                                 detail="result arrived after the "
                                        "job left the running state",
                                 strict=False)
        else:
            self._journal_record(job, "done", strict=False)
        return True

    def _finish_failed(self, job: Job, exc: BaseException, error: str,
                       details: str) -> bool:
        """Fail or re-enqueue ``job`` after an execution error.

        Transient failures (:func:`repro.parallel.is_transient` — a
        killed worker that exhausted the executor's own retries, lock
        contention, a deadline) are re-enqueued while the job has
        attempt budget left; everything else fails now. Either way
        the last traceback stays on the record.
        """
        transient = is_transient(exc)
        with self._lock:
            if job.state != "running":
                # Already timed out/cancelled: keep the earlier state.
                return True
            if transient and job.attempts <= self.max_retries:
                job.state = "queued"
                job.started_at = None
                job.heartbeat_at = None
                job.traceback = details
                requeue = True
            else:
                job.state = "failed"
                job.error = error
                job.traceback = details
                job.finished_at = time.time()
                requeue = False
            if requeue:
                self._retried += 1
        if requeue:
            self._journal_record(
                job, "retried",
                detail=f"transient failure, attempt {job.attempts} "
                       f"of {self.max_retries + 1}: {error}",
                strict=False)
            self._queue.put(job.job_id)
        else:
            self._journal_record(job, "failed", detail=error,
                                 strict=False)
        return True

    def _execute(self, job: Job) -> Tuple[Dict[str, object], bool]:
        if job.kind == "experiment":
            return self._execute_experiment(job)
        return self._execute_mine(job)

    def _cache_slots(self, job: Job):
        """The five artifact-key slots for a job (fingerprint, miner,
        correction, policy, params)."""
        params = dict(job.params)
        if job.kind == "experiment":
            miner = str(params.pop("algorithm"))
            correction = ",".join(params.pop("methods"))
            return (_EXPERIMENT_FINGERPRINT, miner, correction,
                    _EXPERIMENT_POLICY, params)
        entry = self.registry.get(str(params.pop("dataset")))
        miner = str(params.pop("algorithm"))
        correction = str(params.pop("correction"))
        policy = str(params.pop("policy"))
        return (entry.fingerprint, miner, correction, policy, params)

    def _execute_mine(self, job: Job) -> Tuple[Dict[str, object], bool]:
        from ..core.pipeline import Pipeline

        fingerprint, miner, correction, policy, key_params = \
            self._cache_slots(job)
        cached = self.store.get(fingerprint, miner, correction, policy,
                                key_params)
        if cached is not None:
            return dict(cached.payload), True
        entry = self.registry.get(str(job.params["dataset"]))
        params = job.params
        pipeline = Pipeline(
            min_sup=int(params["min_sup"]), corrections=(correction,),
            algorithm=miner, alpha=float(params["alpha"]),
            min_conf=float(params["min_conf"]),
            max_length=params["max_length"],
            scorer=str(params["scorer"]), seed=int(params["seed"]),
            n_permutations=int(params["n_permutations"]),
            policy=policy,
            holdout_split=str(params["holdout_split"]),
            redundancy_delta=params["redundancy_delta"],
            n_jobs=self.n_jobs, backend=self.backend)
        outcome = pipeline.run(entry.dataset)
        result = outcome.results[correction]
        q_map: Optional[Dict[float, float]] = None
        if result.control == FDR and outcome.ruleset is not None:
            q_map = bh_q_values(outcome.ruleset.p_values(),
                                result.n_tests)
        rows = _payload_rows(result, entry.dataset, q_map)
        payload = {
            "kind": job.kind,
            "dataset": {"name": entry.name,
                        "fingerprint": fingerprint},
            "miner": miner,
            "correction": correction,
            "policy": policy,
            "params": dict(key_params),
            "result": result.to_json(),
            "n_patterns_mined": outcome.state.n_patterns_mined,
            "n_rules_tested": result.n_tests,
            "n_significant": result.n_significant,
            "rules": rows,
        }
        self.store.put(fingerprint, miner, correction, policy,
                       key_params, payload, rows)
        return payload, False

    def _execute_experiment(self, job: Job,
                            ) -> Tuple[Dict[str, object], bool]:
        from ..data.synthetic import GeneratorConfig
        from ..evaluation.runner import ExperimentRunner

        fingerprint, miner, correction, policy, key_params = \
            self._cache_slots(job)
        cached = self.store.get(fingerprint, miner, correction, policy,
                                key_params)
        if cached is not None:
            return dict(cached.payload), True
        params = job.params
        config = GeneratorConfig(
            n_records=int(params["records"]),
            n_attributes=int(params["attributes"]),
            n_rules=int(params["rules"]),
            min_coverage=int(params["coverage"]),
            max_coverage=int(params["coverage"]),
            min_confidence=float(params["confidence"]),
            max_confidence=float(params["confidence"]))
        runner = ExperimentRunner(
            methods=tuple(params["methods"]),
            alpha=float(params["alpha"]),
            n_permutations=int(params["n_permutations"]),
            algorithm=miner, n_jobs=self.n_jobs, backend=self.backend)
        outcome = runner.run(config, min_sup=int(params["min_sup"]),
                             n_replicates=int(params["replicates"]),
                             seed=int(params["seed"]))
        header = ["method", "n_datasets", "power", "fwer", "fdr",
                  "avg_false_positives", "avg_significant"]
        table = {}
        for method in params["methods"]:
            row = outcome.aggregates[method].row()
            table[method] = {name: value
                             for name, value in zip(header, row)}
        payload = {
            "kind": "experiment",
            "params": dict(key_params),
            "methods": list(params["methods"]),
            "algorithm": miner,
            "mean_tested": {key: float(value) for key, value
                            in sorted(outcome.mean_tested.items())},
            "table": table,
        }
        self.store.put(fingerprint, miner, correction, policy,
                       key_params, payload)
        return payload, False


def _payload_rows(result: CorrectionResult, dataset: Dataset,
                  q_map: Optional[Dict[float, float]],
                  ) -> List[Dict[str, object]]:
    """JSON-ready rendered rows of the significant rules, p-ordered.

    These feed both the result payload and the artifact store's
    indexed ``artifact_rules``/``rule_items`` columns.
    """
    n = dataset.n_records
    rows: List[Dict[str, object]] = []
    for rule in sorted(result.significant, key=lambda r: r.p_value):
        n_c = dataset.class_support(rule.class_index)
        lift = rule.lift(n, n_c)
        q_value = q_map.get(float(rule.p_value)) if q_map else None
        rows.append({
            "rule": dataset.catalog.describe_pattern(rule.items),
            "class": dataset.class_names[rule.class_index],
            "length": rule.length,
            "coverage": rule.coverage,
            "support": rule.support,
            "confidence": float(rule.confidence),
            "p_value": float(rule.p_value),
            "q_value": (float(q_value)
                        if q_value is not None else None),
            "lift": float(lift) if math.isfinite(lift) else None,
            "items": sorted(str(dataset.catalog.item(i))
                            for i in rule.items),
        })
    return rows


def render_rules_csv(rules, dataset: Dataset) -> str:
    """Rules as CSV text, byte-identical to
    :func:`repro.evaluation.export.rules_to_csv`'s file output (same
    header, same row builder, same dialect)."""
    buffer = io.StringIO(newline="")
    writer = csv.writer(buffer)
    writer.writerow(_BASE_HEADER)
    writer.writerows(rule_rows(rules, dataset))
    return buffer.getvalue()
