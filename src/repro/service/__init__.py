"""Mining-as-a-service: job orchestration, dataset registry, cache.

The long-running front of the library (the ROADMAP's "heavy traffic
from millions of users" pillar): a dataset registry keyed by content
fingerprints (:meth:`repro.data.dataset.Dataset.fingerprint`), an
async job orchestrator with submit/poll/result/cancel endpoints for
``mine``/``holdout``/``experiment`` jobs, and a memoized artifact
store (SQLite, WAL mode) keyed by ``(dataset fingerprint, miner,
correction, policy, params)`` so a repeated significance query is
served from storage — byte-identical to the uncached
:meth:`~repro.core.pipeline.Pipeline.run` — instead of re-mined.

The HTTP surface is one dependency-free ASGI application
(:func:`create_app`): it runs under ``uvicorn`` in production, under
the stdlib threaded bridge (:func:`repro.service.server.serve`) when
uvicorn is not installed, and is wrapped by FastAPI when that is
importable (same routes, same payloads — FastAPI supplies its
middleware/ecosystem, not the routing). Start it with
``python -m repro serve``; see ``docs/service.md``.
"""

from .app import ServiceConfig, ServiceCore, create_app
from .jobs import Job, JobManager, JOB_KINDS, JOB_STATES
from .registry import DatasetRegistry, RegisteredDataset
from .store import ArtifactStore, CachedArtifact

__all__ = [
    "ArtifactStore",
    "CachedArtifact",
    "DatasetRegistry",
    "Job",
    "JobManager",
    "JOB_KINDS",
    "JOB_STATES",
    "RegisteredDataset",
    "ServiceConfig",
    "ServiceCore",
    "create_app",
]
