"""Crash-durable job journal: every job state transition on disk.

The :class:`~repro.service.jobs.JobManager` holds its queue in memory
for speed, but memory dies with the process. The journal is the
durable shadow: one WAL-mode SQLite database (same conventions as the
:class:`~repro.service.store.ArtifactStore` — ``busy_timeout``,
bounded busy retry, lock-serialized connection) holding

* a ``jobs`` snapshot table — the latest full record of every job,
  upserted on each transition, and
* a ``job_events`` append-only log — one row per transition
  (``submitted``, ``started``, ``heartbeat``, ``done``, ``failed``,
  ``retried``, ``recovered``, ``expired`` …), which is what makes a
  post-crash forensic timeline possible.

On boot the manager replays the snapshot table
(:meth:`JobJournal.load`): finished jobs come back servable (their
payloads ride along, so a client can still fetch a result computed
before the crash), ``queued`` jobs re-enter the queue, and ``running``
jobs — necessarily orphans, their worker thread died with the old
process — are retried or failed per the manager's retry policy,
depending on how many attempts the journal says they already burned.

Heartbeats make orphan detection work *across* processes too: a
running job's ``heartbeat_at`` is refreshed by the owning manager's
ticker; a replaying manager treats a ``running`` row as orphaned only
once the heartbeat is stale, so two service processes pointed at the
same journal do not steal each other's live work.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from typing import Dict, List, Optional

from ..jsonio import canonical_dumps, json_safe
from ..testing import faults

try:
    import json
except ImportError:  # pragma: no cover - stdlib
    raise

from .store import run_with_busy_retry

__all__ = ["JOURNAL_SCHEMA_VERSION", "JobJournal"]

JOURNAL_SCHEMA_VERSION = 1

#: A ``running`` row whose heartbeat is older than this is an orphan:
#: its owning process is gone (or wedged past usefulness). Managers
#: heartbeat every few seconds, so 30s of silence is conclusive.
DEFAULT_STALE_AFTER = 30.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS journal_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    job_id TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    dataset TEXT,
    params_json TEXT NOT NULL,
    state TEXT NOT NULL,
    cached INTEGER NOT NULL DEFAULT 0,
    error TEXT,
    traceback TEXT,
    payload_json TEXT,
    attempts INTEGER NOT NULL DEFAULT 0,
    timeout REAL,
    created_at REAL NOT NULL,
    started_at REAL,
    finished_at REAL,
    heartbeat_at REAL
);
CREATE INDEX IF NOT EXISTS idx_jobs_state ON jobs(state);
CREATE TABLE IF NOT EXISTS job_events (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id TEXT NOT NULL,
    event TEXT NOT NULL,
    state TEXT NOT NULL,
    detail TEXT NOT NULL DEFAULT '',
    at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_job_events_job ON job_events(job_id);
"""


class JobJournal:
    """WAL-mode SQLite journal of job state (see module docstring).

    Parameters
    ----------
    path:
        Database file, or ``":memory:"`` for a process-lifetime
        journal (tests; obviously not crash-durable).
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(self.path,
                                     check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=5000")
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT OR IGNORE INTO journal_meta (key, value) "
                "VALUES (?, ?)",
                ("journal_schema_version", str(JOURNAL_SCHEMA_VERSION)))
            self._conn.commit()

    def __reduce__(self):
        # Same contract as ArtifactStore: an open connection and its
        # lock are process-local; a worker process must open its own
        # journal on the same path.
        raise TypeError(
            "JobJournal is process-local and cannot be pickled; "
            "open a new JobJournal(path) in the worker instead")

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def record(self, snapshot: Dict[str, object], event: str,
               detail: str = "") -> None:
        """Upsert a job snapshot and append the transition event.

        ``snapshot`` is :meth:`repro.service.jobs.Job.snapshot` — the
        full current record. One transaction covers both writes, so a
        crash never separates the snapshot from its event. Wrapped in
        the store's bounded ``SQLITE_BUSY`` retry.
        """
        payload = snapshot.get("payload")
        payload_text = None if payload is None else canonical_dumps(
            json_safe(payload, strict=True))
        params_text = canonical_dumps(
            json_safe(dict(snapshot["params"]), strict=True))
        now = time.time()

        def write() -> None:
            faults.sleep_if("sqlite-slow-write")
            with self._lock:
                try:
                    self._write_locked(snapshot, params_text,
                                       payload_text, event, detail,
                                       now)
                except sqlite3.OperationalError:
                    # A retry must re-run the whole transaction.
                    try:
                        self._conn.rollback()
                    except sqlite3.Error:  # pragma: no cover
                        pass
                    raise

        run_with_busy_retry(write, what=f"journal {event}")

    def _write_locked(self, snapshot: Dict[str, object],
                      params_text: str, payload_text: Optional[str],
                      event: str, detail: str, now: float) -> None:
        self._conn.execute(
            "INSERT INTO jobs (job_id, kind, dataset, "
            "params_json, state, cached, error, traceback, "
            "payload_json, attempts, timeout, created_at, "
            "started_at, finished_at, heartbeat_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?) "
            "ON CONFLICT(job_id) DO UPDATE SET "
            "state = excluded.state, "
            "cached = excluded.cached, "
            "error = excluded.error, "
            "traceback = excluded.traceback, "
            "payload_json = excluded.payload_json, "
            "attempts = excluded.attempts, "
            "timeout = excluded.timeout, "
            "started_at = excluded.started_at, "
            "finished_at = excluded.finished_at, "
            "heartbeat_at = excluded.heartbeat_at",
            (snapshot["job_id"], snapshot["kind"],
             snapshot["dataset"], params_text,
             snapshot["state"],
             1 if snapshot.get("cached") else 0,
             snapshot.get("error"), snapshot.get("traceback"),
             payload_text, int(snapshot.get("attempts") or 0),
             snapshot.get("timeout"), snapshot["created_at"],
             snapshot.get("started_at"),
             snapshot.get("finished_at"),
             snapshot.get("heartbeat_at")))
        self._conn.execute(
            "INSERT INTO job_events (job_id, event, state, "
            "detail, at) VALUES (?, ?, ?, ?, ?)",
            (snapshot["job_id"], event, snapshot["state"],
             detail, now))
        self._conn.commit()

    def heartbeat(self, job_ids: List[str],
                  at: Optional[float] = None) -> None:
        """Refresh ``heartbeat_at`` for live running jobs.

        Deliberately *not* an event per beat — heartbeats are a
        liveness signal, not history, and an append per tick would
        grow the log without bound.
        """
        if not job_ids:
            return
        moment = time.time() if at is None else at

        def write() -> None:
            with self._lock:
                try:
                    self._conn.executemany(
                        "UPDATE jobs SET heartbeat_at = ? "
                        "WHERE job_id = ? AND state = 'running'",
                        [(moment, job_id) for job_id in job_ids])
                    self._conn.commit()
                except sqlite3.OperationalError:
                    try:
                        self._conn.rollback()
                    except sqlite3.Error:  # pragma: no cover
                        pass
                    raise

        run_with_busy_retry(write, what="journal heartbeat")

    # ------------------------------------------------------------------
    # read path (boot replay, forensics, health)
    # ------------------------------------------------------------------

    def load(self) -> List[Dict[str, object]]:
        """Every job snapshot, in job-id (= submission) order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs ORDER BY job_id").fetchall()
        snapshots = []
        for row in rows:
            record = dict(row)
            record["params"] = json.loads(record.pop("params_json"))
            payload_text = record.pop("payload_json")
            record["payload"] = (None if payload_text is None
                                 else json.loads(payload_text))
            record["cached"] = bool(record["cached"])
            snapshots.append(record)
        return snapshots

    def events(self, job_id: str) -> List[Dict[str, object]]:
        """The append-only transition log of one job, oldest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT seq, event, state, detail, at FROM job_events "
                "WHERE job_id = ? ORDER BY seq", (job_id,)).fetchall()
        return [dict(row) for row in rows]

    def stats(self) -> Dict[str, object]:
        """JSON-ready health snapshot (the ``/health`` journal
        component)."""
        with self._lock:
            states = dict(self._conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state",
            ).fetchall())
            events = self._conn.execute(
                "SELECT COUNT(*) FROM job_events").fetchone()[0]
            journal_mode = self._conn.execute(
                "PRAGMA journal_mode").fetchone()[0]
        return {"path": self.path,
                "journal_mode": journal_mode,
                "journal_schema_version": JOURNAL_SCHEMA_VERSION,
                "jobs": {str(state): int(count)
                         for state, count in sorted(states.items())},
                "events": int(events)}
