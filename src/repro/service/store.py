"""Memoized artifact store: fingerprint-keyed mining results in SQLite.

One artifact is the full outcome of a mine/holdout job — the
serialized :class:`~repro.corrections.base.CorrectionResult` (and
pattern-forest metadata) as stable JSON — keyed by the SHA-256 of the
canonical ``(dataset fingerprint, miner, correction, policy, params)``
tuple. A repeated request with the same key is served from storage
without re-mining, and because the JSON round-trip is lossless
(:mod:`repro.jsonio`), the served result re-renders byte-identical to
the uncached :meth:`~repro.core.pipeline.Pipeline.run`.

Alongside the opaque payload, each artifact's significant rules are
unpacked into indexed columns (item, class, support, q-value, lift) so
the read path — "rules containing item X under BH at q < 0.05, top-k
by lift" — is one indexed SQL query, never a payload scan.

Storage is stdlib ``sqlite3`` in WAL mode behind one lock-serialized
connection; :class:`AsyncArtifactStore` wraps it for async callers,
through ``aiosqlite``-free ``asyncio.to_thread`` dispatch so the event
loop never blocks on a query. Worker counts and backends are *not*
part of the key: the parallel subsystem guarantees bit-identical
results at any worker count, so results cached at ``--jobs 1`` serve
requests mined at ``--jobs 8`` and vice versa.
"""

from __future__ import annotations

import hashlib
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..errors import ServiceError
from ..jsonio import canonical_dumps, json_safe
from ..parallel.resilience import RetryPolicy, is_transient
from ..testing import faults

try:  # json module is stdlib; decouple the import for monkeypatching
    import json
except ImportError:  # pragma: no cover - stdlib
    raise

__all__ = ["ArtifactStore", "AsyncArtifactStore", "CachedArtifact",
           "run_with_busy_retry"]

STORE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS artifacts (
    key TEXT PRIMARY KEY,
    dataset_fingerprint TEXT NOT NULL,
    miner TEXT NOT NULL,
    correction TEXT NOT NULL,
    policy TEXT NOT NULL,
    params_json TEXT NOT NULL,
    schema_version INTEGER NOT NULL,
    created_at REAL NOT NULL,
    payload_json TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_artifacts_fingerprint
    ON artifacts(dataset_fingerprint);
CREATE TABLE IF NOT EXISTS artifact_rules (
    artifact_key TEXT NOT NULL,
    rule_index INTEGER NOT NULL,
    rule TEXT NOT NULL,
    class TEXT NOT NULL,
    length INTEGER NOT NULL,
    coverage INTEGER NOT NULL,
    support INTEGER NOT NULL,
    confidence REAL NOT NULL,
    p_value REAL NOT NULL,
    q_value REAL,
    lift REAL,
    PRIMARY KEY (artifact_key, rule_index)
);
CREATE INDEX IF NOT EXISTS idx_rules_class ON artifact_rules(class);
CREATE INDEX IF NOT EXISTS idx_rules_support
    ON artifact_rules(support);
CREATE INDEX IF NOT EXISTS idx_rules_qvalue
    ON artifact_rules(q_value);
CREATE TABLE IF NOT EXISTS rule_items (
    artifact_key TEXT NOT NULL,
    rule_index INTEGER NOT NULL,
    item TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_rule_items_item ON rule_items(item);
"""

#: order_by spellings → (SQL column, direction). Every ordering ends
#: with deterministic tiebreaks (p ascending, rule text, row index) so
#: response bytes never depend on SQLite visit order.
_ORDERINGS = {
    "lift": "r.lift DESC",
    "confidence": "r.confidence DESC",
    "support": "r.support DESC",
    "coverage": "r.coverage DESC",
    "p_value": "r.p_value ASC",
    "q_value": "r.q_value ASC",
}

_RULE_COLUMNS = ("rule", "class", "length", "coverage", "support",
                 "confidence", "p_value", "q_value", "lift")

#: Bounded ``SQLITE_BUSY`` retry on the deterministic capped schedule
#: 10/20/40/80 ms — a second line of defence on top of SQLite's own
#: ``busy_timeout`` (which blocks *inside* one statement; this retries
#: the whole write when the timeout still expired).
_BUSY_RETRY = RetryPolicy(max_attempts=5, base_delay=0.01,
                          max_delay=0.08)


def run_with_busy_retry(operation, what: str = "sqlite write",
                        policy: RetryPolicy = _BUSY_RETRY):
    """Run a write closure, retrying bounded times on ``SQLITE_BUSY``.

    Lock contention (``database is locked`` / ``... is busy``) is the
    one :class:`sqlite3.OperationalError` that retrying fixes: another
    process holds the WAL write lock and will release it. Anything
    else — corrupt schema, missing table, disk full — re-raises
    unchanged on the first attempt, and even contention re-raises
    once the schedule is exhausted, so a genuinely stuck database
    fails loudly instead of hanging.

    The ``sqlite-busy`` chaos point fires *inside* the loop: an armed
    plan with a fire cap exercises the retry path and then recovers;
    an uncapped plan proves exhaustion stays a classified, transient
    error (see ``tests/chaos``).
    """
    last_error: Optional[sqlite3.OperationalError] = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            if faults.should_fire("sqlite-busy"):
                raise sqlite3.OperationalError(
                    f"database is locked (injected sqlite-busy fault "
                    f"during {what})")
            return operation()
        except sqlite3.OperationalError as exc:
            if not is_transient(exc) or attempt >= policy.max_attempts:
                raise
            last_error = exc
            time.sleep(policy.delay(attempt))
    raise last_error  # pragma: no cover - loop always returns/raises


@dataclass
class CachedArtifact:
    """One stored artifact: its key, identity columns and payload."""

    key: str
    dataset_fingerprint: str
    miner: str
    correction: str
    policy: str
    params: Dict[str, object]
    created_at: float
    payload: Dict[str, object]


def _require_str(value: object, what: str) -> str:
    if not isinstance(value, str) or not value:
        raise ServiceError(f"{what} must be a non-empty string, "
                           f"got {value!r}")
    return value


class ArtifactStore:
    """SQLite-backed artifact cache (see module docstring).

    Parameters
    ----------
    path:
        Database file path, or ``":memory:"`` for an in-process store
        (tests). WAL journaling is requested at open; in-memory
        databases silently keep their native journal mode.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(self.path,
                                     check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            # Block up to 5s inside SQLite on a contended write lock
            # before surfacing SQLITE_BUSY (which the bounded retry in
            # run_with_busy_retry then handles).
            self._conn.execute("PRAGMA busy_timeout=5000")
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("store_schema_version", str(STORE_SCHEMA_VERSION)))
            self._conn.commit()

    def __reduce__(self):
        # Process-local by design: an open sqlite connection and its
        # serializing lock cannot cross a process boundary. Workers
        # must open their own store on the same path.
        raise TypeError(
            "ArtifactStore is process-local and cannot be pickled; "
            "open a new ArtifactStore(path) in the worker instead")

    def close(self) -> None:
        """Close the underlying connection."""
        with self._lock:
            self._conn.close()

    # ------------------------------------------------------------------
    # keying
    # ------------------------------------------------------------------

    @staticmethod
    def canonical_params(params: Mapping[str, object]) -> str:
        """Deterministic JSON text of a params mapping."""
        return canonical_dumps(json_safe(dict(params), strict=True))

    @classmethod
    def make_key(cls, dataset_fingerprint: str, miner: str,
                 correction: str, policy: str,
                 params: Mapping[str, object]) -> str:
        """SHA-256 over the canonical identity tuple.

        ``n_jobs``/``backend`` must not appear in ``params``: results
        are bit-identical at any worker count, so parallelism is an
        execution detail, not an identity.
        """
        identity = canonical_dumps([
            _require_str(dataset_fingerprint, "dataset fingerprint"),
            _require_str(miner, "miner"),
            _require_str(correction, "correction"),
            _require_str(policy, "policy"),
            json.loads(cls.canonical_params(params)),
        ])
        return hashlib.sha256(identity.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def put(self, dataset_fingerprint: str, miner: str, correction: str,
            policy: str, params: Mapping[str, object],
            payload: Mapping[str, object],
            rules: Sequence[Mapping[str, object]] = ()) -> str:
        """Persist one artifact; returns its key.

        Idempotent under races: two workers finishing the same job
        concurrently both succeed, the first insert wins, and — because
        the pipeline is deterministic — both computed the same payload,
        so which one landed is unobservable. ``rules`` rows feed the
        indexed read path; each needs the :data:`_RULE_COLUMNS` fields
        plus an ``"items"`` list of item display strings.
        """
        key = self.make_key(dataset_fingerprint, miner, correction,
                            policy, params)
        payload_text = canonical_dumps(json_safe(dict(payload),
                                                 strict=True))

        def write() -> str:
            faults.sleep_if("sqlite-slow-write")
            with self._lock:
                try:
                    cursor = self._conn.execute(
                        "INSERT OR IGNORE INTO artifacts (key, "
                        "dataset_fingerprint, miner, correction, "
                        "policy, params_json, schema_version, "
                        "created_at, payload_json)"
                        " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        (key, dataset_fingerprint, miner, correction,
                         policy, self.canonical_params(params),
                         STORE_SCHEMA_VERSION, time.time(),
                         payload_text))
                    if cursor.rowcount:
                        for index, rule in enumerate(rules):
                            self._conn.execute(
                                "INSERT INTO artifact_rules "
                                "(artifact_key, rule_index, rule, "
                                "class, length, coverage, support, "
                                "confidence, p_value, q_value, lift) "
                                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, "
                                "?, ?)",
                                (key, index)
                                + tuple(rule.get(column)
                                        for column in _RULE_COLUMNS))
                            for item in rule.get("items", ()):
                                self._conn.execute(
                                    "INSERT INTO rule_items "
                                    "(artifact_key, rule_index, item) "
                                    "VALUES (?, ?, ?)",
                                    (key, index, str(item)))
                    self._conn.commit()
                except sqlite3.OperationalError:
                    # Leave no open transaction behind: a retry must
                    # re-run the whole write (INSERT OR IGNORE keeps
                    # it idempotent), not resume half of one.
                    try:
                        self._conn.rollback()
                    except sqlite3.Error:  # pragma: no cover
                        pass
                    raise
            return key

        return run_with_busy_retry(write, what="artifact put")

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def get(self, dataset_fingerprint: str, miner: str, correction: str,
            policy: str, params: Mapping[str, object],
            ) -> Optional[CachedArtifact]:
        """The cached artifact for an identity tuple, or ``None``."""
        return self.get_by_key(self.make_key(
            dataset_fingerprint, miner, correction, policy, params))

    def get_by_key(self, key: str) -> Optional[CachedArtifact]:
        """The cached artifact under ``key``, or ``None``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM artifacts WHERE key = ?",
                (key,)).fetchone()
        if row is None:
            return None
        if row["schema_version"] != STORE_SCHEMA_VERSION:
            raise ServiceError(
                f"artifact {key} was written with store schema "
                f"{row['schema_version']}; this library reads "
                f"{STORE_SCHEMA_VERSION}")
        return CachedArtifact(
            key=row["key"],
            dataset_fingerprint=row["dataset_fingerprint"],
            miner=row["miner"],
            correction=row["correction"],
            policy=row["policy"],
            params=json.loads(row["params_json"]),
            created_at=row["created_at"],
            payload=json.loads(row["payload_json"]),
        )

    def query_rules(self, item: Optional[str] = None,
                    class_name: Optional[str] = None,
                    correction: Optional[str] = None,
                    dataset_fingerprint: Optional[str] = None,
                    min_support: Optional[int] = None,
                    max_q: Optional[float] = None,
                    max_p: Optional[float] = None,
                    order_by: str = "lift",
                    top_k: int = 20) -> List[Dict[str, object]]:
        """Indexed query over every cached artifact's significant rules.

        The canonical read-path question — "rules containing item X
        significant under BH at q < 0.05, top-k by lift" — is
        ``query_rules(item=..., correction="BH", max_q=0.05)``.
        Ordering is fully deterministic: the requested measure plus
        fixed (p, rule text, row) tiebreaks.
        """
        if order_by not in _ORDERINGS:
            raise ServiceError(
                f"unknown order_by {order_by!r}; pick from "
                f"{sorted(_ORDERINGS)}")
        if not isinstance(top_k, int) or top_k < 1:
            raise ServiceError(
                f"top_k must be a positive integer, got {top_k!r}")
        conditions = []
        arguments: List[object] = []
        if item is not None:
            conditions.append(
                "EXISTS (SELECT 1 FROM rule_items i WHERE "
                "i.artifact_key = r.artifact_key AND "
                "i.rule_index = r.rule_index AND i.item = ?)")
            arguments.append(str(item))
        if class_name is not None:
            conditions.append("r.class = ?")
            arguments.append(str(class_name))
        if correction is not None:
            conditions.append("a.correction = ?")
            arguments.append(str(correction))
        if dataset_fingerprint is not None:
            conditions.append("a.dataset_fingerprint = ?")
            arguments.append(str(dataset_fingerprint))
        if min_support is not None:
            conditions.append("r.support >= ?")
            arguments.append(int(min_support))
        if max_q is not None:
            conditions.append("r.q_value IS NOT NULL AND r.q_value <= ?")
            arguments.append(float(max_q))
        if max_p is not None:
            conditions.append("r.p_value <= ?")
            arguments.append(float(max_p))
        where = ("WHERE " + " AND ".join(conditions)) if conditions \
            else ""
        sql = (
            "SELECT r.rule, r.class, r.length, r.coverage, r.support, "
            "r.confidence, r.p_value, r.q_value, r.lift, "
            "a.correction, a.miner, a.dataset_fingerprint, "
            "a.key AS artifact_key "
            "FROM artifact_rules r "
            "JOIN artifacts a ON a.key = r.artifact_key "
            f"{where} "
            f"ORDER BY {_ORDERINGS[order_by]}, r.p_value ASC, "
            "r.rule ASC, r.artifact_key ASC, r.rule_index ASC "
            "LIMIT ?")
        arguments.append(top_k)
        with self._lock:
            rows = self._conn.execute(sql, arguments).fetchall()
        return [dict(row) for row in rows]

    def stats(self) -> Dict[str, object]:
        """Artifact/rule counts and journal mode, for /v1/service."""
        with self._lock:
            artifacts = self._conn.execute(
                "SELECT COUNT(*) FROM artifacts").fetchone()[0]
            rules = self._conn.execute(
                "SELECT COUNT(*) FROM artifact_rules").fetchone()[0]
            journal_mode = self._conn.execute(
                "PRAGMA journal_mode").fetchone()[0]
        return {"artifacts": artifacts, "rules": rules,
                "journal_mode": journal_mode, "path": self.path,
                "store_schema_version": STORE_SCHEMA_VERSION}


class AsyncArtifactStore:
    """Async facade over :class:`ArtifactStore`.

    Dispatches every call through :func:`asyncio.to_thread` so an
    async endpoint never blocks its event loop on SQLite I/O. (When
    ``aiosqlite`` is installed a deployment can point it at the same
    WAL database file for fully-async access; the schema and canonical
    payload text are identical either way.)
    """

    def __init__(self, store: ArtifactStore) -> None:
        self.store = store

    async def get(self, *args, **kwargs):
        import asyncio

        return await asyncio.to_thread(self.store.get, *args, **kwargs)

    async def put(self, *args, **kwargs):
        import asyncio

        return await asyncio.to_thread(self.store.put, *args, **kwargs)

    async def query_rules(self, *args, **kwargs):
        import asyncio

        return await asyncio.to_thread(self.store.query_rules,
                                       *args, **kwargs)

    async def stats(self):
        import asyncio

        return await asyncio.to_thread(self.store.stats)
