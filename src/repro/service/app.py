"""The HTTP surface: one dispatch table, pluggable frameworks.

All routing/validation/response logic lives in :class:`ServiceCore`, a
plain synchronous object with one entry point
(:meth:`ServiceCore.dispatch`). Every transport is a thin shell around
it:

* the **builtin ASGI app** (the canonical one, zero dependencies) —
  runs under uvicorn/hypercorn or the in-repo test client, moving each
  request onto a thread so the event loop never blocks on mining;
* the **FastAPI adapter** — used automatically when FastAPI is
  importable (force the builtin with ``REPRO_SERVICE_FRAMEWORK=
  builtin``): a catch-all route delegating to the same dispatch table,
  so the two frameworks cannot drift apart in behavior;
* the **stdlib threaded HTTP server** (:mod:`repro.service.server`)
  for environments with neither uvicorn nor FastAPI.

Routes (all JSON unless noted)::

    GET    /health                    liveness (auth-exempt)
    GET    /v1/service                store + job-queue statistics
    GET    /v1/datasets               registered datasets
    POST   /v1/datasets               register {name, source[, class_column]}
    GET    /v1/datasets/{name}        one dataset (name or fingerprint)
    DELETE /v1/datasets/{name}        unregister
    POST   /v1/jobs                   submit {kind, params}
    GET    /v1/jobs                   all jobs
    GET    /v1/jobs/{id}              poll one job
    GET    /v1/jobs/{id}/result       result payload (409 until done)
    GET    /v1/jobs/{id}/result.csv   significant rules as text/csv
    DELETE /v1/jobs/{id}              cancel (queued jobs only)
    GET    /v1/rules                  indexed query over cached rules

Authentication is a deliberate stub: when
:attr:`ServiceConfig.token` is set, every route except ``/health``
requires ``Authorization: Bearer <token>``; when unset the service is
open (development mode). Errors use one envelope everywhere:
``{"error": {"type": "<ReproError subclass>", "message": "..."}}``
with 404 for unknown jobs/datasets, 400 for bad requests, 409 for
results polled before completion.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs

from ..errors import (
    DatasetNotRegistered,
    JobNotFound,
    ReproError,
    ServiceError,
)
from .jobs import JOB_KINDS, JobManager, _canonical_correction
from .journal import JobJournal
from .registry import DatasetRegistry
from .store import ArtifactStore

__all__ = ["ServiceConfig", "ServiceCore", "create_app",
           "builtin_asgi_app"]

_JSON = "application/json"
_CSV = "text/csv"


@dataclass
class ServiceConfig:
    """Deployment knobs for one service instance.

    ``journal_path`` controls crash durability: ``None`` (the
    default) derives ``<db_path>.jobs`` next to a file-backed
    artifact store and disables the journal for in-memory stores;
    ``""`` disables it explicitly; any other string is used verbatim.
    ``max_retries``/``job_timeout``/``job_ttl`` feed the
    :class:`~repro.service.jobs.JobManager` resilience policy (see
    ``docs/resilience.md``).

    ``datasets`` (``(name, source)`` pairs, same sources as
    ``POST /v1/datasets``) are registered *before* the job manager
    starts — journal-replayed jobs can run the moment the workers
    exist, so datasets registered only after construction would race
    boot recovery.
    """

    db_path: str = ":memory:"
    token: Optional[str] = None
    workers: int = 1
    n_jobs: int = 1
    backend: str = "serial"
    journal_path: Optional[str] = None
    max_retries: int = 2
    job_timeout: Optional[float] = None
    job_ttl: Optional[float] = None
    datasets: Tuple[Tuple[str, str], ...] = ()

    def resolved_journal_path(self) -> Optional[str]:
        """The journal database path, or ``None`` when disabled."""
        if self.journal_path == "":
            return None
        if self.journal_path is not None:
            return self.journal_path
        if self.db_path == ":memory:":
            return None
        return f"{self.db_path}.jobs"


class ServiceCore:
    """Framework-independent request handling.

    :meth:`dispatch` is the single entry point every transport calls;
    each ``_handle_*`` returns ``(status, payload)`` and raising a
    :class:`~repro.errors.ReproError` anywhere maps onto the error
    envelope. Handlers are synchronous — async shells are expected to
    call :meth:`dispatch` via ``asyncio.to_thread``.
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.registry = DatasetRegistry()
        # Pre-configured datasets must exist before the JobManager:
        # its boot replay re-enqueues journaled jobs immediately, and
        # a recovered job must find its dataset registered.
        for name, source in self.config.datasets:
            from ..cli import _load_input

            self.registry.register(name, _load_input(source, "-1"),
                                   source=source)
        self.store = ArtifactStore(self.config.db_path)
        journal_path = self.config.resolved_journal_path()
        self.journal = (None if journal_path is None
                        else JobJournal(journal_path))
        self.jobs = JobManager(self.registry, self.store,
                               workers=self.config.workers,
                               n_jobs=self.config.n_jobs,
                               backend=self.config.backend,
                               journal=self.journal,
                               max_retries=self.config.max_retries,
                               job_timeout=self.config.job_timeout,
                               job_ttl=self.config.job_ttl)

    def close(self) -> None:
        """Drain workers, then close the journal and the store."""
        self.jobs.close()
        if self.journal is not None:
            self.journal.close()
        self.store.close()

    # ------------------------------------------------------------------
    # transport-facing entry point
    # ------------------------------------------------------------------

    def dispatch(self, method: str, path: str, query: Dict[str, str],
                 headers: Dict[str, str], body: bytes,
                 ) -> Tuple[int, bytes, str]:
        """Route one request; returns (status, body, content-type)."""
        method = method.upper()
        path = path.rstrip("/") or "/"
        try:
            self._authorize(path, headers)
            status, payload = self._route(method, path, query, body)
        except (JobNotFound, DatasetNotRegistered) as exc:
            status, payload = 404, _error_payload(exc)
        except ReproError as exc:
            status = getattr(exc, "status_code", 400)
            payload = _error_payload(exc)
        if isinstance(payload, str):  # pre-rendered (CSV)
            return status, payload.encode("utf-8"), _CSV
        # Sorted keys: response bytes are deterministic, so e2e tests
        # can diff cached vs fresh responses byte for byte.
        text = json.dumps(payload, sort_keys=True)
        return status, text.encode("utf-8"), _JSON

    def _authorize(self, path: str, headers: Dict[str, str]) -> None:
        if self.config.token is None or path == "/health":
            return
        supplied = ""
        for name, value in headers.items():
            if name.lower() == "authorization":
                supplied = value
        if supplied != f"Bearer {self.config.token}":
            raise _Unauthorized("missing or invalid bearer token")

    def _route(self, method: str, path: str, query: Dict[str, str],
               body: bytes) -> Tuple[int, object]:
        parts = [part for part in path.split("/") if part]
        if path == "/health" and method == "GET":
            return 200, self._health()
        if not parts or parts[0] != "v1":
            raise _NotFoundRoute(f"no route {method} {path}")
        parts = parts[1:]
        if parts == ["service"] and method == "GET":
            return 200, {"store": self.store.stats(),
                         "jobs": self.jobs.stats(),
                         "datasets": self.registry.names()}
        if parts == ["datasets"]:
            if method == "GET":
                return 200, {"datasets": [entry.info() for entry
                                          in self.registry.entries()]}
            if method == "POST":
                return self._handle_register(_json_body(body))
        if len(parts) == 2 and parts[0] == "datasets":
            if method == "GET":
                return 200, self.registry.get(parts[1]).info()
            if method == "DELETE":
                self.registry.unregister(parts[1])
                return 200, {"unregistered": parts[1]}
        if parts == ["jobs"]:
            if method == "POST":
                return self._handle_submit(_json_body(body))
            if method == "GET":
                return 200, {"jobs": [job.info()
                                      for job in self.jobs.jobs()]}
        if len(parts) >= 2 and parts[0] == "jobs":
            job_id = parts[1]
            if len(parts) == 2:
                if method == "GET":
                    return 200, self.jobs.get(job_id).info()
                if method == "DELETE":
                    return 200, self.jobs.cancel(job_id).info()
            if len(parts) == 3 and method == "GET":
                if parts[2] == "result":
                    return self._handle_result(job_id)
                if parts[2] == "result.csv":
                    self._require_done(job_id)
                    return 200, self.jobs.result_csv(job_id)
        if parts == ["rules"] and method == "GET":
            return self._handle_rules(query)
        raise _NotFoundRoute(f"no route {method} {path}")

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    def _health(self) -> Dict[str, object]:
        """Liveness plus a per-component report.

        ``status`` stays ``"ok"`` whenever the service can answer at
        all (a missing native kernel or a tripped breaker degrade
        performance, not correctness — the components say so), so
        existing probes keep working; operators read ``components``
        for the real story.
        """
        from .._native import native_status
        from ..parallel import global_breaker

        components: Dict[str, object] = {
            "native_kernel": native_status(),
            "framework": os.environ.get("REPRO_SERVICE_FRAMEWORK",
                                        "auto") or "auto",
            "breaker": global_breaker().state(),
            "journal": self.jobs.journal_stats(),
            "store": {"path": self.store.path},
        }
        return {"status": "ok", "service": "repro",
                "components": components}

    def _handle_register(self, body: Dict[str, object],
                         ) -> Tuple[int, object]:
        name = body.get("name")
        source = body.get("source")
        if not name or not isinstance(name, str):
            raise ServiceError(
                "dataset registration needs a string 'name'")
        if not source or not isinstance(source, str):
            raise ServiceError(
                "dataset registration needs a 'source' (a data file "
                "path or builtin:<name>)")
        from ..cli import _load_input

        dataset = _load_input(source,
                              str(body.get("class_column", "-1")))
        entry = self.registry.register(name, dataset, source=source)
        return 201, entry.info()

    def _handle_submit(self, body: Dict[str, object],
                       ) -> Tuple[int, object]:
        kind = body.get("kind")
        if not isinstance(kind, str):
            raise ServiceError(
                f"job submission needs a string 'kind' "
                f"(one of {sorted(JOB_KINDS)})")
        params = body.get("params", {})
        if not isinstance(params, dict):
            raise ServiceError("'params' must be a JSON object")
        job = self.jobs.submit(kind, params)
        return 201, job.info()

    def _require_done(self, job_id: str) -> None:
        job = self.jobs.get(job_id)
        if job.state in ("queued", "running"):
            raise _Conflict(
                f"job {job_id} is {job.state!r}; poll "
                f"/v1/jobs/{job_id} until it is 'done'")

    def _handle_result(self, job_id: str) -> Tuple[int, object]:
        self._require_done(job_id)
        job = self.jobs.get(job_id)
        payload = self.jobs.result(job_id)  # raises on failed/cancelled
        return 200, {"job_id": job_id, "cached": job.cached,
                     "payload": payload}

    def _handle_rules(self, query: Dict[str, str],
                      ) -> Tuple[int, object]:
        def _float(name):
            return float(query[name]) if name in query else None

        correction = query.get("correction")
        if correction is not None:
            # Any registered spelling works, matching the CLI: "BH"
            # and "bh" hit the same cached rows. Unknown names pass
            # through verbatim (they may match an out-of-tree
            # correction cached by a plugin-loaded worker).
            try:
                correction = _canonical_correction(correction)
            except ReproError:
                pass
        try:
            rows = self.store.query_rules(
                item=query.get("item"),
                class_name=query.get("class"),
                correction=correction,
                dataset_fingerprint=query.get("dataset"),
                min_support=(int(query["min_support"])
                             if "min_support" in query else None),
                max_q=_float("max_q"),
                max_p=_float("max_p"),
                order_by=query.get("order_by", "lift"),
                top_k=int(query.get("top_k", "20")))
        except ValueError as exc:
            raise ServiceError(f"bad query parameter: {exc}") from exc
        return 200, {"rules": rows, "count": len(rows)}


class _NotFoundRoute(JobNotFound):
    """404 for unrouted paths (reuses the 404 mapping)."""


class _Unauthorized(ReproError):
    status_code = 401


class _Conflict(ServiceError):
    status_code = 409


def _error_payload(exc: ReproError) -> Dict[str, object]:
    name = type(exc).__name__
    if name.startswith("_"):  # internal routing helpers
        name = {"_NotFoundRoute": "NotFound",
                "_Unauthorized": "Unauthorized",
                "_Conflict": "Conflict"}.get(name, "ServiceError")
    return {"error": {"type": name, "message": str(exc)}}


def _json_body(body: bytes) -> Dict[str, object]:
    if not body:
        return {}
    try:
        parsed = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(f"request body is not valid JSON: {exc}") \
            from exc
    if not isinstance(parsed, dict):
        raise ServiceError("request body must be a JSON object")
    return parsed


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------

def builtin_asgi_app(core: ServiceCore):
    """The dependency-free ASGI application around ``core``.

    Handles ``http`` and ``lifespan`` scopes; each request's dispatch
    runs in a worker thread (``asyncio.to_thread``) so a long mining
    job never blocks the event loop's accept path.
    """
    import asyncio

    async def app(scope, receive, send):
        if scope["type"] == "lifespan":
            while True:
                message = await receive()
                if message["type"] == "lifespan.startup":
                    await send({"type": "lifespan.startup.complete"})
                elif message["type"] == "lifespan.shutdown":
                    core.close()
                    await send({"type": "lifespan.shutdown.complete"})
                    return
            return
        if scope["type"] != "http":
            raise RuntimeError(
                f"unsupported ASGI scope {scope['type']!r}")
        body = b""
        while True:
            message = await receive()
            if message["type"] == "http.request":
                body += message.get("body", b"")
                if not message.get("more_body"):
                    break
            elif message["type"] == "http.disconnect":
                return
        headers = {key.decode("latin-1"): value.decode("latin-1")
                   for key, value in scope.get("headers", [])}
        query = _flatten_query(
            scope.get("query_string", b"").decode("latin-1"))
        status, payload, content_type = await asyncio.to_thread(
            core.dispatch, scope["method"], scope["path"], query,
            headers, body)
        await send({
            "type": "http.response.start",
            "status": status,
            "headers": [(b"content-type",
                         content_type.encode("latin-1")),
                        (b"content-length",
                         str(len(payload)).encode("latin-1"))],
        })
        await send({"type": "http.response.body", "body": payload})

    app.core = core
    app.framework = "builtin"
    return app


def _flatten_query(query_string: str) -> Dict[str, str]:
    """Last-value-wins flat dict of a query string."""
    return {key: values[-1]
            for key, values in parse_qs(query_string).items()}


def _fastapi_app(core: ServiceCore):
    """FastAPI shell: a catch-all route over the same dispatch table.

    FastAPI supplies the server ecosystem (middleware, docs mounting,
    deployment tooling); the routing and payloads stay byte-identical
    to the builtin app because both call ``core.dispatch``.
    """
    from fastapi import FastAPI, Request, Response

    app = FastAPI(title="repro mining service",
                  docs_url=None, redoc_url=None, openapi_url=None)
    app.core = core
    app.framework = "fastapi"

    @app.on_event("shutdown")
    def _shutdown() -> None:
        core.close()

    @app.api_route("/{rest:path}",
                   methods=["GET", "POST", "DELETE"])
    async def _dispatch(rest: str, request: Request) -> Response:
        import asyncio

        body = await request.body()
        query = {key: value
                 for key, value in request.query_params.items()}
        headers = dict(request.headers)
        status, payload, content_type = await asyncio.to_thread(
            core.dispatch, request.method, "/" + rest, query,
            headers, body)
        return Response(content=payload, status_code=status,
                        media_type=content_type)

    return app


def create_app(config: Optional[ServiceConfig] = None,
               core: Optional[ServiceCore] = None):
    """Build the service application (ASGI callable).

    Uses the FastAPI adapter when FastAPI is importable, else the
    builtin dependency-free app; ``REPRO_SERVICE_FRAMEWORK=builtin``
    forces the builtin regardless. Either way the returned app exposes
    ``.core`` (the :class:`ServiceCore`) and ``.framework``.
    """
    if core is None:
        core = ServiceCore(config)
    if os.environ.get("REPRO_SERVICE_FRAMEWORK", "") != "builtin":
        try:
            return _fastapi_app(core)
        except ImportError:
            pass
    return builtin_asgi_app(core)
