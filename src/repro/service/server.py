"""Running the service: uvicorn when available, stdlib otherwise.

:func:`serve` is what ``python -m repro serve`` calls. It prefers
``uvicorn`` (the production ASGI server the requirements pin), and
falls back to a stdlib ``ThreadingHTTPServer`` that calls the same
:meth:`~repro.service.app.ServiceCore.dispatch` table directly — so a
bare container with no third-party packages still serves the full API
with identical routes and payload bytes, just without uvicorn's
connection management.

Shutdown is graceful on ``SIGTERM`` as well as ``SIGINT``: the
listener stops accepting, in-flight jobs drain (the
:meth:`~repro.service.jobs.JobManager.close` contract), the job
journal records where everything stood, and the process exits 0 — so
an orchestrator's routine ``SIGTERM`` never loses a job. Only a hard
kill (``SIGKILL``) skips the drain, and then the journal replay at
next boot picks up the pieces (see ``docs/resilience.md``).
"""

from __future__ import annotations

import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import urlsplit

from .app import ServiceConfig, ServiceCore, _flatten_query, create_app

__all__ = ["serve", "make_stdlib_server"]


def make_stdlib_server(core: ServiceCore, host: str, port: int,
                       ) -> ThreadingHTTPServer:
    """A stdlib threaded HTTP server over ``core`` (not yet serving)."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def _respond(self, method: str) -> None:
            split = urlsplit(self.path)
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else b""
            status, payload, content_type = core.dispatch(
                method, split.path, _flatten_query(split.query),
                dict(self.headers.items()), body)
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            self._respond("GET")

        def do_POST(self) -> None:  # noqa: N802
            self._respond("POST")

        def do_DELETE(self) -> None:  # noqa: N802
            self._respond("DELETE")

        def log_message(self, format, *args) -> None:  # noqa: A002
            pass  # quiet by default; uvicorn handles access logs

    return ThreadingHTTPServer((host, port), Handler)


def serve(config: Optional[ServiceConfig] = None,
          host: str = "127.0.0.1", port: int = 8765,
          out=None, app=None) -> int:
    """Run the service until interrupted; returns an exit code.

    ``app`` lets callers pass a pre-built application (e.g. with
    datasets already registered — the CLI's ``--dataset`` flags);
    otherwise one is created from ``config``.
    """
    import sys

    out = out or sys.stdout
    if app is None:
        app = create_app(config)
    core = app.core
    try:
        import uvicorn
    except ImportError:
        uvicorn = None
    if uvicorn is not None:
        # uvicorn installs its own SIGTERM/SIGINT handling; the
        # lifespan shutdown event calls core.close(), which drains
        # the job workers before the process exits.
        print(f"serving repro ({app.framework} app) on "
              f"http://{host}:{port} via uvicorn", file=out)
        uvicorn.run(app, host=host, port=port, log_level="warning")
        return 0
    server = make_stdlib_server(core, host, port)
    print(f"serving repro on http://{host}:{port} via the stdlib "
          f"threaded server (install uvicorn for production use)",
          file=out)

    def _drain(signum, frame) -> None:
        # Runs on the main thread; shutdown() must come from another
        # thread or serve_forever deadlocks waiting on itself.
        threading.Thread(target=server.shutdown,
                         name="repro-serve-drain",
                         daemon=True).start()

    installed = False
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, _drain)
        installed = True
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if installed:
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
        server.server_close()
        core.close()
    print("repro service drained cleanly", file=out)
    return 0
