"""In-repo ASGI test client (no httpx required).

Drives any ASGI application — the builtin app or the FastAPI adapter —
through a real ASGI ``scope``/``receive``/``send`` cycle, the same
protocol uvicorn speaks, so end-to-end tests exercise the exact code
path production requests take. Tests prefer ``httpx.ASGITransport``
when httpx is installed (the CI service job does); this client keeps
the suite runnable on a bare stdlib container.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.parse import urlsplit

__all__ = ["Response", "ServiceClient"]


@dataclass
class Response:
    """What one request produced."""

    status_code: int
    headers: Dict[str, str] = field(default_factory=dict)
    content: bytes = b""

    @property
    def text(self) -> str:
        return self.content.decode("utf-8")

    def json(self):
        return json.loads(self.content.decode("utf-8"))


class ServiceClient:
    """Synchronous client over an ASGI callable."""

    def __init__(self, app, token: Optional[str] = None) -> None:
        self.app = app
        self.token = token

    # -- convenience verbs ------------------------------------------------

    def get(self, url: str, headers: Optional[Dict[str, str]] = None,
            ) -> Response:
        return self.request("GET", url, headers=headers)

    def post(self, url: str, json_body=None,
             headers: Optional[Dict[str, str]] = None) -> Response:
        body = (json.dumps(json_body).encode("utf-8")
                if json_body is not None else b"")
        return self.request("POST", url, body=body, headers=headers)

    def delete(self, url: str,
               headers: Optional[Dict[str, str]] = None) -> Response:
        return self.request("DELETE", url, headers=headers)

    # -- the ASGI cycle ---------------------------------------------------

    def request(self, method: str, url: str, body: bytes = b"",
                headers: Optional[Dict[str, str]] = None) -> Response:
        split = urlsplit(url)
        header_map = dict(headers or {})
        if self.token is not None and "Authorization" not in header_map:
            header_map["Authorization"] = f"Bearer {self.token}"
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": method.upper(),
            "scheme": "http",
            "path": split.path or "/",
            "raw_path": (split.path or "/").encode("latin-1"),
            "query_string": split.query.encode("latin-1"),
            "root_path": "",
            "headers": [(key.lower().encode("latin-1"),
                         value.encode("latin-1"))
                        for key, value in header_map.items()],
            "client": ("testclient", 50000),
            "server": ("testserver", 80),
        }
        return asyncio.run(self._run(scope, body))

    async def _run(self, scope, body: bytes) -> Response:
        sent = False
        response = Response(status_code=500)
        chunks = []

        async def receive():
            nonlocal sent
            if sent:
                return {"type": "http.disconnect"}
            sent = True
            return {"type": "http.request", "body": body,
                    "more_body": False}

        async def send(message):
            if message["type"] == "http.response.start":
                response.status_code = message["status"]
                response.headers = {
                    key.decode("latin-1"): value.decode("latin-1")
                    for key, value in message.get("headers", [])}
            elif message["type"] == "http.response.body":
                chunks.append(message.get("body", b""))

        await self.app(scope, receive, send)
        response.content = b"".join(chunks)
        return response
