"""Dataset registry: named datasets with content fingerprints.

The service's datasets are registered once (by name) and addressed by
name or by content fingerprint afterwards. Registration is
content-aware: re-registering the same name with identical content is
an idempotent no-op, while the same name with *different* content is a
conflict — silently replacing a dataset under a live cache would let
stale artifacts serve for new data.

Lookup follows the corrections/miners registry conventions: unknown
names raise :class:`~repro.errors.DatasetNotRegistered` listing the
valid names plus a did-you-mean suggestion for near-miss spellings.
"""

from __future__ import annotations

import difflib
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..data.dataset import Dataset
from ..errors import DatasetNotRegistered, ServiceError

__all__ = ["DatasetRegistry", "RegisteredDataset"]


@dataclass
class RegisteredDataset:
    """One registry entry: the dataset plus its service identity."""

    name: str
    dataset: Dataset = field(repr=False)
    fingerprint: str
    source: str = ""

    def info(self) -> Dict[str, object]:
        """JSON-ready description for the API surface."""
        dataset = self.dataset
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "source": self.source,
            "n_records": dataset.n_records,
            "n_attributes": dataset.n_attributes,
            "n_items": dataset.n_items,
            "n_classes": dataset.n_classes,
            "class_names": list(dataset.class_names),
        }


class DatasetRegistry:
    """Thread-safe name → dataset mapping with fingerprint lookup."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._by_name: Dict[str, RegisteredDataset] = {}

    def __reduce__(self):
        # Process-local by design: the registry is the service's
        # mutable source of truth; a pickled copy would silently
        # diverge from it. Jobs ship datasets, never the registry.
        raise TypeError(
            "DatasetRegistry is process-local and cannot be pickled")

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._by_name

    def register(self, name: str, dataset: Dataset,
                 source: str = "") -> RegisteredDataset:
        """Register ``dataset`` under ``name``; returns the entry.

        Identical re-registration (same content fingerprint) is
        idempotent; the same name with different content raises
        :class:`~repro.errors.ServiceError` — replacing a dataset
        under a live artifact cache would serve stale results.
        """
        if not name or not isinstance(name, str):
            raise ServiceError(
                f"dataset name must be a non-empty string, got {name!r}")
        fingerprint = dataset.fingerprint()
        with self._lock:
            existing = self._by_name.get(name)
            if existing is not None:
                if existing.fingerprint == fingerprint:
                    return existing
                raise ServiceError(
                    f"dataset {name!r} is already registered with "
                    f"different content (fingerprint "
                    f"{existing.fingerprint[:24]}...); unregister it "
                    f"first or register the new content under a new "
                    f"name")
            entry = RegisteredDataset(name=name, dataset=dataset,
                                      fingerprint=fingerprint,
                                      source=source)
            self._by_name[name] = entry
            return entry

    def unregister(self, name: str) -> None:
        """Remove ``name`` from the registry (must exist)."""
        with self._lock:
            if name not in self._by_name:
                raise DatasetNotRegistered(self._unknown_message(name))
            del self._by_name[name]

    def get(self, name: str) -> RegisteredDataset:
        """Entry for ``name``, by registered name or fingerprint.

        Raises :class:`~repro.errors.DatasetNotRegistered` with the
        registries' did-you-mean convention for unknown names.
        """
        with self._lock:
            entry = self._by_name.get(name)
            if entry is not None:
                return entry
            for candidate in self._by_name.values():
                if candidate.fingerprint == name:
                    return candidate
            raise DatasetNotRegistered(self._unknown_message(name))

    def names(self) -> List[str]:
        """Registered names, sorted."""
        with self._lock:
            return sorted(self._by_name)

    def entries(self) -> List[RegisteredDataset]:
        """All entries, sorted by name (deterministic API output)."""
        with self._lock:
            return [self._by_name[name] for name in sorted(self._by_name)]

    def _unknown_message(self, name: str) -> str:
        with self._lock:
            names = sorted(self._by_name)
        message = (f"dataset {name!r} is not registered; "
                   f"registered datasets: {names}")
        close: Optional[List[str]] = difflib.get_close_matches(
            name.lower(), [n.lower() for n in names], n=1, cutoff=0.6)
        if close:
            original = next(n for n in names if n.lower() == close[0])
            message += f" — did you mean {original!r}?"
        return message
