"""STUCCO: Search and Testing for Understandable Consistent Contrasts.

The miner enumerates candidate item conjunctions through the miner
registry (any ``"all-frequent"``-capable algorithm; Apriori's
level-wise enumeration by default, matching the original STUCCO),
counts per-group supports from tidsets, and applies Bay & Pazzani's
two filters — the deviation ("large") test and the depth-layered
chi-square ("significant") test. Both the survivors and the per-level
bookkeeping are returned so benches can show how the layered alpha
spends the error budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..bitmat import BitMatrix
from ..data.dataset import Dataset
from ..errors import CorrectionError, MiningError, StatsError
from ..mining.registry import resolve_miner
from ..stats.chi2 import chi2_sf

__all__ = [
    "ContrastSet",
    "ContrastSetResult",
    "find_contrast_sets",
    "group_contingency",
    "stucco_alpha_levels",
]


@dataclass(frozen=True)
class ContrastSet:
    """One surviving contrast set with its cross-group statistics.

    ``group_supports[g]`` counts group-``g`` records containing the
    set; ``group_proportions[g]`` divides by the group size.
    """

    items: frozenset
    support: int
    group_supports: Tuple[int, ...]
    group_proportions: Tuple[float, ...]
    deviation: float
    chi2: float
    p_value: float

    @property
    def level(self) -> int:
        """Search depth: the number of items in the conjunction."""
        return len(self.items)

    def describe(self, dataset: Dataset) -> str:
        """Render with item names and per-group percentages."""
        lhs = dataset.catalog.describe_pattern(self.items)
        cells = ", ".join(
            f"{name}={proportion:.1%}"
            for name, proportion in zip(dataset.class_names,
                                        self.group_proportions))
        return (f"{lhs}  [{cells}]  dev={self.deviation:.1%} "
                f"chi2={self.chi2:.1f} p={self.p_value:.3g}")


@dataclass
class ContrastSetResult:
    """Mining outcome plus the per-level audit trail.

    ``candidates_per_level[l]`` is ``|C_l|``; ``alpha_per_level[l]``
    the layered level actually charged; ``rejected_large`` /
    ``rejected_significant`` count candidates killed by each filter.
    """

    dataset: Dataset
    min_deviation: float
    alpha: float
    contrast_sets: List[ContrastSet]
    candidates_per_level: Dict[int, int] = field(default_factory=dict)
    alpha_per_level: Dict[int, float] = field(default_factory=dict)
    rejected_large: int = 0
    rejected_significant: int = 0

    @property
    def n_found(self) -> int:
        """Number of surviving contrast sets."""
        return len(self.contrast_sets)

    def sorted_by_deviation(self) -> List[ContrastSet]:
        """Survivors, most contrasting first."""
        return sorted(self.contrast_sets,
                      key=lambda c: (-c.deviation, c.p_value))

    def describe(self, limit: int = 15) -> str:
        """Multi-line report of the largest contrasts."""
        lines = [f"{self.n_found} contrast sets on {self.dataset.name} "
                 f"(min_dev={self.min_deviation:.0%}, "
                 f"alpha={self.alpha:g}; "
                 f"{self.rejected_large} failed deviation, "
                 f"{self.rejected_significant} failed significance)"]
        for contrast in self.sorted_by_deviation()[:limit]:
            lines.append("  " + contrast.describe(self.dataset))
        if self.n_found > limit:
            lines.append(f"  ... and {self.n_found - limit} more")
        return "\n".join(lines)


def stucco_alpha_levels(alpha: float,
                        candidates_per_level: Dict[int, int],
                        ) -> Dict[int, float]:
    """Bay & Pazzani's layered significance levels.

    ``alpha_l = min(alpha / (2^l * |C_l|), alpha_{l-1})``: each level
    gets half the remaining budget, split Bonferroni-style over that
    level's candidates, and the sequence never loosens with depth.
    """
    if not 0.0 < alpha < 1.0:
        raise StatsError(f"alpha must be in (0, 1), got {alpha}")
    levels: Dict[int, float] = {}
    previous = float("inf")
    for level in sorted(candidates_per_level):
        count = max(1, candidates_per_level[level])
        layered = alpha / (2 ** level * count)
        value = min(layered, previous)
        levels[level] = value
        previous = value
    return levels


def group_contingency(tidset, dataset: Dataset,
                      ) -> Tuple[List[int], List[int]]:
    """Observed 2xG table of one pattern against the dataset's groups.

    ``tidset`` is a packed :class:`~repro.tidvector.TidVector` (bigint
    accepted for interop). Returns ``(containing, missing)``: per
    group, the number of records with and without the pattern.
    """
    from ..tidvector import as_tidvector

    tidset = as_tidvector(tidset, dataset.n_records)
    containing = []
    missing = []
    for g in range(dataset.n_classes):
        group_tids = dataset.class_tidset(g)
        inside = tidset.intersection_count(group_tids)
        containing.append(inside)
        missing.append(group_tids.count() - inside)
    return containing, missing


def _chi2_2xg(containing: Sequence[int],
              missing: Sequence[int]) -> Tuple[float, int]:
    """Chi-square statistic and dof of a 2xG contingency table.

    Groups with no records contribute nothing and drop from the
    degrees of freedom.
    """
    totals = [a + b for a, b in zip(containing, missing)]
    active = [g for g, t in enumerate(totals) if t > 0]
    n = sum(totals)
    row_containing = sum(containing)
    row_missing = sum(missing)
    if n == 0 or row_containing == 0 or row_missing == 0 \
            or len(active) < 2:
        return 0.0, max(1, len(active) - 1)
    statistic = 0.0
    for g in active:
        for observed, row_total in ((containing[g], row_containing),
                                    (missing[g], row_missing)):
            expected = row_total * totals[g] / n
            if expected > 0:
                delta = observed - expected
                statistic += delta * delta / expected
    return statistic, len(active) - 1


def find_contrast_sets(
    dataset: Dataset,
    min_deviation: float = 0.05,
    alpha: float = 0.05,
    min_sup: int = 1,
    max_length: Optional[int] = 3,
    correction: str = "stucco",
    algorithm: str = "apriori",
) -> ContrastSetResult:
    """Mine the large and significant contrast sets of a dataset.

    Parameters
    ----------
    min_deviation:
        The "large" threshold on the maximum pairwise difference of
        group proportions (Bay & Pazzani's ``delta``; a domain choice).
    alpha:
        Total error budget spread over levels by
        :func:`stucco_alpha_levels`.
    min_sup:
        Coverage floor for the candidate enumeration; 1 reproduces the
        original's exhaustive search, larger values bound the
        explosion on dense data.
    max_length:
        Depth cap on the search tree (None = unbounded).
    correction:
        ``"stucco"`` (layered levels, the method's contribution),
        ``"bonferroni"`` (flat ``alpha / total candidates``) or
        ``"none"`` (raw ``alpha`` per test — the uncontrolled baseline
        the ablation bench measures against).
    algorithm:
        The registered miner enumerating candidates; must advertise
        the ``"all-frequent"`` capability (STUCCO's layered budget
        charges *every* candidate conjunction, so a closed-only
        enumeration would under-count the levels). Default
        ``"apriori"``, the original's level-wise search.
    """
    if not 0.0 <= min_deviation <= 1.0:
        raise MiningError(
            f"min_deviation must be in [0, 1], got {min_deviation}")
    if min_sup < 1:
        raise MiningError(f"min_sup must be >= 1, got {min_sup}")
    if dataset.n_classes < 2:
        raise MiningError("contrast mining needs at least two groups")
    if correction != "stucco":
        # Flat regimes resolve through the correction registry so any
        # registered spelling ("BC", "raw", ...) works here too — but
        # the error always names the three values valid *here*, since
        # the registry's full listing is mostly unsupported by
        # contrast mining (and omits "stucco").
        from ..corrections.registry import resolve_correction
        supported = ("contrast mining supports the corrections "
                     "'stucco', 'bonferroni' and 'none' (registry "
                     "aliases of the latter two accepted)")
        try:
            correction = resolve_correction(correction).name
        except CorrectionError as exc:
            raise MiningError(
                f"unknown correction {correction!r}; {supported}"
            ) from exc
        if correction not in ("bonferroni", "none"):
            raise MiningError(f"{supported}; got {correction!r}")

    miner = resolve_miner(algorithm)
    if not miner.has_capability("all-frequent"):
        raise MiningError(
            f"contrast mining needs an 'all-frequent' miner (every "
            f"candidate conjunction is charged a level budget); "
            f"{miner.name!r} advertises "
            f"{sorted(miner.capabilities) or 'no capabilities'}")
    pattern_set = miner.mine(dataset, min_sup, max_length=max_length)
    patterns = [p for p in pattern_set if p.items]
    group_sizes = [dataset.class_support(g)
                   for g in range(dataset.n_classes)]
    # Per-group supports of every candidate at once: pack the tidsets
    # into one uint64 BitMatrix and run the hardware-popcount kernel
    # once per group, instead of walking bigint tidsets per pattern.
    matrix = BitMatrix.from_tidsets([p.tidset for p in patterns],
                                    dataset.n_records)
    labels = np.asarray(dataset.class_labels, dtype=np.int64)
    group_supports = np.stack(
        [matrix.class_supports(labels == g)
         for g in range(dataset.n_classes)],
        axis=1) if patterns else np.zeros(
            (0, dataset.n_classes), dtype=np.int64)

    candidates_per_level: Dict[int, int] = {}
    for pattern in patterns:
        level = len(pattern.items)
        candidates_per_level[level] = \
            candidates_per_level.get(level, 0) + 1
    if correction == "stucco":
        alpha_per_level = stucco_alpha_levels(alpha,
                                              candidates_per_level)
    elif correction == "bonferroni":
        total = max(1, sum(candidates_per_level.values()))
        alpha_per_level = {level: alpha / total
                           for level in candidates_per_level}
    else:
        alpha_per_level = {level: alpha
                           for level in candidates_per_level}

    survivors: List[ContrastSet] = []
    rejected_large = 0
    rejected_significant = 0
    for row, pattern in enumerate(patterns):
        containing = [int(v) for v in group_supports[row]]
        missing = [group_sizes[g] - containing[g]
                   for g in range(dataset.n_classes)]
        proportions = tuple(
            containing[g] / group_sizes[g] if group_sizes[g] else 0.0
            for g in range(dataset.n_classes))
        deviation = max(proportions) - min(proportions)
        if deviation < min_deviation:
            rejected_large += 1
            continue
        statistic, dof = _chi2_2xg(containing, missing)
        p_value = chi2_sf(statistic, dof=dof)
        level = len(pattern.items)
        if p_value > alpha_per_level[level]:
            rejected_significant += 1
            continue
        survivors.append(ContrastSet(
            items=pattern.items,
            support=pattern.support,
            group_supports=tuple(containing),
            group_proportions=proportions,
            deviation=deviation,
            chi2=statistic,
            p_value=p_value,
        ))
    return ContrastSetResult(
        dataset=dataset,
        min_deviation=min_deviation,
        alpha=alpha,
        contrast_sets=survivors,
        candidates_per_level=candidates_per_level,
        alpha_per_level=alpha_per_level,
        rejected_large=rejected_large,
        rejected_significant=rejected_significant,
    )
