"""Contrast-set mining with Bonferroni-like error control (STUCCO).

Bay & Pazzani's STUCCO (Data Mining and Knowledge Discovery 2001) is
the paper's ref [3] and its earliest citation for multiple-testing
control inside a pattern miner. A *contrast set* is a conjunction of
attribute=value items whose frequency differs meaningfully across
groups — "PhD holders default at 3%, high-school graduates at 11%".
Two filters decide what is reported:

* **large**: the maximum pairwise difference of group proportions is at
  least ``min_deviation`` (domain significance);
* **significant**: a chi-square test of independence between set
  membership and group, at a level that *shrinks with search depth* —
  STUCCO's layered Bonferroni ``alpha_l = min(alpha / (2^l * |C_l|),
  alpha_{l-1})``, charging deeper (more numerous) candidate levels a
  stricter price.

The group structure reuses :class:`~repro.data.dataset.Dataset` class
labels, so every generator and loader in :mod:`repro.data` works as a
contrast-mining input unchanged.
"""

from .stucco import (
    ContrastSet,
    ContrastSetResult,
    find_contrast_sets,
    group_contingency,
    stucco_alpha_levels,
)

__all__ = [
    "ContrastSet",
    "ContrastSetResult",
    "find_contrast_sets",
    "group_contingency",
    "stucco_alpha_levels",
]
