"""Contrast-set mining: what actually differs between two groups?

STUCCO (the paper's ref [3]) answers questions like "how do
high-income and low-income census records differ?" while charging a
layered Bonferroni price for every conjunction it examines. This
example runs it on the simulated adult census data and then repeats
the cautionary experiment on pure noise: naive chi-square testing
"discovers" hundreds of group differences in data that has none.

Run with::

    python examples/group_differences.py
"""

from __future__ import annotations

from repro.contrast import find_contrast_sets
from repro.data import GeneratorConfig, generate, make_adult


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Real-shaped data: income-group contrasts on simulated adult.
    # ------------------------------------------------------------------
    dataset = make_adult(seed=3, n_records=4000)
    print(f"dataset: {dataset}")
    result = find_contrast_sets(dataset, min_deviation=0.1,
                                min_sup=40, max_length=2)
    print()
    print(result.describe(limit=8))
    print()
    print("layered alpha per search depth:")
    for level in sorted(result.alpha_per_level):
        count = result.candidates_per_level[level]
        print(f"  level {level}: {count:5d} candidates, "
              f"alpha_l = {result.alpha_per_level[level]:.3g}")
    print()

    # ------------------------------------------------------------------
    # 2. The control experiment: no differences exist.
    # ------------------------------------------------------------------
    config = GeneratorConfig(n_records=1000, n_attributes=12, n_rules=0)
    random_data = generate(config, seed=11).dataset
    naive = find_contrast_sets(random_data, min_deviation=0.02,
                               correction="none")
    layered = find_contrast_sets(random_data, min_deviation=0.02,
                                 correction="stucco")
    print("random data (no real group differences):")
    print(f"  naive chi-square at 5%:  {naive.n_found:4d} 'contrasts'")
    print(f"  STUCCO layered levels:   {layered.n_found:4d} contrasts")
    print()
    print("Every naive finding above is a false positive - the same "
          "flood the paper's")
    print("Figure 6 shows for uncorrected association rules.")


if __name__ == "__main__":
    main()
