"""Credit scoring: which applicant profiles really predict default?

Uses the german-credit stand-in (1000 applications, 20 attributes,
70% good / 30% bad — the paper's Table 2 shape). This is exactly the
regime where naive mining misleads: with only 1000 records and
thousands of tested rules, many "risk patterns" with impressive
confidence are statistical noise.

The script reproduces the paper's Table 4 lesson: filtering rules by a
minimum-confidence threshold alone either keeps hundreds of
insignificant rules or throws away hundreds of genuinely significant
ones, while multiple-testing-corrected p-values separate the two
cleanly.

Run with::

    python examples/credit_scoring.py
"""

from __future__ import annotations

from repro import mine_significant_rules
from repro.data import make_german
from repro.evaluation import confidence_pvalue_bins, format_binned_table
from repro.mining import mine_class_rules


def main() -> None:
    dataset = make_german()
    print(f"dataset: {dataset}")
    print(f"class prior: {dataset.class_support(0)} good / "
          f"{dataset.class_support(1)} bad")
    print()

    # --- Table-4 style analysis: confidence is not significance -------
    ruleset = mine_class_rules(dataset, min_sup=60, rhs_class=0)
    matrix = confidence_pvalue_bins(ruleset.rules)
    print(format_binned_table(
        matrix,
        title=f"Rules by confidence and p-value "
              f"(=> good, min_sup=60, {ruleset.n_tests} rules tested)"))
    high_conf_insignificant = sum(
        1 for rule in ruleset.rules
        if rule.confidence >= 0.85 and rule.p_value > 1e-4)
    low_conf_significant = sum(
        1 for rule in ruleset.rules
        if rule.confidence < 0.9 and rule.p_value <= 1e-6)
    print(f"\nhigh-confidence (>=0.85) but weakly significant rules: "
          f"{high_conf_insignificant}")
    print(f"significant (p<=1e-6) rules that a min_conf=0.9 filter "
          f"would discard: {low_conf_significant}")
    print()

    # --- corrected mining ---------------------------------------------
    for correction in ("bonferroni", "permutation-fwer"):
        report = mine_significant_rules(
            dataset, min_sup=60, correction=correction,
            n_permutations=500, seed=7)
        print(f"{correction}: {len(report.significant)} rules survive "
              f"(cut-off {report.result.threshold:.3g})")
    print()

    report = mine_significant_rules(dataset, min_sup=60,
                                    correction="permutation-fwer",
                                    n_permutations=500, seed=7)
    print("Strongest corrected risk/safety profiles:")
    for rule in sorted(report.significant,
                       key=lambda r: r.p_value)[:8]:
        print("  " + rule.describe(dataset))


if __name__ == "__main__":
    main()
