"""Market-basket analysis with statistical false-positive control.

The paper studies class association rules but notes its methods extend
to other rule forms (Section 2). This example runs that extension:
general rules ``X => Y`` over a simulated retail transaction stream
with a handful of *planted* product affinities buried in noise
purchases, then shows how the multiple-testing corrections separate
the planted affinities from co-occurrences that happen by chance.

Run with::

    python examples/market_basket.py
"""

from __future__ import annotations

import random

from repro.corrections import (
    benjamini_hochberg,
    bonferroni,
    no_correction,
    storey_fdr,
)
from repro.mining import mine_general_rules

PRODUCTS = [
    "bread", "butter", "milk", "coffee", "tea", "sugar", "pasta",
    "sauce", "cheese", "wine", "beer", "chips", "soap", "shampoo",
    "razor", "foam", "apples", "bananas", "cereal", "yogurt",
]

#: Planted affinities: buying the first strongly implies the second.
AFFINITIES = [
    ("bread", "butter"),
    ("coffee", "sugar"),
    ("pasta", "sauce"),
    ("razor", "foam"),
]


def simulate_transactions(n_baskets: int, seed: int = 0):
    """Baskets of 2-6 random products, with planted pair affinities."""
    rng = random.Random(seed)
    index = {name: i for i, name in enumerate(PRODUCTS)}
    baskets = []
    for _ in range(n_baskets):
        basket = set(rng.sample(range(len(PRODUCTS)),
                                rng.randint(2, 6)))
        for trigger, companion in AFFINITIES:
            if index[trigger] in basket and rng.random() < 0.8:
                basket.add(index[companion])
        baskets.append(sorted(basket))
    tidsets = [0] * len(PRODUCTS)
    for record, basket in enumerate(baskets):
        for item in basket:
            tidsets[item] |= 1 << record
    return tidsets, n_baskets


def main() -> None:
    tidsets, n = simulate_transactions(4000, seed=11)
    print(f"{n} baskets over {len(PRODUCTS)} products; "
          f"planted affinities: "
          + ", ".join(f"{a}->{b}" for a, b in AFFINITIES))
    print()

    ruleset = mine_general_rules(tidsets, n, min_sup=200)
    print(f"rules tested (Nt): {ruleset.n_tests}")
    print()

    planted_pairs = {frozenset((a, b)) for a, b in AFFINITIES}

    def planted_hits(result):
        found = set()
        for rule in result.significant:
            names = frozenset(PRODUCTS[i] for i in rule.items)
            if names in planted_pairs:
                found.add(names)
        return len(found)

    print(f"{'procedure':>14s} {'#significant':>13s} "
          f"{'planted found':>14s} {'cut-off':>10s}")
    for name, procedure in (("no correction", no_correction),
                            ("Bonferroni", bonferroni),
                            ("BH", benjamini_hochberg),
                            ("Storey", storey_fdr)):
        result = procedure(ruleset, 0.05)
        print(f"{name:>14s} {result.n_significant:13d} "
              f"{planted_hits(result):11d}/{len(AFFINITIES)} "
              f"{result.threshold:10.3g}")
    print()

    result = bonferroni(ruleset, 0.05)
    print("Bonferroni-significant rules (both directions of each "
          "affinity):")
    for rule in result.significant:
        print("  " + rule.describe(PRODUCTS)
              + f", lift={rule.lift(n):.2f}")
    print()
    print("uncorrected-but-spurious co-occurrences (p <= 0.05 yet "
          "killed by correction):")
    spurious = [rule for rule in ruleset.rules
                if rule.p_value <= 0.05
                and rule.p_value > result.threshold]
    for rule in sorted(spurious, key=lambda r: r.p_value)[:5]:
        print("  " + rule.describe(PRODUCTS))
    print()
    print(f"takeaway: {len(spurious)} product pairs look associated at "
          f"p<=0.05 purely by chance; the corrections keep only the "
          f"planted affinities.")


if __name__ == "__main__":
    main()
