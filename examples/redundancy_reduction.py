"""Section 7 future work in action: representative-pattern reduction.

The paper closes by observing that closed patterns still leave *near*
duplicates — a sub-pattern and super-pattern with almost the same
support test essentially the same hypothesis — and that pruning them
should "reduce the number of tests and improve the power of the
correction approaches".

This example plants one moderate-confidence rule (hard to detect at
Bonferroni's default budget), then sweeps the merge tolerance
``delta``:

* ``Nt`` (hypotheses tested) shrinks as delta grows;
* the Bonferroni per-test budget ``alpha / Nt`` grows;
* at some delta the planted rule crosses the decision boundary and
  becomes detectable — power bought purely by testing less redundancy.

Also shows the upgraded direct-adjustment procedures (Holm, Hochberg)
and the permutation step-down as alternative power levers on the same
dataset.

Run with::

    python examples/redundancy_reduction.py
"""

from __future__ import annotations

from repro import mine_significant_rules
from repro.data import GeneratorConfig, generate
from repro.mining import mine_closed, select_representatives


def main() -> None:
    # A planted rule at confidence 0.60: detectable by the permutation
    # test but marginal for plain Bonferroni (Section 5.5.1's regime).
    config = GeneratorConfig(
        n_records=2000, n_attributes=40, n_rules=1,
        min_length=2, max_length=4,
        min_coverage=400, max_coverage=400,
        min_confidence=0.60, max_confidence=0.60,
    )
    data = generate(config, seed=7)
    dataset = data.dataset
    planted = data.embedded_rules[0]
    print(f"dataset: {dataset}")
    print(f"planted rule: {planted.describe()}")
    print()

    # --- how much redundancy do closed patterns still carry? ----------
    patterns = mine_closed(dataset.item_tidsets, dataset.n_records, 150)
    print(f"closed patterns at min_sup=150: {len(patterns)}")
    for delta in (0.0, 0.3, 0.5, 0.6, 0.7):
        selection = select_representatives(patterns, delta=delta)
        print(f"  delta={delta:.1f}: {selection.n_clusters:5d} "
              f"representatives ({selection.reduction:.1%} removed)")
    print()

    # --- does the reduction buy Bonferroni power? ----------------------
    print("Bonferroni at 5% FWER, with and without reduction:")
    print(f"{'delta':>8s} {'Nt':>7s} {'cut-off':>10s} "
          f"{'#significant':>13s} {'planted detected':>17s}")
    for delta in (None, 0.3, 0.5, 0.6, 0.7):
        report = mine_significant_rules(
            dataset, min_sup=150, correction="bonferroni", alpha=0.05,
            redundancy_delta=delta)
        detected = _planted_detected(report, data)
        label = "off" if delta is None else f"{delta:.1f}"
        print(f"{label:>8s} {report.n_tested:7d} "
              f"{report.result.threshold:10.3g} "
              f"{len(report.significant):13d} {str(detected):>17s}")
    print()

    # --- alternative power levers on the same data ---------------------
    print("alternative procedures (no reduction):")
    for correction in ("bonferroni", "holm", "hochberg",
                       "permutation-fwer", "permutation-fwer-stepdown"):
        report = mine_significant_rules(
            dataset, min_sup=150, correction=correction, alpha=0.05,
            n_permutations=300, seed=0)
        detected = _planted_detected(report, data)
        print(f"  {correction:26s} -> {len(report.significant):5d} "
              f"significant, planted detected: {detected}")
    print()
    print("takeaway: reducing the hypothesis count (Section 7) and")
    print("upgrading the procedure (step-down/permutation) are two")
    print("independent levers for recovering moderate-confidence rules —")
    print("but an over-aggressive delta can absorb the very pattern you")
    print("are after into a weaker representative, so sweep it and watch")
    print("both Nt and the rules you care about.")


def _planted_detected(report, data) -> bool:
    planted_items = set(data.embedded_rules[0].item_ids)
    return any(set(rule.items) >= planted_items or
               set(rule.items) <= planted_items
               for rule in report.significant)


if __name__ == "__main__":
    main()
