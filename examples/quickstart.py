"""Quickstart: mine statistically significant class association rules.

Generates a synthetic dataset with one planted rule, then shows how the
choice of multiple-testing correction changes what gets reported:

* no correction        -> a flood of rules, most of them spurious;
* Bonferroni           -> strict FWER control;
* Benjamini-Hochberg   -> FDR control, more power;
* permutation test     -> the paper's most powerful FWER control.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import mine_significant_rules
from repro.data import GeneratorConfig, generate


def main() -> None:
    # A 2000-record dataset, 40 categorical attributes, one planted rule
    # with coverage 400 and confidence 0.65 (Section 5.5's setting).
    config = GeneratorConfig(
        n_records=2000, n_attributes=40, n_rules=1,
        min_length=2, max_length=4,
        min_coverage=400, max_coverage=400,
        min_confidence=0.65, max_confidence=0.65,
    )
    data = generate(config, seed=42)
    dataset = data.dataset
    planted = data.embedded_rules[0]
    print(f"dataset: {dataset}")
    print(f"planted rule: {planted.describe()} "
          f"(coverage={planted.coverage}, "
          f"confidence~{planted.target_confidence:.2f})")
    print()

    for correction in ("none", "bonferroni", "bh", "permutation-fwer"):
        report = mine_significant_rules(
            dataset, min_sup=150, correction=correction,
            alpha=0.05, n_permutations=300, seed=0)
        detected = _detects_planted(report, data)
        print(f"{correction:18s} -> {len(report.significant):6d} "
              f"significant rules "
              f"(raw-p cut-off {report.result.threshold:.3g}); "
              f"planted rule detected: {detected}")

    print()
    print("Most significant rules under Bonferroni:")
    report = mine_significant_rules(dataset, min_sup=150,
                                    correction="bonferroni")
    print(report.describe(limit=5))


def _detects_planted(report, data) -> bool:
    dataset = data.dataset
    planted = data.embedded_rules[0]
    target = dataset.pattern_tidset(planted.item_ids)
    return any(dataset.pattern_tidset(rule.items) == target
               and rule.class_index == planted.class_index
               for rule in report.significant)


if __name__ == "__main__":
    main()
