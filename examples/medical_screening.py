"""Medical screening: rare-disease rules need FDR, not raw p-values.

Uses the hypothyroid stand-in (3163 patients, 25 attributes, ~5%
positive — Table 2's most skewed dataset). Association rule mining here
is *exploratory*: clinicians want a candidate set of symptom
combinations in which a high proportion are real, then confirm them in
a follow-up study. That is precisely the FDR use-case the paper
describes in Section 2.3.

The script contrasts:

* raw p <= 0.05 (hundreds of candidates, many spurious),
* Benjamini-Hochberg at FDR 5%,
* the permutation-calibrated FDR (the paper shows these two are close,
  so the cheaper BH is recommended — we verify that here),
* the holdout approach (noticeably more conservative).

Run with::

    python examples/medical_screening.py
"""

from __future__ import annotations

from repro import mine_significant_rules
from repro.data import make_hypo
from repro.evaluation import format_table


def main() -> None:
    dataset = make_hypo()
    print(f"dataset: {dataset}")
    prevalence = dataset.class_support(1) / dataset.n_records
    print(f"disease prevalence: {prevalence:.1%}")
    print()

    rows = []
    reports = {}
    for correction in ("none", "bh", "permutation-fdr", "holdout-fdr"):
        report = mine_significant_rules(
            dataset, min_sup=2000, correction=correction,
            alpha=0.05, n_permutations=300, seed=11,
            holdout_split="random")
        reports[correction] = report
        rows.append([correction, report.n_tested,
                     len(report.significant),
                     f"{report.result.threshold:.3g}"])
    print(format_table(
        ["correction", "rules tested", "candidates", "raw-p cut-off"],
        rows,
        title="Candidate symptom-combinations at FDR 5% "
              "(min_sup=2000)"))
    print()

    bh = len(reports["bh"].significant)
    perm = len(reports["permutation-fdr"].significant)
    print(f"BH vs permutation-FDR candidate counts: {bh} vs {perm} "
          f"(the paper finds these nearly identical; the cheap direct "
          f"adjustment is the right default for FDR control)")
    print()

    print("Top corrected candidates for follow-up study:")
    for rule in sorted(reports["bh"].significant,
                       key=lambda r: r.p_value)[:8]:
        print("  " + rule.describe(dataset))


if __name__ == "__main__":
    main()
