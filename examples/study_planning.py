"""Planning a mining study with the detectability calculator.

Before mining anything, the shape of your dataset already determines
what you can possibly find: Section 2.3's arithmetic says a rule
covering 5 of 1000 records can never beat p = 0.062, and Figure 9
shows how halving a dataset (the holdout approach) pushes the
detection boundary up. `repro.stats.power` packages that arithmetic.

This example walks the planning workflow for a hypothetical 2000
record study:

1. how small a coverage is even *testable* once the correction is
   accounted for;
2. the minimum detectable confidence per coverage (Figure 1, solved
   for the boundary);
3. the chance of detecting a believed effect (power), and how the
   paper's three approaches compare before running any of them;
4. what the holdout split costs in detectability (Figure 9).

Run with::

    python examples/study_planning.py
"""

from __future__ import annotations

from repro.stats import (
    detection_power,
    min_detectable_confidence,
    min_testable_coverage,
)

N = 2000            # records you expect to collect
N_C = 1000          # records of the target class (balanced study)
EXPECTED_RULES = 3500   # hypothesis count at min_sup=150 (from a pilot)
ALPHA = 0.05


def main() -> None:
    bonferroni_cut = ALPHA / EXPECTED_RULES
    print(f"study shape: n={N}, n_c={N_C}; expecting ~{EXPECTED_RULES} "
          f"rules, Bonferroni cut-off {bonferroni_cut:.2e}")
    print()

    # --- 1. testability floor -----------------------------------------
    uncorrected = min_testable_coverage(N, N_C, ALPHA)
    corrected = min_testable_coverage(N, N_C, bonferroni_cut)
    print(f"1. minimum testable coverage")
    print(f"   at raw alpha {ALPHA}:            {uncorrected}")
    print(f"   at the Bonferroni cut-off:     {corrected}")
    print(f"   -> rules covering fewer than {corrected} records can "
          f"never be reported;")
    print(f"      mining below min_sup={corrected} only inflates the "
          f"correction burden.")
    print()

    # --- 2. the detection boundary per coverage ------------------------
    print("2. minimum detectable confidence by coverage "
          "(at the Bonferroni cut-off):")
    for coverage in (100, 200, 400, 800):
        boundary = min_detectable_confidence(N, N_C, coverage,
                                             bonferroni_cut)
        print(f"   coverage {coverage:4d}: confidence >= {boundary:.3f}")
    print("   -> weak effects need coverage; Figure 1's curves, "
          "solved for the boundary.")
    print()

    # --- 3. power for a believed effect --------------------------------
    print("3. power to detect a coverage-400 rule, by true confidence")
    print("   (binomial effect model; thresholds: raw 0.05 vs "
          "Bonferroni):")
    print(f"   {'confidence':>10s} {'no correction':>14s} "
          f"{'Bonferroni':>11s}")
    for confidence in (0.55, 0.60, 0.65, 0.70):
        raw = detection_power(N, N_C, 400, confidence, ALPHA)
        corrected_power = detection_power(N, N_C, 400, confidence,
                                          bonferroni_cut)
        print(f"   {confidence:10.2f} {raw:14.3f} "
              f"{corrected_power:11.3f}")
    print("   -> the correction costs nothing at confidence .65+, "
          "everything at .55;")
    print("      the contested band is narrow — exactly Figure 8's "
          "shape.")
    print()

    # --- 4. what holdout halving costs ----------------------------------
    print("4. the holdout penalty (Figure 9): the same rule on half "
          "the data")
    whole = min_detectable_confidence(N, N_C, 400, bonferroni_cut)
    # Exploratory half: n, n_c, coverage and the hypothesis count all
    # halve (roughly); the cut-off loosens a little, the coverage loss
    # dominates.
    half_cut = ALPHA / (EXPECTED_RULES // 2)
    half = min_detectable_confidence(N // 2, N_C // 2, 200, half_cut)
    print(f"   whole dataset:     confidence >= {whole:.3f}")
    print(f"   exploratory half:  confidence >= {half:.3f}")
    print(f"   -> the boundary moves up {half - whole:.3f}; rules "
          f"inside that gap are")
    print("      invisible to the holdout approach — the paper's "
          "explanation for its")
    print("      low power, quantified for your own study before "
          "running it.")


if __name__ == "__main__":
    main()
