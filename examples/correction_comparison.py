"""Full correction-method comparison on planted ground truth.

Runs the paper's Section 5.5 experiment end-to-end at reduced scale:
datasets with one embedded rule of varying confidence, every correction
method, and the power / FWER / FDR metrics of Section 5.2. The output
is the reduced-scale analogue of Figures 8 and 10.

Run with::

    python examples/correction_comparison.py          # quick (~1 min)
    REPRO_SCALE=paper python examples/correction_comparison.py
"""

from __future__ import annotations

import os

from repro.data import GeneratorConfig
from repro.evaluation import (
    FDR_METHODS,
    FWER_METHODS,
    ExperimentRunner,
    format_table,
)


def main() -> None:
    scale = os.environ.get("REPRO_SCALE", "default")
    if scale == "paper":
        n_replicates, n_permutations = 100, 1000
    else:
        n_replicates, n_permutations = 10, 150

    confidences = (0.60, 0.70)
    methods = tuple(dict.fromkeys(FWER_METHODS + FDR_METHODS))
    runner = ExperimentRunner(methods=methods,
                              n_permutations=n_permutations)

    for confidence in confidences:
        config = GeneratorConfig(
            n_records=1000, n_attributes=24, n_rules=1,
            min_length=2, max_length=4,
            min_coverage=200, max_coverage=200,
            min_confidence=confidence, max_confidence=confidence)
        result = runner.run(config, min_sup=75,
                            n_replicates=n_replicates, seed=17)
        rows = [result.aggregates[m].row() for m in methods]
        print(format_table(
            ["method", "datasets", "power", "FWER", "FDR",
             "avg #FP", "avg #significant"],
            rows,
            title=f"\nconf(Rt)={confidence}, coverage=200, N=1000, "
                  f"min_sup=75, {n_replicates} replicate datasets"))

    print("\nExpected orderings (paper Section 7):")
    print("  power:  Perm_FWER >= BC >= HD_BC;  Perm_FDR ~= BH")
    print("  errors: all corrected methods hold FWER/FDR near 5%,")
    print("          'No correction' does not.")


if __name__ == "__main__":
    main()
