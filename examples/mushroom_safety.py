"""Mushroom safety: when (almost) everything is significant.

Uses the mushroom stand-in (8124 records, 22 attributes, ~52/48
edible/poisonous). Mushroom's attributes are nearly deterministic
predictors of edibility, so the paper's Figure 15 shows >80% of mined
rules with p-values below 1e-12 — the regime where *every* correction
approach reports nearly the same rule set, and paying for permutation
testing buys nothing (the Section 7 guidance).

The script demonstrates:

1. the p-value distribution is extreme-heavy (unlike german/hypo);
2. Bonferroni and permutation FWER report nearly identical counts;
3. closed patterns drastically reduce the number of tested hypotheses
   on this highly redundant data (the Section 3 motivation).

Run with::

    python examples/mushroom_safety.py
"""

from __future__ import annotations

from repro.corrections import PermutationEngine, bonferroni
from repro.data import make_mushroom
from repro.evaluation import format_table, pvalue_cdf
from repro.mining import mine_apriori, mine_class_rules


def main() -> None:
    dataset = make_mushroom(n_records=4000)
    print(f"dataset: {dataset}")
    print()

    min_sup = 300
    ruleset = mine_class_rules(dataset, min_sup=min_sup, max_length=4)
    print(f"{ruleset.n_tests} closed-pattern rules at "
          f"min_sup={min_sup} (max_length=4)")

    # --- 1. p-value distribution --------------------------------------
    cdf = pvalue_cdf(ruleset.p_values(), normalized=True)
    rows = [(f"{threshold:.0e}", f"{fraction:.1%}")
            for threshold, fraction in cdf
            if threshold in (1e-12, 1e-8, 1e-4, 1e-2, 1.0)]
    print(format_table(["p <=", "fraction of rules"], rows,
                       title="\nP-value distribution (Figure 15 regime)"))
    extreme = sum(1 for p in ruleset.p_values() if p <= 1e-12)
    print(f"rules below 1e-12: {extreme / ruleset.n_tests:.1%}")
    print()

    # --- 2. corrections agree here ------------------------------------
    bc = bonferroni(ruleset, 0.05)
    perm = PermutationEngine(ruleset, n_permutations=200,
                             seed=5).fwer(0.05)
    print(f"Bonferroni:   {bc.n_significant} significant "
          f"(cut-off {bc.threshold:.3g})")
    print(f"Permutation:  {perm.n_significant} significant "
          f"(cut-off {perm.threshold:.3g})")
    gap = abs(perm.n_significant - bc.n_significant)
    print(f"difference: {gap} rules "
          f"({gap / max(bc.n_significant, 1):.1%}) — on extreme-heavy "
          f"data the cheap direct adjustment suffices (Section 7)")
    print()

    # --- 3. closed patterns vs all frequent patterns ------------------
    sample = dataset.subset(range(800))
    closed = mine_class_rules(sample, min_sup=80, max_length=3)
    all_frequent = mine_apriori(sample.item_tidsets, sample.n_records,
                                min_sup=80, max_length=3)
    print(f"on an 800-record sample (max_length=3): "
          f"{len(all_frequent)} frequent patterns vs "
          f"{len(closed.patterns) - 1} closed patterns "
          f"({len(all_frequent) / max(len(closed.patterns) - 1, 1):.1f}x "
          f"fewer hypotheses to correct for)")


if __name__ == "__main__":
    main()
