"""Associative classification: rules as a classifier, corrections as a
rule-base diet.

Class association rules earned their keep in classification (CBA,
CMAR), and the paper's Section 2 leans on that record. This example
builds both classifiers on a simulated `german` credit dataset and
shows the practical payoff of multiple-testing correction that accuracy
numbers alone hide: the statistically filtered rule base is a fraction
of the size — fewer spurious rules for a credit officer to audit — at
essentially no accuracy cost.

Run with::

    python examples/associative_classification.py
"""

from __future__ import annotations

from repro.classify import (
    CBAClassifier,
    CMARClassifier,
    CPARClassifier,
    compare_filtered_rule_bases,
    cross_validate,
    record_item_sets,
    significance_filtered_classifier,
)
from repro.data import make_german
from repro.mining.rules import mine_class_rules

MIN_SUP = 80


def main() -> None:
    dataset = make_german(seed=7)
    print(f"dataset: {dataset}")
    prior = max(dataset.class_support(c)
                for c in range(dataset.n_classes)) / dataset.n_records
    print(f"majority-class prior: {prior:.3f}")
    print()

    # ------------------------------------------------------------------
    # 1. Plain CBA and CMAR on the unfiltered rule base.
    # ------------------------------------------------------------------
    ruleset = mine_class_rules(dataset, MIN_SUP)
    print(f"mined {ruleset.n_tests} candidate rules at "
          f"min_sup={MIN_SUP}")
    cba = CBAClassifier().fit(ruleset)
    cmar = CMARClassifier(delta=3).fit(ruleset)
    print(f"CBA keeps {cba.n_rules} rules after coverage pruning "
          f"({cba.training_errors} training errors)")
    print(f"CMAR keeps {cmar.n_rules} voters at delta=3")
    print()
    print(cba.describe(dataset, limit=5))
    print()

    # ------------------------------------------------------------------
    # 2. Cross-validate the full pipeline per correction.
    # ------------------------------------------------------------------
    print("correction-filtered rule bases (3-fold CV):")
    reports = compare_filtered_rule_bases(
        dataset, MIN_SUP, corrections=("none", "bh", "bonferroni"),
        k=3, seed=0)
    header = (f"{'correction':12s} {'significant':>11s} "
              f"{'CBA rules':>9s} {'train':>6s} {'cv':>6s}")
    print(header)
    for report in reports:
        cv_acc = report.cv.mean_accuracy if report.cv else float("nan")
        print(f"{report.correction:12s} "
              f"{report.n_significant_rules:>11d} "
              f"{report.n_classifier_rules:>9d} "
              f"{report.training_accuracy:>6.3f} "
              f"{cv_acc:>6.3f}")
    print()

    # ------------------------------------------------------------------
    # 3. A single filtered classifier, inspected.
    # ------------------------------------------------------------------
    filtered = significance_filtered_classifier(
        dataset, MIN_SUP, correction="bonferroni", classifier="cba")
    print("Bonferroni-filtered CBA:")
    print(filtered.describe(dataset, limit=5))
    print()

    # CMAR voting cross-validated for comparison.
    def cmar_factory(train):
        return CMARClassifier(delta=3).fit(
            mine_class_rules(train, max(1, MIN_SUP * 2 // 3)))

    result = cross_validate(dataset, cmar_factory, k=3, seed=0)
    print(f"CMAR 3-fold CV accuracy: {result.mean_accuracy:.3f} "
          f"(+/- {result.std_accuracy:.3f})")
    print()
    print("pooled confusion matrix:")
    print(result.confusion.describe())

    # ------------------------------------------------------------------
    # 4. CPAR: greedy induction instead of mine-then-select.
    # ------------------------------------------------------------------
    cpar = CPARClassifier(min_gain=0.5).fit(dataset)
    survivors = cpar.filtered("bonferroni", 0.05)
    print(f"CPAR induces {cpar.n_rules} rules by FOIL gain "
          f"(vs {ruleset.n_tests} tested by the miner); "
          f"{survivors.n_rules} survive Bonferroni over the induced "
          f"set")
    print()

    # Show one concrete prediction with its justification.
    items = record_item_sets(dataset)[0]
    prediction = filtered.predict_itemset(items)
    print("example prediction for record 0:")
    label = dataset.class_names[prediction.class_index]
    if prediction.rule is not None:
        print(f"  -> {label} because "
              f"{prediction.rule.describe(dataset)}")
    else:
        print(f"  -> {label} (default class; no filtered rule matched)")


if __name__ == "__main__":
    main()
