"""Statistical significance vs interestingness measures.

Section 2.3 of the paper argues the two are complementary: p-values
answer "is this association real?", interestingness measures answer
"is this association big enough to matter in the domain?". This
example mines the (simulated) german credit dataset at the paper's
Table 4 setting and shows:

1. rules that a naive confidence filter keeps but that are NOT
   statistically significant (Table 4's upper-left mass);
2. rules that the same filter throws away despite being extremely
   significant (Table 4's lower-left mass);
3. how differently the catalogue of interestingness measures ranks
   the statistically significant rules (Kendall-tau agreement matrix).

Run with::

    python examples/significance_vs_interestingness.py
"""

from __future__ import annotations

from repro import mine_significant_rules
from repro.data import make_german
from repro.interest import (
    ContingencyTable,
    agreement_matrix,
    lift,
    top_k,
)


def main() -> None:
    dataset = make_german()
    # Table 4's setting: min_sup=60, rules reported toward class
    # "good"; Bonferroni decides statistical significance.
    report = mine_significant_rules(dataset, min_sup=60,
                                    correction="bonferroni", alpha=0.05)
    ruleset = report.ruleset
    assert ruleset is not None
    threshold = report.result.threshold
    print(f"dataset: {dataset.name}, {ruleset.n_tests} rules tested, "
          f"Bonferroni raw-p cut-off {threshold:.3g}")
    print()

    # --- 1. high confidence, not significant --------------------------
    confident_insignificant = [
        rule for rule in ruleset.rules
        if rule.confidence >= 0.85 and rule.p_value > threshold
    ]
    print(f"1. rules with confidence >= 0.85 that are NOT significant: "
          f"{len(confident_insignificant)}")
    for rule in sorted(confident_insignificant,
                       key=lambda r: -r.confidence)[:3]:
        print("   " + rule.describe(dataset))
    print("   -> a confidence filter alone would report these even")
    print("      though their coverage is too small to rule out chance.")
    print()

    # --- 2. moderate confidence, extremely significant ----------------
    significant_moderate = [
        rule for rule in ruleset.rules
        if rule.confidence < 0.85 and rule.p_value <= threshold
    ]
    print(f"2. significant rules a min_conf=0.85 filter would discard: "
          f"{len(significant_moderate)}")
    for rule in sorted(significant_moderate,
                       key=lambda r: r.p_value)[:3]:
        print("   " + rule.describe(dataset))
    print("   -> Section 2.3's point: raising min_conf to clean up")
    print("      noise throws away real systematic effects.")
    print()

    # --- 3. measure disagreement on the significant set ---------------
    significant_report = report.significant
    print(f"3. ranking the {len(significant_report)} significant rules "
          f"by different measures:")
    best_lift = top_k(ruleset, "lift", 3)
    best_leverage = top_k(ruleset, "leverage", 3)
    print("   top-3 by lift:")
    for rule, score in best_lift:
        print(f"     lift={score:6.2f}  " + rule.describe(dataset))
    print("   top-3 by leverage:")
    for rule, score in best_leverage:
        print(f"     leverage={score:6.3f}  " + rule.describe(dataset))
    print()

    names = ("confidence", "lift", "leverage", "jaccard", "conviction")
    matrix = agreement_matrix(ruleset, measures=names)
    print("   Kendall-tau agreement between measures:")
    header = "            " + "".join(f"{name:>12s}" for name in names)
    print(header)
    for name_a in names:
        cells = []
        for name_b in names:
            key = (name_a, name_b) if (name_a, name_b) in matrix \
                else (name_b, name_a)
            cells.append(f"{matrix[key]:12.2f}")
        print(f"   {name_a:>9s}" + "".join(cells))
    print()
    print("   -> measures disagree substantially (tau well below 1):")
    print("      choose the domain-significance axis deliberately, and")
    print("      let the statistics handle the is-it-real axis.")

    # A concrete contingency-table computation, for the curious.
    rule = min(ruleset.rules, key=lambda r: r.p_value)
    table = ContingencyTable.from_rule(rule, dataset)
    print()
    print(f"most significant rule: {rule.describe(dataset)}")
    print(f"  2x2 cells (a,b,c,d) = {table.cells}, "
          f"lift = {lift(table):.2f}")


if __name__ == "__main__":
    main()
