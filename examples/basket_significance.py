"""Which frequent itemsets are *statistically* frequent?

Market-basket mining on Quest-style synthetic transactions (the
T10I4-family generator), asking the frequency-significance question of
the paper's related work: a pattern can clear ``min_sup`` either
because shoppers really buy its items together or because its items
are individually popular. Two methods separate the cases:

* Megiddo & Srikant's resampling calibration — random datasets with
  the same item marginals but independent items decide the p-value
  cut-off;
* Kirsch et al.'s support threshold ``s*`` — the support level above
  which the sheer *count* of itemsets is more than independence
  explains.

Run with::

    python examples/basket_significance.py
"""

from __future__ import annotations

from repro.data import QuestConfig, generate_quest
from repro.frequency import (
    calibrate_cutoff,
    find_support_threshold,
    score_patterns,
    significant_frequent_patterns,
)


def main() -> None:
    config = QuestConfig(
        n_transactions=800, avg_transaction_length=6.0,
        avg_pattern_length=4.0, n_items=80, n_patterns=8,
        corruption_mean=0.05)
    data = generate_quest(config, seed=99)
    tidsets = data.tidsets()
    n = data.n_transactions
    min_sup = 20
    print(f"{n} transactions over {config.n_items} items "
          f"(Quest T{config.avg_transaction_length:.0f}"
          f"I{config.avg_pattern_length:.0f}); min_sup={min_sup}")
    print(f"planted potential itemsets: "
          f"{[sorted(p) for p in data.patterns[:4]]} ...")
    print()

    # ------------------------------------------------------------------
    # 1. Score every frequent pattern against the independence null.
    # ------------------------------------------------------------------
    scored = score_patterns(tidsets, n, min_sup, max_length=3)
    print(f"{len(scored)} frequent patterns (length >= 2) scored")
    print(f"{'pattern':24s} {'supp':>5s} {'null E':>7s} "
          f"{'lift':>5s} {'p-value':>9s}")
    for pattern in sorted(scored, key=lambda s: s.p_value)[:6]:
        print(f"{str(sorted(pattern.items)):24s} "
              f"{pattern.support:>5d} "
              f"{pattern.expected_support:>7.1f} "
              f"{pattern.lift:>5.2f} {pattern.p_value:>9.2e}")
    print()

    # ------------------------------------------------------------------
    # 2. Megiddo-Srikant: resampling-calibrated cut-off.
    # ------------------------------------------------------------------
    calibration = calibrate_cutoff(tidsets, n, min_sup, n_resamples=9,
                                   max_length=3, seed=1)
    survivors = significant_frequent_patterns(
        tidsets, n, min_sup, n_resamples=9, max_length=3, seed=1)
    print(f"Megiddo-Srikant cut-off (9 resamples): "
          f"p <= {calibration.threshold:.3g}")
    print(f"  {calibration.mean_null_patterns:.1f} patterns mined per "
          f"random dataset on average")
    print(f"  {len(survivors)} of {len(scored)} frequent patterns "
          f"survive the cut-off")
    print()

    # ------------------------------------------------------------------
    # 3. Kirsch et al.: the significant support threshold s*.
    # ------------------------------------------------------------------
    result = find_support_threshold(tidsets, n, k=3, min_sup=min_sup,
                                    n_null_samples=12, seed=2)
    print("Kirsch support-threshold search (k=3):")
    print(result.describe())
    print()

    # ------------------------------------------------------------------
    # 4. The cautionary tale: popular != associated.
    # ------------------------------------------------------------------
    boring = [s for s in sorted(scored, key=lambda s: -s.support)
              if s.p_value > 0.05]
    if boring:
        pattern = boring[0]
        print("highest-support pattern that is NOT significant:")
        print(f"  {sorted(pattern.items)}: support {pattern.support} "
              f"vs {pattern.expected_support:.1f} expected from "
              f"popularity alone (p={pattern.p_value:.2f})")
        print("  -> frequent, but only because its items are "
              "individually popular.")


if __name__ == "__main__":
    main()
